"""Doorbell-style verb batching.

Real RDMA NICs let a requester chain several work requests in the send
queue and ring the doorbell once: the PCIe MMIO write (and the NIC's
WQE fetch that follows) is paid per *doorbell*, not per verb.  Mu and
Velos both lean on this to fit replication inside a microsecond budget;
Sift's WAL-append fan-out (§4) has the same shape — one coordinator
posting the same image to every memory node.

The model here mirrors that split:

* :meth:`~repro.rdma.qp.QueuePair.prepare_write` stages a WRITE without
  touching the NIC and returns a :class:`PostedVerb`;
* :meth:`~repro.rdma.nic.Rnic.post_many` flushes a list of prepared
  verbs under **one** ``verb_overhead_us`` charge (the doorbell), with
  the payloads serialised back-to-back at link bandwidth;
* :class:`DoorbellQueue` is the convenience accumulator for callers
  that build a flush incrementally.

Per-verb delivery, remote application, acks, timeout guards and
failure handling are exactly those of the unbatched
:meth:`~repro.rdma.nic.Rnic.transfer` path, so RC ordering per target
and all error semantics are unchanged — only the per-verb doorbell
overhead is amortized.  Batching is opt-in (see
``SiftConfig.doorbell_batching``); with it off, simulated timings are
bit-identical to the unbatched path.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.engine import Event

__all__ = ["PostedVerb", "DoorbellQueue"]


class PostedVerb:
    """A staged one-sided verb: everything :meth:`Rnic.post_many` needs.

    ``done`` settles exactly like the event returned by
    :meth:`Rnic.transfer` — with the verb result, an
    :class:`~repro.rdma.errors.RdmaError` from the remote apply, or an
    :class:`~repro.rdma.errors.RdmaTimeout`.  A verb that fails
    validation at prepare time carries an already-failed ``done`` and
    is skipped by the flush.
    """

    __slots__ = (
        "target",
        "request_bytes",
        "response_bytes",
        "apply_remote",
        "verb",
        "timeout_us",
        "done",
    )

    def __init__(
        self,
        target,
        request_bytes: int,
        response_bytes: int,
        apply_remote: Optional[Callable[[], object]],
        verb: str,
        timeout_us: Optional[float],
        done: Event,
    ):
        self.target = target
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.apply_remote = apply_remote
        self.verb = verb
        self.timeout_us = timeout_us
        self.done = done

    def __repr__(self) -> str:
        return f"<PostedVerb {self.verb} -> {self.target.name} {self.request_bytes}B>"


class DoorbellQueue:
    """Accumulate prepared verbs and flush them one doorbell at a time.

    ``max_posts`` bounds the batch the way a send queue bounds chained
    WQEs; hitting it rings the doorbell automatically.  Callers that
    batch one logical operation's fan-out (e.g. a WAL append to every
    memory node) typically :meth:`post` each prepared verb and
    :meth:`ring` once.
    """

    def __init__(self, nic, max_posts: int = 16):
        if max_posts < 1:
            raise ValueError("max_posts must be >= 1")
        self.nic = nic
        self.max_posts = max_posts
        self._posts: List[PostedVerb] = []

    def __len__(self) -> int:
        return len(self._posts)

    def post(self, prepared: PostedVerb) -> Event:
        """Queue one prepared verb; auto-flush when the queue fills."""
        self._posts.append(prepared)
        if len(self._posts) >= self.max_posts:
            self.ring()
        return prepared.done

    def ring(self) -> List[Event]:
        """Flush everything queued under a single doorbell charge."""
        posts, self._posts = self._posts, []
        if posts:
            self.nic.post_many(posts)
        return [post.done for post in posts]
