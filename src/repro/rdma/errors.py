"""RDMA fault model.

A verb either completes with an acknowledgement (reliable RC semantics)
or the queue pair surfaces an error completion: retry-exhaustion when the
peer is unreachable, protection faults for out-of-bounds access, and
revocation when the peer accepted a newer exclusive connection.  All
derive from :class:`repro.errors.ReproError`; ``RdmaError`` remains the
subsystem base for existing ``except`` clauses.
"""

from repro.errors import ReproError

__all__ = [
    "RdmaError",
    "RdmaTimeout",
    "RdmaProtectionError",
    "RdmaConnectionRevoked",
]


class RdmaError(ReproError):
    """Base class for verb failures (the QP moved to an error state)."""


class RdmaTimeout(RdmaError):
    """Transport retries exhausted: the peer is dead or unreachable."""

    retryable = True


class RdmaProtectionError(RdmaError):
    """Access outside the registered region, or a misaligned atomic."""


class RdmaConnectionRevoked(RdmaError):
    """The peer accepted a newer exclusive connection to this region."""
