"""Target-side region export table.

The listener is the only piece of RDMA machinery that consumes target CPU,
and only during connection establishment — matching the paper's
observation that "memory nodes need to be actively involved only in
establishing the initial connections" (§3.1).

Exports can be *exclusive*: accepting a new queue pair revokes the
previous holder, implementing the at-most-one-connection fencing used to
keep deposed coordinators from writing stale data (§3.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional

from repro.net.host import Host
from repro.rdma.errors import RdmaProtectionError
from repro.rdma.memory import MemoryRegion

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.rdma.qp import QueuePair

__all__ = ["RdmaListener"]


class _Export:
    __slots__ = ("region", "exclusive", "holder")

    def __init__(self, region: MemoryRegion, exclusive: bool):
        self.region = region
        self.exclusive = exclusive
        self.holder: Optional["QueuePair"] = None


class RdmaListener:
    """Registry of exported regions on a (memory) host."""

    def __init__(self, host: Host, connect_cpu_us: float = 200.0):
        self.host = host
        self.connect_cpu_us = connect_cpu_us
        self._exports: Dict[str, _Export] = {}
        host.services["rdma-listener"] = self

    def export(self, region: MemoryRegion, exclusive: bool = False) -> None:
        """Publish *region* for remote access under its name."""
        self._exports[region.name] = _Export(region, exclusive)

    def unexport(self, name: str) -> None:
        """Withdraw a region; established QPs fail on next access."""
        self._exports.pop(name, None)

    def lookup(self, name: str) -> MemoryRegion:
        """Resolve an exported region (verb-time protection check)."""
        export = self._exports.get(name)
        if export is None:
            raise RdmaProtectionError(
                f"region {name!r} not exported by {self.host.name}"
            )
        return export.region

    def holder_of(self, name: str) -> Optional["QueuePair"]:
        """The queue pair currently holding an exclusive region, if any."""
        export = self._exports.get(name)
        return export.holder if export else None

    # -- connection management (called from QueuePair.connect) ---------------

    def attach(self, qp: "QueuePair", region_names: Iterable[str]) -> None:
        """Grant *qp* access to the named regions, revoking exclusivity losers."""
        names = list(region_names)
        for name in names:
            if name not in self._exports:
                raise RdmaProtectionError(
                    f"region {name!r} not exported by {self.host.name}"
                )
        for name in names:
            export = self._exports[name]
            if export.exclusive:
                if export.holder is not None and export.holder is not qp:
                    export.holder.revoke(
                        f"region {name!r} re-attached by {qp.nic.host.name}"
                    )
                export.holder = qp

    def detach(self, qp: "QueuePair") -> None:
        """Drop *qp* from any exclusive holderships (graceful close)."""
        for export in self._exports.values():
            if export.holder is qp:
                export.holder = None

    # -- host lifecycle --------------------------------------------------------

    def on_host_crash(self) -> None:
        """DRAM and QP contexts vanish with the host."""
        for export in self._exports.values():
            export.holder = None

    def clear(self) -> None:
        """Forget all exports (used when re-initialising a restarted node)."""
        self._exports.clear()
