"""Target-side region export table.

The listener is the only piece of RDMA machinery that consumes target CPU,
and only during connection establishment — matching the paper's
observation that "memory nodes need to be actively involved only in
establishing the initial connections" (§3.1).

Exports can be *exclusive*: accepting a new queue pair revokes the
previous holder, implementing the at-most-one-connection fencing used to
keep deposed coordinators from writing stale data (§3.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.net.host import Host
from repro.rdma.errors import RdmaProtectionError
from repro.rdma.memory import MemoryRegion

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.rdma.qp import QueuePair

__all__ = ["RdmaListener"]


class _Export:
    __slots__ = ("region", "exclusive", "holder", "fenced_by", "holders")

    def __init__(
        self, region: MemoryRegion, exclusive: bool, fenced_by: Optional[str] = None
    ):
        self.region = region
        self.exclusive = exclusive
        self.holder: Optional["QueuePair"] = None
        self.fenced_by = fenced_by
        self.holders: List["QueuePair"] = []


class RdmaListener:
    """Registry of exported regions on a (memory) host."""

    def __init__(self, host: Host, connect_cpu_us: float = 200.0):
        self.host = host
        self.connect_cpu_us = connect_cpu_us
        self._exports: Dict[str, _Export] = {}
        host.services["rdma-listener"] = self

    def export(
        self,
        region: MemoryRegion,
        exclusive: bool = False,
        fenced_by: Optional[str] = None,
    ) -> None:
        """Publish *region* for remote access under its name.

        *fenced_by* names an exclusive export this one is subordinate
        to: whenever a new queue pair takes that exclusive export, every
        holder of this export is revoked too.  This extends the
        at-most-one-connection fencing of §3.2 to auxiliary views (the
        recovery-push window) so a deposed coordinator's helpers cannot
        write after a successor has claimed the primary region.
        """
        self._exports[region.name] = _Export(region, exclusive, fenced_by)

    def unexport(self, name: str) -> None:
        """Withdraw a region; established QPs fail on next access."""
        self._exports.pop(name, None)

    def lookup(self, name: str) -> MemoryRegion:
        """Resolve an exported region (verb-time protection check)."""
        export = self._exports.get(name)
        if export is None:
            raise RdmaProtectionError(
                f"region {name!r} not exported by {self.host.name}"
            )
        return export.region

    def holder_of(self, name: str) -> Optional["QueuePair"]:
        """The queue pair currently holding an exclusive region, if any."""
        export = self._exports.get(name)
        return export.holder if export else None

    # -- connection management (called from QueuePair.connect) ---------------

    def attach(self, qp: "QueuePair", region_names: Iterable[str]) -> None:
        """Grant *qp* access to the named regions, revoking exclusivity losers."""
        names = list(region_names)
        for name in names:
            if name not in self._exports:
                raise RdmaProtectionError(
                    f"region {name!r} not exported by {self.host.name}"
                )
        for name in names:
            export = self._exports[name]
            if export.exclusive:
                if export.holder is not None and export.holder is not qp:
                    export.holder.revoke(
                        f"region {name!r} re-attached by {qp.nic.host.name}"
                    )
                export.holder = qp
                self._revoke_fenced(name, qp)
            if export.fenced_by is not None and qp not in export.holders:
                export.holders.append(qp)

    def _revoke_fenced(self, name: str, winner: "QueuePair") -> None:
        """Revoke holders of every export subordinate to exclusive *name*."""
        for sub_name, export in self._exports.items():
            if export.fenced_by != name:
                continue
            for holder in export.holders:
                if holder is not winner:
                    holder.revoke(
                        f"region {sub_name!r} fenced by re-attach of {name!r}"
                    )
            export.holders = [qp for qp in export.holders if qp is winner]

    def detach(self, qp: "QueuePair") -> None:
        """Drop *qp* from any exclusive holderships (graceful close)."""
        for export in self._exports.values():
            if export.holder is qp:
                export.holder = None
            if qp in export.holders:
                export.holders.remove(qp)

    # -- host lifecycle --------------------------------------------------------

    def on_host_crash(self) -> None:
        """DRAM and QP contexts vanish with the host."""
        for export in self._exports.values():
            export.holder = None
            export.holders = []

    def clear(self) -> None:
        """Forget all exports (used when re-initialising a restarted node)."""
        self._exports.clear()
