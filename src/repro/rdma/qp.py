"""Reliable-connection queue pairs and the one-sided verbs.

A queue pair binds a requester NIC to a target host's listener and a set
of granted regions.  Verbs return simulation events:

* :meth:`QueuePair.read`  — fetch bytes, response carries the payload;
* :meth:`QueuePair.write` — store bytes, response is a small ack;
* :meth:`QueuePair.cas`   — 64-bit compare-and-swap, returns the *old*
  value (success is inferred by the caller, as with real atomics).

Verb completion is an RC acknowledgement: when the event triggers, the
remote memory holds the update.  Ordering within a queue pair follows
from the NIC's FIFO transmit queue, which the protocol relies on when it
"uses RDMA's ordering guarantees to maintain consistent state" (§3.3.2).
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Iterable, Optional, Tuple

from repro.rdma.doorbell import PostedVerb
from repro.rdma.errors import RdmaConnectionRevoked, RdmaError
from repro.rdma.listener import RdmaListener
from repro.rdma.nic import Rnic
from repro.sim.engine import Event

__all__ = ["QueuePair", "QpState"]

_qp_ids = itertools.count(1)

CAS_WIRE_BYTES = 28  # ETH+IB headers dominate; payload is 8B compare + 8B swap
ACK_WIRE_BYTES = 12


class QpState(Enum):
    """Connection lifecycle states."""

    INIT = "init"
    CONNECTED = "connected"
    REVOKED = "revoked"
    CLOSED = "closed"
    ERROR = "error"


class QueuePair:
    """A reliable connection from a requester to a target's regions."""

    def __init__(self, nic: Rnic, listener: RdmaListener, name: str = ""):
        self.nic = nic
        self.listener = listener
        self.qp_id = next(_qp_ids)
        self.name = name or f"qp{self.qp_id}"
        self.state = QpState.INIT
        self.granted: Tuple[str, ...] = ()
        self._remote_incarnation: Optional[int] = None

    @property
    def target(self):
        """The host on the far end of the connection."""
        return self.listener.host

    # -- connection management -------------------------------------------------

    def connect(self, region_names: Iterable[str]):
        """Process: establish the connection (the target CPU's only role).

        Yields inside a host process.  Raises :class:`RdmaError` when the
        target is unreachable or refuses the grant.
        """
        names = tuple(region_names)
        fabric = self.nic.fabric
        target = self.target

        # Connection handshake: one round trip plus target CPU time to
        # register the QP context and check grants.
        handshake = fabric.round_trip(
            self.nic.host, target, 256, 256, latency=self.nic.propagation, stream="rdma"
        )
        yield handshake
        yield target.execute(self.listener.connect_cpu_us)
        if not target.alive:
            raise RdmaError(f"{target.name} died during connect")
        self.listener.attach(self, names)
        self.granted = names
        self._remote_incarnation = target.incarnation
        self.state = QpState.CONNECTED
        return self

    def close(self) -> None:
        """Gracefully drop the connection (no remote round trip modelled)."""
        if self.state is QpState.CONNECTED:
            self.listener.detach(self)
        self.state = QpState.CLOSED

    def revoke(self, reason: str) -> None:
        """Called by the listener when a newer exclusive connection lands."""
        if self.state is QpState.CONNECTED:
            self.state = QpState.REVOKED

    # -- verbs -------------------------------------------------------------------

    def read(self, region_name: str, offset: int, length: int) -> Event:
        """One-sided READ of *length* bytes; event value is the payload."""
        return self._post(
            region_name,
            request_bytes=ACK_WIRE_BYTES,
            response_bytes=length,
            apply=lambda region: region.read(offset, length),
            verb="read",
        )

    def write(
        self,
        region_name: str,
        offset: int,
        data: bytes,
        timeout_us: Optional[float] = None,
    ) -> Event:
        """One-sided WRITE; completion ack means remote memory is updated.

        *timeout_us* overrides the NIC's per-verb retry budget — bulk
        recovery pushes queue many large payloads behind one transmit
        queue, so their legitimate completion times exceed the default
        budget sized for request/response traffic.
        """
        payload = bytes(data)
        return self._post(
            region_name,
            request_bytes=len(payload),
            response_bytes=ACK_WIRE_BYTES,
            apply=lambda region: region.write(offset, payload),
            verb="write",
            timeout_us=timeout_us,
        )

    def prepare_write(
        self,
        region_name: str,
        offset: int,
        data: bytes,
        timeout_us: Optional[float] = None,
    ) -> PostedVerb:
        """Stage a WRITE for a doorbell flush without touching the NIC.

        Validation (connection state, region grant) happens now, exactly
        as :meth:`write` would; a rejected verb returns a
        :class:`~repro.rdma.doorbell.PostedVerb` whose ``done`` event is
        already failed, which :meth:`~repro.rdma.nic.Rnic.post_many`
        skips.  The staged verb only consumes simulated resources when
        the doorbell rings.
        """
        payload = bytes(data)
        done = Event(self.nic.host.sim)
        if self.state is not QpState.CONNECTED:
            done.fail(self._state_error())
            return PostedVerb(
                self.target, len(payload), ACK_WIRE_BYTES, None, "write", timeout_us, done
            )
        if region_name not in self.granted:
            done.fail(RdmaError(f"{self.name}: region {region_name!r} not granted"))
            return PostedVerb(
                self.target, len(payload), ACK_WIRE_BYTES, None, "write", timeout_us, done
            )

        def apply_remote():
            if self._remote_incarnation != self.target.incarnation:
                raise RdmaError(f"{self.name}: stale connection (peer rebooted)")
            if self.state is QpState.REVOKED:
                raise RdmaConnectionRevoked(f"{self.name}: connection revoked")
            if self.state is not QpState.CONNECTED:
                raise self._state_error()
            region = self.listener.lookup(region_name)
            return region.write(offset, payload)

        return PostedVerb(
            self.target,
            len(payload),
            ACK_WIRE_BYTES,
            apply_remote,
            "write",
            timeout_us,
            done,
        )

    def cas(self, region_name: str, offset: int, expected: int, new: int) -> Event:
        """One-sided 64-bit CAS; event value is the previous word."""
        return self._post(
            region_name,
            request_bytes=CAS_WIRE_BYTES,
            response_bytes=ACK_WIRE_BYTES,
            apply=lambda region: region.compare_and_swap(offset, expected, new),
            verb="cas",
        )

    def read_word(self, region_name: str, offset: int) -> Event:
        """One-sided 8-byte READ returning an integer (heartbeat reads)."""
        return self._post(
            region_name,
            request_bytes=ACK_WIRE_BYTES,
            response_bytes=8,
            apply=lambda region: region.read_word(offset),
            verb="read_word",
        )

    # -- mechanics ---------------------------------------------------------------

    def _post(
        self,
        region_name: str,
        request_bytes: int,
        response_bytes: int,
        apply,
        verb: str = "verb",
        timeout_us: Optional[float] = None,
    ) -> Event:
        if self.state is not QpState.CONNECTED:
            failed = Event(self.nic.host.sim)
            failed.fail(self._state_error())
            return failed
        if region_name not in self.granted:
            failed = Event(self.nic.host.sim)
            failed.fail(
                RdmaError(f"{self.name}: region {region_name!r} not granted")
            )
            return failed

        def apply_remote():
            if self._remote_incarnation != self.target.incarnation:
                raise RdmaError(f"{self.name}: stale connection (peer rebooted)")
            if self.state is QpState.REVOKED:
                raise RdmaConnectionRevoked(f"{self.name}: connection revoked")
            if self.state is not QpState.CONNECTED:
                raise self._state_error()
            region = self.listener.lookup(region_name)
            return apply(region)

        return self.nic.transfer(
            self.target,
            request_bytes,
            response_bytes,
            apply_remote,
            timeout_us=timeout_us,
            verb=verb,
        )

    def _state_error(self) -> RdmaError:
        if self.state is QpState.REVOKED:
            return RdmaConnectionRevoked(f"{self.name}: connection revoked")
        return RdmaError(f"{self.name}: queue pair in state {self.state.value}")

    def __repr__(self) -> str:
        return (
            f"<QueuePair {self.name} {self.nic.host.name}->{self.target.name} "
            f"{self.state.value}>"
        )
