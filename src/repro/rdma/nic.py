"""RDMA NIC model.

The requester NIC is the serialisation point for outgoing verbs: payloads
leave at link bandwidth through a single FIFO transmit queue (reusing the
service-queue machinery from :class:`~repro.sim.cpu.CpuPool` with one
server).  Propagation and the remote NIC's fixed per-verb processing are
folded into a small base latency.  The remote *CPU* is never charged —
that is the whole point of one-sided RDMA.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.net.fabric import Fabric
from repro.net.host import Host
from repro.net.latency import (
    TEN_GBE_BYTES_PER_US,
    FixedLatency,
    LatencyModel,
    LinearLatency,
)
from repro.obs import state as obs_state
from repro.rdma.errors import RdmaError, RdmaTimeout
from repro.sim.cpu import CpuPool
from repro.sim.engine import Event

__all__ = ["Rnic", "DEFAULT_VERB_TIMEOUT_US"]

DEFAULT_VERB_TIMEOUT_US = 1_000.0
"""Retry-exhaustion budget for a verb against an unreachable peer."""

DEFAULT_PROPAGATION = LinearLatency(base_us=1.5, bytes_per_us=1e12, jitter=0.05)
"""One-way switch+wire+remote-NIC latency, independent of payload size."""


class Rnic:
    """Per-host RDMA NIC."""

    def __init__(
        self,
        host: Host,
        fabric: Fabric,
        bytes_per_us: float = TEN_GBE_BYTES_PER_US,
        propagation: Optional[LatencyModel] = None,
        verb_overhead_us: float = 0.3,
        timeout_us: float = DEFAULT_VERB_TIMEOUT_US,
    ):
        self.host = host
        self.fabric = fabric
        self.bytes_per_us = bytes_per_us
        self.propagation = propagation or DEFAULT_PROPAGATION
        self.verb_overhead_us = verb_overhead_us
        self.timeout_us = timeout_us
        self._txq = CpuPool(host.sim, 1, name=f"{host.name}.rnic.tx")
        self._last_arrival: Dict[str, float] = {}
        self.verbs_issued = 0
        self.failed = False
        host.services["rnic"] = self

    def on_host_crash(self) -> None:
        """Drop queued transmissions; in-service ones are dropped on exit."""
        self._txq.drain()

    # -- fault injection -------------------------------------------------------

    def fail_queues(self) -> None:
        """Push every queue pair on this NIC into the error state.

        Models a NIC/port fault without a host crash: outgoing verbs are
        silently lost from this instant (requesters see retry-exhaustion
        timeouts), while the host's CPU keeps running.  Mirrors an RC QP
        transitioning to the IB error state.
        """
        self.failed = True
        self._txq.drain()

    def restore_queues(self) -> None:
        """Recover the NIC; subsequent verbs flow again.

        Connections themselves are not re-established here — protocol
        layers observe the timeouts and reconnect, exactly as they do
        after a crash-induced QP loss.
        """
        self.failed = False

    def ordered_deliver(
        self, target: Host, on_arrival: Callable[[], None]
    ) -> None:
        """Deliver with RC in-order semantics toward *target*.

        Reliable connections never reorder within a queue pair; latency
        jitter alone could, so arrival times toward each target are
        clamped to be monotonically increasing.
        """
        if not self.host.alive or self.failed:
            return
        sim = self.host.sim
        rng = self.fabric.rng.stream("rdma")
        delay = self.propagation.sample(rng, 0)
        arrival = max(sim.now + delay, self._last_arrival.get(target.name, 0.0))
        self._last_arrival[target.name] = arrival
        self.fabric.deliver(
            self.host,
            target,
            0,
            on_arrival,
            latency=FixedLatency(arrival - sim.now),
            stream="rdma",
        )

    def transfer(
        self,
        target: Host,
        request_bytes: int,
        response_bytes: int,
        apply_remote: Callable[[], object],
        timeout_us: Optional[float] = None,
        verb: str = "verb",
    ) -> Event:
        """Issue one verb: serialise, propagate, apply remotely, ack back.

        *apply_remote* runs atomically at the arrival instant on the target
        and returns the verb result; raising :class:`RdmaError` there turns
        the ack into an error completion.  The returned event triggers with
        the result or fails with the error / :class:`RdmaTimeout`.
        *verb* labels the transfer for observability (read / write / cas).
        """
        sim = self.host.sim
        done = Event(sim)
        budget = timeout_us if timeout_us is not None else self.timeout_us
        guard = sim.schedule(
            budget,
            lambda: done.try_fail(
                RdmaTimeout(f"verb to {target.name} exceeded {budget}us")
            ),
        )
        # Completed verbs cancel their timeout guard so the heap holds
        # only live work (one guard per in-flight verb, not per issued).
        done.add_callback(lambda _ev: sim.cancel(guard))
        self.verbs_issued += 1
        if obs_state.REGISTRY is not None:
            registry = obs_state.REGISTRY
            registry.counter("rdma.verbs", type=verb).inc()
            registry.counter("rdma.bytes", dir="tx").inc(request_bytes)
            registry.counter("rdma.bytes", dir="rx").inc(response_bytes)
        span = None
        if obs_state.TRACER is not None:
            span = obs_state.TRACER.span(
                f"rdma.{verb}",
                sim.now,
                src=self.host.name,
                dst=target.name,
                req_bytes=request_bytes,
                resp_bytes=response_bytes,
            )

            def _finish(event: Event, _span=span) -> None:
                _span.annotate(ok=event.ok)
                _span.finish(sim.now)

            done.add_callback(_finish)

        def after_serialise(_event: Event) -> None:
            if not self.host.alive:
                return  # the requester died with the op still in its tx queue
            if span is not None:
                span.event("nic.serialised", sim.now)
            if not done.settled:
                self._propagate(
                    target, request_bytes, response_bytes, apply_remote, done, span
                )

        serialise_cost = request_bytes / self.bytes_per_us + self.verb_overhead_us
        self._txq.execute(serialise_cost).add_callback(after_serialise)
        return done

    def post_many(self, posts) -> "list[Event]":
        """Flush prepared verbs (:class:`~repro.rdma.doorbell.PostedVerb`)
        in one doorbell.

        The whole batch pays ``verb_overhead_us`` **once** — that is the
        doorbell/PCIe cost — and the payloads serialise back-to-back at
        link bandwidth through the same FIFO transmit queue as unbatched
        verbs.  Everything after serialisation (per-target in-order
        delivery, remote apply, acks, timeout guards) is the unbatched
        :meth:`transfer` machinery per post, so error and ordering
        semantics are identical.  Posts whose ``done`` is already
        settled (failed validation) are skipped.
        """
        sim = self.host.sim
        registry = obs_state.REGISTRY
        live = []
        total_request_bytes = 0
        for post in posts:
            done = post.done
            if done.settled:
                continue
            target = post.target
            budget = post.timeout_us if post.timeout_us is not None else self.timeout_us
            guard = sim.schedule(
                budget,
                lambda done=done, target=target, budget=budget: done.try_fail(
                    RdmaTimeout(f"verb to {target.name} exceeded {budget}us")
                ),
            )
            done.add_callback(lambda _ev, guard=guard: sim.cancel(guard))
            self.verbs_issued += 1
            if registry is not None:
                registry.counter("rdma.verbs", type=post.verb).inc()
                registry.counter("rdma.bytes", dir="tx").inc(post.request_bytes)
                registry.counter("rdma.bytes", dir="rx").inc(post.response_bytes)
            total_request_bytes += post.request_bytes
            live.append(post)
        if not live:
            return [post.done for post in posts]
        if registry is not None:
            registry.counter("rdma.doorbells").inc()
            registry.counter("rdma.doorbell_posts").inc(len(live))
        span = None
        if obs_state.TRACER is not None:
            span = obs_state.TRACER.span(
                "rdma.doorbell",
                sim.now,
                src=self.host.name,
                posts=len(live),
                req_bytes=total_request_bytes,
            )

        def after_serialise(_event: Event) -> None:
            if not self.host.alive:
                return  # the requester died with the flush still queued
            if span is not None:
                # The span covers the doorbell flush wait: post -> all
                # payloads serialised onto the link.
                span.event("nic.serialised", sim.now)
                span.finish(sim.now)
            for post in live:
                if not post.done.settled:
                    self._propagate(
                        post.target,
                        post.request_bytes,
                        post.response_bytes,
                        post.apply_remote,
                        post.done,
                        span,
                    )

        serialise_cost = (
            total_request_bytes / self.bytes_per_us + self.verb_overhead_us
        )
        self._txq.execute(serialise_cost).add_callback(after_serialise)
        return [post.done for post in posts]

    def _propagate(
        self,
        target: Host,
        request_bytes: int,
        response_bytes: int,
        apply_remote: Callable[[], object],
        done: Event,
        span=None,
    ) -> None:
        sim = self.host.sim

        def arrive() -> None:
            try:
                result = apply_remote()
            except RdmaError as exc:
                # Bind the exception eagerly: Python clears the except-clause
                # variable when the block exits, before the ack fires.
                error = exc
                if span is not None:
                    span.event("remote.error", sim.now, error=type(error).__name__)
                self._ack(target, 0, lambda: done.try_fail(error))
                return
            if span is not None:
                span.event("remote.applied", sim.now)
            self._ack(target, response_bytes, lambda: done.try_trigger(result))

        # Unreachable or in-flight loss is silent: the timeout fires.
        self.ordered_deliver(target, arrive)

    def _ack(self, target: Host, payload_bytes: int, complete: Callable[[], None]) -> None:
        """Return the completion, serialising the response payload through
        the *target's* transmit queue.

        Bulk responses (recovery copy reads, WAL scans) therefore contend
        with the workload's read responses on the memory node's egress
        link — the resource whose saturation produces the Figure 11
        throughput dip."""
        model = self.propagation
        rng = self.fabric.rng.stream("rdma")
        src_incarnation = self.host.incarnation

        def back() -> None:
            if self.host.alive and self.host.incarnation == src_incarnation and not self.failed:
                complete()

        if not self.fabric.reachable(target.name, self.host.name):
            return
        delay = model.sample(rng, 0)
        target_nic: Optional["Rnic"] = target.services.get("rnic")
        if payload_bytes > 0 and target_nic is not None and target.alive:
            cost = payload_bytes / target_nic.bytes_per_us

            def after_serialise(_event: Event) -> None:
                if target.alive:
                    self.host.sim.schedule(delay, back)

            target_nic._txq.execute(cost).add_callback(after_serialise)
        else:
            extra = payload_bytes / self.bytes_per_us
            self.host.sim.schedule(delay + extra, back)
