"""Simulated one-sided RDMA substrate.

Sift's architecture rests on four properties of one-sided RDMA (§2.2,
§3.1 of the paper), all of which this package models explicitly:

1. **Passivity** — READ/WRITE/CAS execute against a registered memory
   region without involving the target host's CPU; only connection setup
   touches it.
2. **Atomicity** — CAS operates on an aligned 64-bit word atomically and
   returns the previous value.
3. **Reliability** — the reliable-connection (RC) transport acknowledges
   every completed verb; completion means the remote memory was updated.
4. **Connection fencing** — a memory region can be exported with
   at-most-one-connection semantics: accepting a new queue pair revokes
   the previous one, so delayed writes from a deposed coordinator are
   dropped by the "hardware" (§3.2, network-partition safety).

Public surface:

* :class:`~repro.rdma.memory.MemoryRegion` — byte-addressable registered
  memory with 64-bit CAS.
* :class:`~repro.rdma.nic.Rnic` — per-host NIC with a serialisation queue.
* :class:`~repro.rdma.qp.QueuePair` — verbs (READ / WRITE / CAS) over RC.
* :class:`~repro.rdma.listener.RdmaListener` — the target-side region
  export table (the only part that uses the target CPU).
* :class:`~repro.rdma.messaging.RdmaMessenger` — two-sided SEND/RECV used
  by the Raft-R baseline.
* :class:`~repro.rdma.doorbell.DoorbellQueue` /
  :class:`~repro.rdma.doorbell.PostedVerb` — doorbell-style verb
  batching: stage writes with
  :meth:`~repro.rdma.qp.QueuePair.prepare_write`, flush N of them under
  one doorbell charge with :meth:`~repro.rdma.nic.Rnic.post_many`.
"""

from repro.rdma.doorbell import DoorbellQueue, PostedVerb
from repro.rdma.errors import (
    RdmaConnectionRevoked,
    RdmaError,
    RdmaProtectionError,
    RdmaTimeout,
)
from repro.rdma.listener import RdmaListener
from repro.rdma.memory import MemoryRegion
from repro.rdma.messaging import RdmaMessenger
from repro.rdma.nic import Rnic
from repro.rdma.qp import QueuePair

__all__ = [
    "DoorbellQueue",
    "MemoryRegion",
    "PostedVerb",
    "QueuePair",
    "RdmaConnectionRevoked",
    "RdmaError",
    "RdmaListener",
    "RdmaMessenger",
    "RdmaProtectionError",
    "RdmaTimeout",
    "Rnic",
]
