"""Two-sided RDMA SEND/RECV messaging.

The Raft-R baseline is "a basic Raft-like system using RDMA send/recv
verbs" (§6.3.1): messages travel on the RDMA latency profile, but —
unlike one-sided verbs — the *receiver's CPU* must process each message.
This module provides the mailbox-style messenger those followers use.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.net.host import Host
from repro.rdma.nic import Rnic
from repro.sim.engine import Event

__all__ = ["RdmaMessenger"]


class RdmaMessenger:
    """SEND/RECV endpoint: a receive queue drained by host processes."""

    def __init__(self, host: Host, nic: Rnic, name: str = "msgr"):
        self.host = host
        self.nic = nic
        self.name = name
        self._queue: Deque[Any] = deque()
        self._waiters: Deque[Event] = deque()
        host.services[f"rdma-msgr:{name}"] = self

    # -- sending ---------------------------------------------------------------

    def send(self, dst: "RdmaMessenger", payload: Any, size_bytes: int) -> None:
        """Post a SEND toward *dst* (fire-and-forget, reliable transport).

        Delivery charges the sender's NIC transmit queue and the RDMA
        propagation latency; a dead or partitioned receiver silently
        drops the message, as an errored QP would.
        """
        def after_serialise(_event: Event) -> None:
            if not self.host.alive:
                return
            self.nic.ordered_deliver(dst.host, lambda: dst._deliver(payload))

        cost = size_bytes / self.nic.bytes_per_us + self.nic.verb_overhead_us
        self.nic._txq.execute(cost).add_callback(after_serialise)

    # -- receiving ---------------------------------------------------------------

    def recv(self) -> Event:
        """Event that triggers with the next message (FIFO)."""
        event = Event(self.host.sim)
        if self._queue:
            event.trigger(self._queue.popleft())
        else:
            self._waiters.append(event)
        return event

    def _deliver(self, payload: Any) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.try_trigger(payload):
                return
        self._queue.append(payload)

    def on_host_crash(self) -> None:
        """Receive queue is soft state; it dies with the host."""
        self._queue.clear()
        self._waiters.clear()

    def __len__(self) -> int:
        return len(self._queue)
