"""Registered memory regions.

A region is a contiguous, byte-addressable buffer pinned on a host and
exported for remote access.  All verb handlers ultimately land here; the
methods are synchronous because the simulator applies each verb
atomically at its arrival instant.

Storage is **sparse**: the region is backed by fixed-size pages that
materialise on first write, so experiments can model multi-gigabyte
replicated memories (1M keys x 1 KiB in the paper's setup) without the
simulator itself allocating gigabytes.
"""

from __future__ import annotations

from typing import Dict

from repro.rdma.errors import RdmaProtectionError

__all__ = ["MemoryRegion"]

PAGE_BYTES = 4096


class MemoryRegion:
    """A named, bounds-checked, sparsely backed byte buffer with atomics."""

    WORD = 8  # atomics operate on 64-bit words

    def __init__(self, name: str, size: int):
        if size <= 0:
            raise ValueError(f"region size must be positive, got {size}")
        self.name = name
        self.size = size
        self._pages: Dict[int, bytearray] = {}

    # -- plain access --------------------------------------------------------

    def read(self, offset: int, length: int) -> bytes:
        """Copy *length* bytes starting at *offset*."""
        self._check(offset, length)
        page_index, page_offset = divmod(offset, PAGE_BYTES)
        if page_offset + length <= PAGE_BYTES:  # single-page fast path
            page = self._pages.get(page_index)
            if page is None:
                return bytes(length)
            return bytes(page[page_offset : page_offset + length])
        out = bytearray(length)
        position = 0
        while position < length:
            page_index, page_offset = divmod(offset + position, PAGE_BYTES)
            take = min(length - position, PAGE_BYTES - page_offset)
            page = self._pages.get(page_index)
            if page is not None:
                out[position : position + take] = page[page_offset : page_offset + take]
            position += take
        return bytes(out)

    def write(self, offset: int, data: bytes) -> None:
        """Overwrite the bytes at *offset* with *data*."""
        length = len(data)
        self._check(offset, length)
        page_index, page_offset = divmod(offset, PAGE_BYTES)
        if page_offset + length <= PAGE_BYTES:  # single-page fast path
            page = self._pages.get(page_index)
            if page is None:
                page = bytearray(PAGE_BYTES)
                self._pages[page_index] = page
            page[page_offset : page_offset + length] = data
            return
        position = 0
        while position < length:
            page_index, page_offset = divmod(offset + position, PAGE_BYTES)
            take = min(length - position, PAGE_BYTES - page_offset)
            page = self._pages.get(page_index)
            if page is None:
                page = bytearray(PAGE_BYTES)
                self._pages[page_index] = page
            page[page_offset : page_offset + take] = data[position : position + take]
            position += take

    def fill(self, value: int = 0) -> None:
        """Reset the whole region (models a fresh DRAM allocation)."""
        self._pages.clear()
        if value:
            raise NotImplementedError("only zero-fill is supported")

    # -- aliasing --------------------------------------------------------------

    def alias(self, name: str) -> "MemoryRegion":
        """A second named view over the *same* backing pages.

        Used to export one buffer under two protection domains — e.g.
        the replicated region is exported exclusively to the serving
        coordinator while a ``repmem-recovery`` alias admits the
        fragment pushers of partitioned recovery.  Reads and writes
        through either name land in the same bytes.
        """
        view = MemoryRegion.__new__(MemoryRegion)
        view.name = name
        view.size = self.size
        view._pages = self._pages
        return view

    # -- atomics ---------------------------------------------------------------

    def read_word(self, offset: int) -> int:
        """Atomically read the 64-bit word at *offset* (must be aligned)."""
        self._check_word(offset)
        return int.from_bytes(self.read(offset, self.WORD), "little")

    def write_word(self, offset: int, value: int) -> None:
        """Atomically write the 64-bit word at *offset*."""
        self._check_word(offset)
        self.write(offset, (value & (2**64 - 1)).to_bytes(self.WORD, "little"))

    def compare_and_swap(self, offset: int, expected: int, new: int) -> int:
        """RDMA CAS: swap iff the current word equals *expected*.

        Returns the value observed *before* the operation, as the verb
        does; the caller infers success by comparing it to *expected*.
        """
        current = self.read_word(offset)
        if current == expected:
            self.write_word(offset, new)
        return current

    # -- bounds ---------------------------------------------------------------

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise RdmaProtectionError(
                f"access [{offset}, {offset + length}) outside region "
                f"{self.name!r} of size {self.size}"
            )

    def _check_word(self, offset: int) -> None:
        self._check(offset, self.WORD)
        if offset % self.WORD != 0:
            raise RdmaProtectionError(
                f"misaligned atomic at offset {offset} in region {self.name!r}"
            )

    def __repr__(self) -> str:
        return f"<MemoryRegion {self.name} {self.size}B>"
