"""Synthetic Google-cluster-style failure trace.

The paper replays machine-failure events from the 2011 Google cluster
trace [30]: "a 29 day trace of cluster information ... approximately
12500 machines".  The published trace cannot be redistributed here, so
this module generates a synthetic equivalent with the two features that
drive the Figure 8 result:

* a **background** Poisson process of independent machine failures
  (hardware faults, kernel panics), and
* **correlated bursts** — rack/PDU/maintenance events that take out
  tens of machines within a minute.  Burst sizes are heavy-tailed; the
  largest events reach roughly two racks (~80 machines), which is what
  sizes the backup pool: a pool must absorb the coordinators unlucky
  enough to share the biggest burst.

The generator is deterministic for a given seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, NamedTuple

__all__ = ["TraceConfig", "FailureEvent", "generate_trace"]

DAY_S = 24 * 3600.0


class FailureEvent(NamedTuple):
    """One machine failing at one moment."""

    time_s: float
    machine: int


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the synthetic trace."""

    machines: int = 12_500
    duration_days: float = 29.0
    background_per_hour: float = 2.0
    """Independent machine failures per hour, cluster-wide."""

    burst_per_hour: float = 0.15
    """Correlated failure events per hour."""

    burst_median: float = 10.0
    burst_sigma: float = 0.95
    """Lognormal burst-size parameters (median machines per burst)."""

    burst_max: int = 85
    """Cap: roughly two racks."""

    burst_spread_s: float = 45.0
    """Machines within one burst fail within this window."""

    @property
    def duration_s(self) -> float:
        return self.duration_days * DAY_S


def generate_trace(config: TraceConfig = TraceConfig(), seed: int = 0) -> List[FailureEvent]:
    """Generate a time-sorted failure event list."""
    rng = random.Random(seed)
    events: List[FailureEvent] = []

    # Background: exponential inter-arrival times.
    rate = config.background_per_hour / 3600.0
    t = rng.expovariate(rate) if rate > 0 else math.inf
    while t < config.duration_s:
        events.append(FailureEvent(t, rng.randrange(config.machines)))
        t += rng.expovariate(rate)

    # Bursts: a lognormal number of machines inside a short window.
    rate = config.burst_per_hour / 3600.0
    t = rng.expovariate(rate) if rate > 0 else math.inf
    while t < config.duration_s:
        size = int(round(rng.lognormvariate(math.log(config.burst_median), config.burst_sigma)))
        size = max(2, min(size, config.burst_max))
        victims = rng.sample(range(config.machines), size)
        for machine in victims:
            offset = rng.uniform(0.0, config.burst_spread_s)
            events.append(FailureEvent(t + offset, machine))
        t += rng.expovariate(rate)

    events.sort()
    return events
