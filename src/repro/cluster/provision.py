"""Table 2: machine configurations normalized for performance (§6.4.1).

The paper provisions each system so a read-heavy workload reaches the
same target throughput (380k ops/s at F=1, 350k at F=2), reading the
core counts off Figure 7.  The memory sizes come from the state-machine
footprint: Raft nodes hold a full replica (64 GB); Sift CPU nodes hold
only soft state — the cache, index table, and bitmap (32 GB); Sift
memory nodes hold the full state (64 GB), shrunk by a factor of F+1
under erasure coding (32 GB at F=1, 22 GB at F=2).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cluster.pricing import MachineSpec

__all__ = ["TABLE2", "TARGET_THROUGHPUT", "machine_table", "deployment_machines"]

TARGET_THROUGHPUT = {1: 380_000, 2: 350_000}
"""§6.4.3: read-heavy targets used to normalize provisioning."""

# (system, F) -> {role: MachineSpec}
TABLE2: Dict[Tuple[str, int], Dict[str, MachineSpec]] = {
    ("raft", 1): {"node": MachineSpec(8, 64)},
    ("raft", 2): {"node": MachineSpec(8, 64)},
    ("sift", 1): {"cpu": MachineSpec(10, 32), "memory": MachineSpec(1, 64)},
    ("sift", 2): {"cpu": MachineSpec(10, 32), "memory": MachineSpec(1, 64)},
    ("sift-ec", 1): {"cpu": MachineSpec(12, 32), "memory": MachineSpec(1, 32)},
    ("sift-ec", 2): {"cpu": MachineSpec(12, 32), "memory": MachineSpec(1, 22)},
}


def deployment_machines(
    system: str,
    f: int,
    shared_backups: bool = False,
    groups: int = 100,
    backup_pool: int = 2,
) -> List[Tuple[MachineSpec, float]]:
    """Machines (spec, count-per-group) for one consensus group.

    With shared backups a group provisions a single coordinator CPU node
    plus its amortised share of the pool (§5.2); otherwise F+1 CPU nodes
    (Sift) or 2F+1 full nodes (Raft).
    """
    specs = TABLE2[(system, f)]
    if system == "raft":
        return [(specs["node"], 2 * f + 1)]
    cpu_count: float = f + 1
    if shared_backups:
        cpu_count = 1 + backup_pool / groups
    return [(specs["cpu"], cpu_count), (specs["memory"], 2 * f + 1)]


def machine_table(f: int) -> List[Tuple[str, MachineSpec]]:
    """Rows of Table 2 for one fault level."""
    return [
        ("Raft-R Node", TABLE2[("raft", f)]["node"]),
        ("Sift CPU Node", TABLE2[("sift", f)]["cpu"]),
        ("Sift Memory Node", TABLE2[("sift", f)]["memory"]),
        ("Sift EC CPU Node", TABLE2[("sift-ec", f)]["cpu"]),
        ("Sift EC Memory Node", TABLE2[("sift-ec", f)]["memory"]),
    ]
