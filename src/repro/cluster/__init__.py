"""Cloud deployment modelling (§5.2, §6.4).

* :mod:`~repro.cluster.pricing` — the AWS/GCP marginal prices the paper
  derives from October 2019 price sheets.
* :mod:`~repro.cluster.provision` — Table 2's normalized machine
  configurations per system and fault level.
* :mod:`~repro.cluster.costs` — per-group deployment cost and the
  relative-cost analysis behind Figures 9 and 10.
* :mod:`~repro.cluster.trace` — a synthetic Google-cluster-style machine
  failure trace (29 days, ~12,500 machines, correlated bursts).
* :mod:`~repro.cluster.backups` — the trace-driven shared-backup-pool
  simulation behind Figure 8.
"""

from repro.cluster.backups import BackupSimResult, simulate_backup_pool
from repro.cluster.costs import group_cost_per_hour, relative_costs
from repro.cluster.pricing import PRICING, MachineSpec, machine_cost_per_hour
from repro.cluster.provision import TABLE2, machine_table
from repro.cluster.trace import FailureEvent, TraceConfig, generate_trace

__all__ = [
    "BackupSimResult",
    "FailureEvent",
    "MachineSpec",
    "PRICING",
    "TABLE2",
    "TraceConfig",
    "generate_trace",
    "group_cost_per_hour",
    "machine_cost_per_hour",
    "machine_table",
    "relative_costs",
    "simulate_backup_pool",
]
