"""Trace-driven shared-backup-pool simulation (Figure 8, §6.4.2).

Replays a machine-failure trace against G Sift groups, "randomly
assigning machines to Sift groups and observing the additional recovery
time incurred by a lack of backup nodes.  When a node experienced a
failure, it was assumed that it would take 100 seconds to provision a
replacement — the average time to start up a Linux VM in EC2 [18]."

Model:

* each group occupies 4 distinct machines (F=1: 3 memory + 1 CPU);
* the pool holds B ready backup CPU VMs; when a group's *coordinator*
  machine fails, the group grabs a ready backup (zero additional
  recovery time) and the pool immediately starts provisioning a
  replacement VM (ready 100 s later); if the pool is empty the group
  waits for the next VM to arrive, and that wait is the *additional
  recovery time* charged to the fault;
* memory-node failures provision replacement VMs too, but the group
  keeps serving meanwhile (§3.4.2), so they add no recovery time;
* the metric is total additional recovery time divided by the number of
  failure events in the trace ("recovery time per fault"), averaged
  over repetitions with different random group placements.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, NamedTuple, Optional

from repro.cluster.trace import TraceConfig, generate_trace

__all__ = [
    "BackupSimResult",
    "PoolAccountant",
    "desired_pool_size",
    "simulate_backup_pool",
    "sweep_backup_pool",
]

PROVISION_S = 100.0  # [18]: average Linux VM start-up time on EC2
NODES_PER_GROUP = 4  # F=1: 3 memory nodes + 1 CPU node (§6.4.2)


class PoolAccountant:
    """Per-fault recovery-time accounting for a shared backup pool.

    One fault = one coordinator machine loss.  A pool of *backups* VMs
    is modelled as a min-heap of ready times: a fault grabs the earliest
    VM (charging ``max(0, ready - t)`` of additional recovery time) and
    the grabbed VM's replacement starts provisioning the moment it is
    handed over; with no pool at all the group provisions its own VM and
    is charged the full provisioning delay.  Both the Figure 8 trace
    replay (:func:`simulate_backup_pool`) and the *live*
    :class:`repro.core.backups.BackupPool` reconciliation
    (``fig8live``) run their charges through this one class, so the two
    models cannot drift apart.
    """

    def __init__(self, backups: int, provision_s: float = PROVISION_S):
        self.provision_s = provision_s
        self._ready: List[float] = [0.0] * backups
        heapq.heapify(self._ready)
        self.faults = 0
        self.waits = 0  # faults that found no ready VM
        self.total_extra_s = 0.0

    def fault(self, time_s: float) -> float:
        """Charge one coordinator fault at *time_s*; returns its wait."""
        self.faults += 1
        if self._ready:
            ready = heapq.heappop(self._ready)
            extra = max(0.0, ready - time_s)
            # The consumed backup's replacement starts provisioning now.
            heapq.heappush(self._ready, max(ready, time_s) + self.provision_s)
        else:
            # No pool at all: the group provisions its own VM.
            extra = self.provision_s
        if extra > 0:
            self.waits += 1
        self.total_extra_s += extra
        return extra

    def per_fault_s(self, events: Optional[int] = None) -> float:
        """Mean additional recovery time, divided by *events* if given
        (Figure 8 divides by *all* trace events, not only coordinator
        faults), else by the coordinator faults charged so far."""
        n = self.faults if events is None else events
        return self.total_extra_s / n if n else 0.0


def desired_pool_size(
    fault_times_s: List[float],
    provision_s: float = PROVISION_S,
    max_backups: int = 8,
    target_extra_s: float = 0.0,
    min_backups: int = 1,
) -> int:
    """The smallest pool that absorbs an observed fault burst (Fig 8).

    Replays *fault_times_s* (coordinator-fault request times, seconds,
    any order) through the :class:`PoolAccountant` heap model for each
    candidate size and returns the smallest ``B`` whose total additional
    recovery time stays at or below *target_extra_s* — the reconciler's
    desired capacity for the burstiness it just observed.  Falls back to
    *max_backups* when even that cannot absorb the burst.  Deterministic:
    pure arithmetic on the observed times, no RNG.
    """
    if min_backups < 0 or max_backups < min_backups:
        raise ValueError(
            f"need 0 <= min_backups <= max_backups, got {min_backups}..{max_backups}"
        )
    times = sorted(fault_times_s)
    if not times:
        return min_backups
    for backups in range(max(min_backups, 1), max_backups + 1):
        accountant = PoolAccountant(backups, provision_s=provision_s)
        for time_s in times:
            accountant.fault(time_s)
        if accountant.total_extra_s <= target_extra_s:
            return max(backups, min_backups)
    return max_backups


class BackupSimResult(NamedTuple):
    """One (groups, backups) cell."""

    groups: int
    backups: int
    recovery_time_per_fault_s: float
    coordinator_faults: int
    total_faults: int
    waits: int  # faults that found the pool empty


def simulate_backup_pool(
    events,
    machines: int,
    groups: int,
    backups: int,
    rng: random.Random,
) -> BackupSimResult:
    """Replay *events* once with a fresh random placement.

    *events* is a list of :class:`FailureEvent` or a
    :class:`repro.chaos.FaultSchedule` of ``crash_machine`` actions
    (the chaos layer's declarative form of the same trace).
    """
    if hasattr(events, "to_failure_trace"):
        events = events.to_failure_trace()
    if groups * NODES_PER_GROUP > machines:
        raise ValueError(
            f"{groups} groups x {NODES_PER_GROUP} nodes exceed {machines} machines"
        )
    placement = rng.sample(range(machines), groups * NODES_PER_GROUP)
    coordinator_of: Dict[int, int] = {}  # machine -> group
    used = set(placement)
    for group in range(groups):
        coordinator_of[placement[group * NODES_PER_GROUP]] = group

    accountant = PoolAccountant(backups)
    free_machines = [m for m in range(machines) if m not in used]
    rng.shuffle(free_machines)

    for event in events:
        group = coordinator_of.pop(event.machine, None)
        if group is None:
            continue
        accountant.fault(event.time_s)
        # The group's new coordinator runs on a fresh machine.
        if free_machines:
            replacement = free_machines.pop()
            coordinator_of[replacement] = group

    return BackupSimResult(
        groups=groups,
        backups=backups,
        recovery_time_per_fault_s=accountant.per_fault_s(len(events)),
        coordinator_faults=accountant.faults,
        total_faults=len(events),
        waits=accountant.waits,
    )


def sweep_backup_pool(
    group_counts: List[int],
    backup_counts: List[int],
    repetitions: int = 50,
    config: TraceConfig = TraceConfig(),
    seed: int = 0,
) -> Dict[int, List[BackupSimResult]]:
    """Figure 8's sweep: mean recovery time per fault for each cell.

    The paper runs 50 repetitions per combination; each repetition uses
    a fresh random placement over the same trace.  The trace travels as
    a :class:`repro.chaos.FaultSchedule` so the sweep exercises the same
    declarative fault representation as the live-cluster chaos tests;
    the lift/lower round trip is exact, and the per-repetition placement
    RNG derivation is unchanged, so Figure 8's numbers are unchanged.
    """
    from repro.chaos import FaultSchedule

    events = FaultSchedule.from_failure_trace(generate_trace(config, seed=seed))
    out: Dict[int, List[BackupSimResult]] = {}
    for groups in group_counts:
        row: List[BackupSimResult] = []
        for backups in backup_counts:
            total = 0.0
            coordinator_faults = 0
            wait_count = 0
            for repetition in range(repetitions):
                rng = random.Random((seed, groups, backups, repetition).__hash__())
                result = simulate_backup_pool(
                    events, config.machines, groups, backups, rng
                )
                total += result.recovery_time_per_fault_s
                coordinator_faults += result.coordinator_faults
                wait_count += result.waits
            row.append(
                BackupSimResult(
                    groups=groups,
                    backups=backups,
                    recovery_time_per_fault_s=total / repetitions,
                    coordinator_faults=coordinator_faults // repetitions,
                    total_faults=len(events),
                    waits=wait_count // repetitions,
                )
            )
        out[groups] = row
    return out
