"""Trace-driven shared-backup-pool simulation (Figure 8, §6.4.2).

Replays a machine-failure trace against G Sift groups, "randomly
assigning machines to Sift groups and observing the additional recovery
time incurred by a lack of backup nodes.  When a node experienced a
failure, it was assumed that it would take 100 seconds to provision a
replacement — the average time to start up a Linux VM in EC2 [18]."

Model:

* each group occupies 4 distinct machines (F=1: 3 memory + 1 CPU);
* the pool holds B ready backup CPU VMs; when a group's *coordinator*
  machine fails, the group grabs a ready backup (zero additional
  recovery time) and the pool immediately starts provisioning a
  replacement VM (ready 100 s later); if the pool is empty the group
  waits for the next VM to arrive, and that wait is the *additional
  recovery time* charged to the fault;
* memory-node failures provision replacement VMs too, but the group
  keeps serving meanwhile (§3.4.2), so they add no recovery time;
* the metric is total additional recovery time divided by the number of
  failure events in the trace ("recovery time per fault"), averaged
  over repetitions with different random group placements.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, NamedTuple

from repro.cluster.trace import TraceConfig, generate_trace

__all__ = ["BackupSimResult", "simulate_backup_pool", "sweep_backup_pool"]

PROVISION_S = 100.0  # [18]: average Linux VM start-up time on EC2
NODES_PER_GROUP = 4  # F=1: 3 memory nodes + 1 CPU node (§6.4.2)


class BackupSimResult(NamedTuple):
    """One (groups, backups) cell."""

    groups: int
    backups: int
    recovery_time_per_fault_s: float
    coordinator_faults: int
    total_faults: int
    waits: int  # faults that found the pool empty


def simulate_backup_pool(
    events,
    machines: int,
    groups: int,
    backups: int,
    rng: random.Random,
) -> BackupSimResult:
    """Replay *events* once with a fresh random placement.

    *events* is a list of :class:`FailureEvent` or a
    :class:`repro.chaos.FaultSchedule` of ``crash_machine`` actions
    (the chaos layer's declarative form of the same trace).
    """
    if hasattr(events, "to_failure_trace"):
        events = events.to_failure_trace()
    if groups * NODES_PER_GROUP > machines:
        raise ValueError(
            f"{groups} groups x {NODES_PER_GROUP} nodes exceed {machines} machines"
        )
    placement = rng.sample(range(machines), groups * NODES_PER_GROUP)
    coordinator_of: Dict[int, int] = {}  # machine -> group
    used = set(placement)
    for group in range(groups):
        coordinator_of[placement[group * NODES_PER_GROUP]] = group

    # Min-heap of times at which pool VMs become ready.
    pool: List[float] = [0.0] * backups
    heapq.heapify(pool)

    total_extra = 0.0
    coordinator_faults = 0
    waits = 0
    free_machines = [m for m in range(machines) if m not in used]
    rng.shuffle(free_machines)

    for event in events:
        group = coordinator_of.pop(event.machine, None)
        if group is None:
            continue
        coordinator_faults += 1
        if pool:
            ready = heapq.heappop(pool)
            extra = max(0.0, ready - event.time_s)
            # The consumed backup's replacement starts provisioning now.
            heapq.heappush(pool, max(ready, event.time_s) + PROVISION_S)
        else:
            # No pool at all: the group provisions its own VM.
            extra = PROVISION_S
        if extra > 0:
            waits += 1
        total_extra += extra
        # The group's new coordinator runs on a fresh machine.
        if free_machines:
            replacement = free_machines.pop()
            coordinator_of[replacement] = group

    per_fault = total_extra / len(events) if events else 0.0
    return BackupSimResult(
        groups=groups,
        backups=backups,
        recovery_time_per_fault_s=per_fault,
        coordinator_faults=coordinator_faults,
        total_faults=len(events),
        waits=waits,
    )


def sweep_backup_pool(
    group_counts: List[int],
    backup_counts: List[int],
    repetitions: int = 50,
    config: TraceConfig = TraceConfig(),
    seed: int = 0,
) -> Dict[int, List[BackupSimResult]]:
    """Figure 8's sweep: mean recovery time per fault for each cell.

    The paper runs 50 repetitions per combination; each repetition uses
    a fresh random placement over the same trace.  The trace travels as
    a :class:`repro.chaos.FaultSchedule` so the sweep exercises the same
    declarative fault representation as the live-cluster chaos tests;
    the lift/lower round trip is exact, and the per-repetition placement
    RNG derivation is unchanged, so Figure 8's numbers are unchanged.
    """
    from repro.chaos import FaultSchedule

    events = FaultSchedule.from_failure_trace(generate_trace(config, seed=seed))
    out: Dict[int, List[BackupSimResult]] = {}
    for groups in group_counts:
        row: List[BackupSimResult] = []
        for backups in backup_counts:
            total = 0.0
            coordinator_faults = 0
            wait_count = 0
            for repetition in range(repetitions):
                rng = random.Random((seed, groups, backups, repetition).__hash__())
                result = simulate_backup_pool(
                    events, config.machines, groups, backups, rng
                )
                total += result.recovery_time_per_fault_s
                coordinator_faults += result.coordinator_faults
                wait_count += result.waits
            row.append(
                BackupSimResult(
                    groups=groups,
                    backups=backups,
                    recovery_time_per_fault_s=total / repetitions,
                    coordinator_faults=coordinator_faults // repetitions,
                    total_faults=len(events),
                    waits=wait_count // repetitions,
                )
            )
        out[groups] = row
    return out
