"""Cloud pricing model (§6.4.3).

The paper derives marginal per-core and per-GB prices by comparing
compute- and memory-optimised instances (AWS) and from custom machine
types (GCP):

    "These pricing models give us a price of $0.033/core/hr and
    $0.00275/GB/hr for memory for AWS, and $0.033/core/hr and
    $0.00445/GB/hr for memory for GCP."

Costs in §6.4 are pure arithmetic over these constants, so this module
reproduces the paper's numbers exactly.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

__all__ = ["MachineSpec", "Price", "PRICING", "machine_cost_per_hour"]


class MachineSpec(NamedTuple):
    """A custom-provisioned cloud machine."""

    cores: int
    memory_gb: float


class Price(NamedTuple):
    """Marginal prices per hour."""

    per_core: float
    per_gb: float


PRICING: Dict[str, Price] = {
    "aws": Price(per_core=0.033, per_gb=0.00275),
    "gcp": Price(per_core=0.033, per_gb=0.00445),
}


def machine_cost_per_hour(provider: str, spec: MachineSpec) -> float:
    """Hourly cost of one custom machine."""
    price = PRICING[provider]
    return spec.cores * price.per_core + spec.memory_gb * price.per_gb
