"""Deployment cost analysis (Figures 9 and 10, §6.4.3).

Per-group hourly cost of each configuration, and the relative cost
versus Raft-R at equal (normalized) performance and fault tolerance.
The paper's headline numbers — "a cost reduction of up to 35%" at F=1
and "56%" at F=2 for Sift EC with shared backups — fall out of this
arithmetic.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.pricing import machine_cost_per_hour
from repro.cluster.provision import deployment_machines

__all__ = ["group_cost_per_hour", "relative_costs", "CONFIGURATIONS"]

CONFIGURATIONS = [
    ("sift", False),
    ("sift", True),
    ("sift-ec", False),
    ("sift-ec", True),
]
"""(system, shared_backups) bars of Figures 9/10, in the paper's order."""


def group_cost_per_hour(
    provider: str,
    system: str,
    f: int,
    shared_backups: bool = False,
    groups: int = 100,
    backup_pool: int = 2,
) -> float:
    """Hourly cost of one consensus group."""
    machines = deployment_machines(
        system, f, shared_backups=shared_backups, groups=groups, backup_pool=backup_pool
    )
    return sum(
        machine_cost_per_hour(provider, spec) * count for spec, count in machines
    )


def relative_costs(
    provider: str,
    f: int,
    groups: int = 100,
    backup_pool: int = 2,
) -> Dict[str, float]:
    """Percent cost relative to Raft-R (negative = cheaper), per Fig 9/10.

    The paper "assumed 100 Sift groups with a backup pool consisting of
    2 CPU nodes", the pool size read off the Figure 8 simulation.
    """
    baseline = group_cost_per_hour(provider, "raft", f)
    out: Dict[str, float] = {}
    for system, shared in CONFIGURATIONS:
        label = system + (" + shared backups" if shared else "")
        cost = group_cost_per_hour(
            provider, system, f, shared_backups=shared, groups=groups, backup_pool=backup_pool
        )
        out[label] = (cost / baseline - 1.0) * 100.0
    return out
