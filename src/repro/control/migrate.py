"""Live key-range migration between running Sift groups.

Moves the hash arcs a split/merge reassigns from a *source* group to a
*destination* group without dropping a single acked write, while both
groups keep serving.  The protocol, in virtual time order:

1. **Dual-write mirror.**  A hook is installed on the source's serving
   coordinator: every in-range write commits locally and is then
   mirrored to the destination *synchronously, before the ack* — an
   acked in-range write is on the destination no matter what happens
   next.  Mirrors carry the source WAL sequence as a fence.
2. **Copy pass.**  A paginated ``kv.mig_scan`` walks the source's hash
   buckets (after quiescing the apply frontier past every record
   committed before the scan started) and imports each in-range record
   with ``kv.mig_put`` at fence sequence 0, so a stale copy can never
   overwrite a fresher mirrored write however the RPCs interleave.
3. **Failover restart.**  If the source's serving coordinator changes
   identity between hook install and scan end, writes may have been
   acked unmirrored; the manager re-installs the hook on the successor
   and restarts the scan from bucket zero.  Cutover requires one full
   scan under an unchanged coordinator.
4. **Cutover.**  In one atomic step (no intervening yield) the source
   hook flips to *forwarding* and the new ring is installed; the
   instant is stamped in :attr:`MigrationManager.cutover_at`.  Routers
   notice the ring version on their next operation.
5. **Forwarding window.**  In-range operations still reaching the
   source (stale routers, in-flight retries) are redirected to the
   destination; a keeper loop re-installs the forwarding hook on any
   successor coordinator.  Forwarding hooks stay installed after the
   window — retiring a merged-away source is safe only once its
   traffic has drained.

Deterministic: the manager consumes no RNG; every decision is a pure
function of observed simulated state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.kv.client import KvClient
from repro.net.fabric import Fabric
from repro.net.rpc import Reply
from repro.obs import state as obs_state
from repro.obs.stats import StatsSnapshot
from repro.shard.hashing import key_point, ranges_contain
from repro.sim.units import MS, SEC

__all__ = ["MigrationManager"]


class _MirrorHooks:
    """Dual-write phase: in-range writes mirror to the destination."""

    phase = "mirror"

    def __init__(self, manager: "MigrationManager", client: KvClient):
        self.manager = manager
        self.client = client

    def forwards(self, key: bytes) -> bool:
        return False

    def forward(self, op: str, key: bytes, value: Optional[bytes] = None):
        raise RuntimeError("mirror-phase hooks never forward")

    def mirrors(self, key: bytes) -> bool:
        return self.manager.in_range(key)

    def mirror(self, key: bytes, value: Optional[bytes], seq: int):
        return self.manager._mirror(self.client, key, value, seq)


class _ForwardHooks:
    """Post-cutover phase: in-range operations redirect to the destination."""

    phase = "forward"

    def __init__(self, manager: "MigrationManager", client: KvClient):
        self.manager = manager
        self.client = client

    def forwards(self, key: bytes) -> bool:
        manager = self.manager
        if not manager.in_range(key):
            return False
        # A later migration may hand these arcs back (split then merge):
        # once the current ring assigns the key to this hook's own group
        # again, serving locally is authoritative — forwarding would
        # bounce the key between the two groups' stale hooks forever.
        return manager.service.ring.shard_for(bytes(key)) != manager.source

    def forward(self, op: str, key: bytes, value: Optional[bytes] = None):
        return self.manager._forward(self.client, op, key, value)

    def mirrors(self, key: bytes) -> bool:
        return False

    def mirror(self, key: bytes, value: Optional[bytes], seq: int):
        raise RuntimeError("forward-phase hooks never mirror")


class MigrationManager:
    """One live migration of a set of hash arcs between two groups.

    Build one with :meth:`split` or :meth:`merge` (which prepare the
    next ring version), then drive :meth:`run` as a process — usually
    via :meth:`repro.api.Cluster.migrate` or the reconciler.
    """

    def __init__(
        self,
        fabric: Fabric,
        service,
        source: str,
        dest: str,
        ring,
        moved_arcs: List[Tuple[int, int]],
        scan_page_buckets: int = 4096,
        forward_window_us: float = 200 * MS,
        keeper_poll_us: float = 2 * MS,
        ready_timeout_us: float = 30 * SEC,
    ):
        if source == dest:
            raise ValueError("source and destination must differ")
        self.fabric = fabric
        self.sim = fabric.sim
        self.service = service
        self.source = source
        self.dest = dest
        self.ring = ring
        self.moved_arcs = tuple(moved_arcs)
        self.scan_page_buckets = scan_page_buckets
        self.forward_window_us = forward_window_us
        self.keeper_poll_us = keeper_poll_us
        self.ready_timeout_us = ready_timeout_us
        host_name = f"{service.name}-mig-{source}-{dest}"
        suffix = 0
        while host_name in fabric.hosts:
            suffix += 1
            host_name = f"{service.name}-mig-{source}-{dest}.{suffix}"
        self.host = fabric.add_host(host_name, cores=2)
        self._scan_client = KvClient(self.host, fabric, service._group(source))
        self._import_client = KvClient(self.host, fabric, service._group(dest))
        self._dest_clients: Dict[str, KvClient] = {}
        self.stats = {
            "copied": 0,
            "pages": 0,
            "mirrored": 0,
            "forwarded": 0,
            "restarts": 0,
        }
        self.cutover_at: Optional[float] = None
        self.done = False

    # ------------------------------------------------------------------
    # Construction from ring mutations
    # ------------------------------------------------------------------

    @classmethod
    def split(cls, fabric: Fabric, service, shard: str, new_shard: Optional[str] = None, **kwargs):
        """Provision a new group and plan moving half of *shard* to it."""
        group = service.add_group(new_shard)
        ring, moved = service.ring.split(shard, group.name)
        return cls(fabric, service, shard, group.name, ring, moved, **kwargs)

    @classmethod
    def merge(cls, fabric: Fabric, service, shard: str, into: str, **kwargs):
        """Plan moving all of *shard*'s arcs into the running *into*."""
        ring, moved = service.ring.merge(shard, into)
        return cls(fabric, service, shard, into, ring, moved, **kwargs)

    # ------------------------------------------------------------------
    # Hook plumbing (runs on the source coordinator's host)
    # ------------------------------------------------------------------

    def in_range(self, key: bytes) -> bool:
        """Whether *key* falls in a moved arc."""
        return ranges_contain(self.moved_arcs, key_point(bytes(key)))

    def _dest_client_for(self, host) -> KvClient:
        """A destination-group client originating from *host* (cached)."""
        client = self._dest_clients.get(host.name)
        if client is None:
            client = KvClient(host, self.fabric, self.service._group(self.dest))
            self._dest_clients[host.name] = client
        return client

    def _mirror(self, client: KvClient, key: bytes, value: Optional[bytes], seq: int):
        """Process: replicate one acked write to the destination (fenced)."""
        self.stats["mirrored"] += 1
        nbytes = len(key) + (0 if value is None else len(value))
        yield from client._call("kv.mig_put", (bytes(key), value, seq), nbytes)

    def _forward(self, client: KvClient, op: str, key: bytes, value: Optional[bytes]):
        """Process: redirect one post-cutover operation; returns its Reply."""
        self.stats["forwarded"] += 1
        key = bytes(key)
        if op == "put":
            status, result = yield from client._call(
                "kv.put", (key, bytes(value)), len(key) + len(value)
            )
            return Reply((status, result), 32)
        if op == "get":
            status, result = yield from client._call("kv.get", key, len(key))
            nbytes = 16 + (len(result) if isinstance(result, bytes) else 0)
            return Reply((status, result), nbytes)
        status, result = yield from client._call("kv.delete", key, len(key))
        return Reply((status, result), 32)

    def _serving_app(self, group):
        """Process: wait for *group*'s serving coordinator; returns its app."""
        coordinator = yield from group.wait_until_serving(self.ready_timeout_us)
        return coordinator.app

    def _ours(self, app) -> bool:
        hook = getattr(app, "migration", None)
        return hook is not None and getattr(hook, "manager", None) is self

    def _install(self, app, phase_class) -> None:
        app.migration = phase_class(self, self._dest_client_for(app.host))

    # ------------------------------------------------------------------
    # The migration itself
    # ------------------------------------------------------------------

    def _copy_pass(self, source_group, app):
        """Process: scan + import every in-range record; False on failover."""
        buckets = self.service.kv_config.index_buckets
        page = max(1, self.scan_page_buckets)
        for lo in range(0, buckets, page):
            current = source_group.serving_coordinator()
            if current is None or current.app is not app:
                return False
            _status, rows = yield from self._scan_client._call(
                "kv.mig_scan", (lo, lo + page, self.moved_arcs), 64
            )
            self.stats["pages"] += 1
            for key, value in rows:
                yield from self._import_client._call(
                    "kv.mig_put", (key, value, 0), len(key) + len(value)
                )
                self.stats["copied"] += 1
        return True

    def run(self):
        """Process: execute the migration end to end; returns a summary.

        Safe to drive under chaos: coordinator failover on either side
        restarts the copy pass (source) or is absorbed by client
        retries (destination); a concurrent ring install by another
        migration is not supported — the reconciler serializes.
        """
        source_group = self.service._group(self.source)
        dest_group = self.service._group(self.dest)
        yield from dest_group.wait_until_serving(self.ready_timeout_us)
        if obs_state.TRACER is not None:
            obs_state.TRACER.instant(
                "control.migration_start",
                self.sim.now,
                source=self.source,
                dest=self.dest,
                arcs=len(self.moved_arcs),
            )
        while True:
            app = yield from self._serving_app(source_group)
            self._install(app, _MirrorHooks)
            complete = yield from self._copy_pass(source_group, app)
            current = source_group.serving_coordinator()
            if complete and current is not None and current.app is app:
                # Atomic cutover: flip the hook and install the ring with
                # no yield in between, so no in-range op can be acked on
                # the source unmirrored and unforwarded.
                self._install(app, _ForwardHooks)
                self.service.install_ring(self.ring)
                self.cutover_at = self.sim.now
                break
            self.stats["restarts"] += 1
        if obs_state.TRACER is not None:
            obs_state.TRACER.instant(
                "control.migration_cutover",
                self.sim.now,
                source=self.source,
                dest=self.dest,
                ring_version=self.ring.version,
            )
        # Forwarding window: chase coordinator changes so stragglers
        # hitting a successor still get redirected.
        deadline = self.sim.now + self.forward_window_us
        while self.sim.now < deadline:
            yield self.sim.timeout(self.keeper_poll_us)
            coordinator = source_group.serving_coordinator()
            if coordinator is not None and not self._ours(coordinator.app):
                self._install(coordinator.app, _ForwardHooks)
        self.done = True
        return {
            "source": self.source,
            "dest": self.dest,
            "ring_version": self.ring.version,
            "cutover_at_us": self.cutover_at,
            **self.stats,
        }

    def snapshot(self) -> StatsSnapshot:
        """Migration progress under the shared stats protocol."""
        return StatsSnapshot(
            kind="migration",
            name=f"{self.source}->{self.dest}",
            counters={field: float(value) for field, value in self.stats.items()},
            gauges={
                "done": 1.0 if self.done else 0.0,
                "cutover_at_us": -1.0 if self.cutover_at is None else self.cutover_at,
                "arcs": float(len(self.moved_arcs)),
            },
        )

    def __repr__(self) -> str:
        return (
            f"<MigrationManager {self.source}->{self.dest} "
            f"arcs={len(self.moved_arcs)} done={self.done}>"
        )
