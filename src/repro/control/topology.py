"""The read side of the topology API: one immutable snapshot type.

:meth:`repro.api.Cluster.topology` returns a :class:`Topology` instead
of handing out live service internals; everything a caller could
previously only learn by reaching into ``ShardedKvService`` (shards,
groups, ring version, coordinator placement, pool occupancy) is here,
stamped at one instant of virtual time.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Tuple

from repro.obs.stats import StatsSnapshot

__all__ = ["Topology"]


class Topology(NamedTuple):
    """An instantaneous view of a cluster's placement and elasticity.

    *shards* lists the key-range owners on the current ring (routing
    order); *groups* lists every provisioned consensus group, including
    groups off the ring (freshly added, or merged away but not yet
    retired).  *placement* maps each group to its serving coordinator's
    host name, ``None`` while it is mid-failover.
    """

    at_us: float
    shards: Tuple[str, ...]
    ring_version: int
    virtual_nodes: int
    groups: Tuple[str, ...]
    placement: Dict[str, Optional[str]]
    pool: Optional[StatsSnapshot]

    @classmethod
    def of(cls, inner, at_us: float) -> "Topology":
        """Snapshot *inner* (a sharded service, or a lone group)."""
        if hasattr(inner, "ring") and hasattr(inner, "groups"):
            pool = getattr(inner, "pool", None)
            return cls(
                at_us=at_us,
                shards=tuple(inner.ring.shards),
                ring_version=inner.ring.version,
                virtual_nodes=inner.ring.virtual_nodes,
                groups=tuple(group.name for group in inner.groups),
                placement=inner.coordinators(),
                pool=None if pool is None else pool.snapshot(),
            )
        if hasattr(inner, "serving_coordinator"):
            coordinator = inner.serving_coordinator()
            return cls(
                at_us=at_us,
                shards=(inner.name,),
                ring_version=0,
                virtual_nodes=0,
                groups=(inner.name,),
                placement={
                    inner.name: None if coordinator is None else coordinator.host.name
                },
                pool=None,
            )
        raise TypeError(f"no topology for {type(inner).__name__}")

    def coordinator_of(self, shard: str) -> Optional[str]:
        """The serving coordinator host of *shard* (None mid-failover)."""
        return self.placement[shard]

    def __repr__(self) -> str:
        return (
            f"<Topology v{self.ring_version} shards={list(self.shards)} "
            f"groups={len(self.groups)}>"
        )
