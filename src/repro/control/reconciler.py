"""The single-leader reconciler: observe, compare, act.

One loop on one control host periodically compares desired state
against observed state and acts through the three control-plane
mechanisms.  Signals and responses:

* **per-shard offered load** — deltas of each serving coordinator's
  cumulative op counters (:meth:`ShardedKvService.group_op_totals`).
  A shard running hotter than ``imbalance_factor`` times the mean (and
  above an absolute floor) is split: a fresh group is provisioned and
  half the shard's arcs are live-migrated to it.
* **pool pressure** — the backup pool's promotion request times inside
  a sliding window, replayed through the Figure 8 heap model
  (:func:`repro.cluster.backups.desired_pool_size`) to find the
  smallest pool that would have absorbed the observed burst; the pool
  is resized to that.
* **idle shards** — optionally (``merge_idle_factor``), the coldest
  shard is merged into the largest one.

Actions are strictly serialized — one migration at a time — and the
loop consumes no RNG, so a reconciled run is byte-deterministic in the
fabric seed.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from repro.cluster.backups import desired_pool_size
from repro.control.migrate import MigrationManager
from repro.net.fabric import Fabric
from repro.obs import state as obs_state
from repro.obs.stats import StatsSnapshot
from repro.sim.units import MS, SEC

__all__ = ["Reconciler", "ReconcilerConfig"]


class ReconcilerConfig(NamedTuple):
    """Policy knobs for one reconciler loop."""

    interval_us: float = 50 * MS
    #: Split when the hottest shard exceeds this multiple of the mean
    #: per-shard rate (and at least ``min_split_ops`` ops last interval).
    imbalance_factor: float = 1.5
    min_split_ops: int = 64
    max_shards: int = 8
    #: Merge the coldest shard into the largest when its rate falls
    #: below this multiple of the mean (None disables merging).
    merge_idle_factor: Optional[float] = None
    min_shards: int = 1
    #: Pool autoscaling bounds and the promotion-observation window.
    pool_min: int = 1
    pool_max: int = 8
    pool_window_us: float = 5 * SEC
    pool_target_extra_s: float = 0.0
    #: Forward-window length handed to migrations this loop starts.
    forward_window_us: float = 200 * MS


class Reconciler:
    """Drives a sharded service toward its desired shape."""

    def __init__(
        self,
        fabric: Fabric,
        service,
        config: Optional[ReconcilerConfig] = None,
    ):
        self.fabric = fabric
        self.sim = fabric.sim
        self.service = service
        self.config = config or ReconcilerConfig()
        host_name = f"{service.name}-reconciler"
        suffix = 0
        while host_name in fabric.hosts:
            suffix += 1
            host_name = f"{service.name}-reconciler.{suffix}"
        self.host = fabric.add_host(host_name, cores=2)
        self.running = False
        self._last_totals: Dict[str, int] = {}
        self.migrations: List[MigrationManager] = []
        self.splits = 0
        self.merges = 0
        self.pool_resizes = 0
        self.rounds = 0
        #: ``(at_us, action, detail)`` tuples, for tests and figures.
        self.log: List[tuple] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin reconciling every ``interval_us`` of virtual time."""
        if self.running:
            return
        self.running = True
        self.host.spawn(self._loop(), name=f"{self.service.name}-reconcile")

    def stop(self) -> None:
        self.running = False

    def _loop(self):
        while self.running:
            yield self.sim.timeout(self.config.interval_us)
            if not self.running:
                return
            yield from self.reconcile_once()

    # ------------------------------------------------------------------
    # One round
    # ------------------------------------------------------------------

    def _record(self, action: str, detail) -> None:
        self.log.append((self.sim.now, action, detail))
        if obs_state.TRACER is not None:
            obs_state.TRACER.instant(
                f"control.{action}", self.sim.now, detail=str(detail)
            )

    def observe(self) -> Dict[str, int]:
        """Per-shard op-rate deltas since the previous observation."""
        totals = self.service.group_op_totals()
        deltas = {
            shard: max(0, total - self._last_totals.get(shard, 0))
            for shard, total in totals.items()
        }
        self._last_totals = totals
        return deltas

    def reconcile_once(self):
        """Process: one observe-compare-act round (actions serialized)."""
        self.rounds += 1
        deltas = self.observe()
        self._reconcile_pool()
        yield from self._reconcile_shards(deltas)

    def _reconcile_pool(self) -> None:
        pool = self.service.pool
        cfg = self.config
        horizon = self.sim.now - cfg.pool_window_us
        recent_s = [
            at_us / 1e6
            for at_us in pool.request_log
            if at_us >= horizon
        ]
        desired = desired_pool_size(
            recent_s,
            provision_s=pool.provisioning_delay_us / 1e6,
            max_backups=cfg.pool_max,
            target_extra_s=cfg.pool_target_extra_s,
            min_backups=cfg.pool_min,
        )
        if desired != pool.capacity:
            previous = pool.resize(desired)
            self.pool_resizes += 1
            self._record("pool_resize", {"from": previous, "to": desired})

    def _reconcile_shards(self, deltas: Dict[str, int]):
        cfg = self.config
        ring = self.service.ring
        rates = {shard: deltas.get(shard, 0) for shard in ring.shards}
        mean = sum(rates.values()) / len(rates)
        # Deterministic tie-break: rate first, then name.
        hottest = max(sorted(rates), key=lambda shard: (rates[shard], shard))
        if (
            len(ring.shards) < cfg.max_shards
            and rates[hottest] >= cfg.min_split_ops
            and rates[hottest] > cfg.imbalance_factor * mean
        ):
            yield from self._split(hottest)
            return
        if cfg.merge_idle_factor is not None and len(ring.shards) > cfg.min_shards:
            coldest = min(sorted(rates), key=lambda shard: (rates[shard], shard))
            largest = max(
                sorted(rates), key=lambda shard: (rates[shard], shard)
            )
            if coldest != largest and rates[coldest] < cfg.merge_idle_factor * mean:
                yield from self._merge(coldest, largest)

    def _split(self, shard: str):
        """Process: split *shard*, live-migrating half its arcs."""
        manager = MigrationManager.split(
            self.fabric,
            self.service,
            shard,
            forward_window_us=self.config.forward_window_us,
        )
        self.migrations.append(manager)
        self.splits += 1
        self._record("split", {"shard": shard, "new": manager.dest})
        result = yield from manager.run()
        # Reset the rate baseline: the split shard's counters now spread
        # over two groups and a raw delta would double-count.
        self._last_totals = self.service.group_op_totals()
        return result

    def _merge(self, shard: str, into: str):
        """Process: merge *shard* into *into* and retire its group."""
        manager = MigrationManager.merge(
            self.fabric,
            self.service,
            shard,
            into,
            forward_window_us=self.config.forward_window_us,
        )
        self.migrations.append(manager)
        self.merges += 1
        self._record("merge", {"shard": shard, "into": into})
        result = yield from manager.run()
        self._last_totals = self.service.group_op_totals()
        return result

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def snapshot(self) -> StatsSnapshot:
        """Reconciler activity under the shared stats protocol."""
        return StatsSnapshot(
            kind="reconciler",
            name=self.service.name,
            counters={
                "rounds": float(self.rounds),
                "splits": float(self.splits),
                "merges": float(self.merges),
                "pool_resizes": float(self.pool_resizes),
            },
            gauges={
                "running": 1.0 if self.running else 0.0,
                "shards": float(len(self.service.ring.shards)),
                "pool_capacity": float(self.service.pool.capacity),
            },
        )

    def __repr__(self) -> str:
        return (
            f"<Reconciler {self.service.name} rounds={self.rounds} "
            f"splits={self.splits} resizes={self.pool_resizes}>"
        )
