"""The elastic control plane.

A single-leader reconciler compares desired state against observed
state (per-shard offered load, backup-pool promotion pressure) and acts
through exactly three mechanisms:

* **shard split / merge** — versioned
  :class:`~repro.shard.hashing.HashRing` mutation; routers notice the
  version bump and invalidate their per-shard client caches;
* **live key-range migration** — :class:`~repro.control.migrate.MigrationManager`
  moves a key range between running groups without dropping acked
  writes (copy-then-catch-up with a dual-write mirror, cutover stamped
  in virtual time, then a forwarding window);
* **pool autoscaling** — :class:`~repro.core.backups.BackupPool.resize`
  driven by the Figure 8 accounting in
  :func:`repro.cluster.backups.desired_pool_size`.

Everything here is deterministic in the fabric seed: the control plane
consumes no RNG, and its actions are pure functions of observed
simulated state.  The public entry points are
:meth:`repro.api.Cluster.topology`, :meth:`repro.api.Cluster.scale`
and :meth:`repro.api.Cluster.migrate` — services are not reached into
directly.
"""

from repro.control.migrate import MigrationManager
from repro.control.reconciler import Reconciler, ReconcilerConfig
from repro.control.topology import Topology

__all__ = ["MigrationManager", "Reconciler", "ReconcilerConfig", "Topology"]
