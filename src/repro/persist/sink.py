"""Coordinator-side persistence sink (§3.5).

"We have implemented such a design using RocksDB, where all updates are
synchronously written to the persistent database by a background
thread.  By limiting the number of outstanding writes to be the size of
the log, this design also allows for an alternative to memory node
recovery by using snapshots of the database to repopulate the state
machine of the new memory node."

The sink is a simulated background process: committed KV records are
queued, drained in batches, written to a :class:`~repro.persist.rocks.
RocksLite` store, and fsynced — charging simulated time per batch so
the persistence path shows up in measurements.  Queue capacity is the
KV WAL size; when the queue is full, enqueue blocks the applier, which
in turn backpressures puts exactly as the paper describes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.kv.layout import OP_PUT, WalRecord
from repro.net.host import Host
from repro.persist.rocks import RocksLite
from repro.sim.engine import Event, ProcessKilled

__all__ = ["PersistenceSink"]


class PersistenceSink:
    """Bridges committed KV records into a persistent store."""

    def __init__(
        self,
        host: Host,
        store: RocksLite,
        capacity: int = 64 * 1024,
        batch_max: int = 256,
        sync_us: float = 120.0,
        per_record_us: float = 1.0,
    ):
        self.host = host
        self.store = store
        self.capacity = capacity
        self.batch_max = batch_max
        self.sync_us = sync_us
        self.per_record_us = per_record_us
        self._queue: Deque[WalRecord] = deque()
        self._kick: Optional[Event] = None
        self._space: List[Event] = []
        self.running = False
        self.persisted = 0

    def start(self) -> None:
        """Spawn the background writer."""
        self.running = True
        self.host.spawn(self._writer(), name="persist-sink")

    def stop(self) -> None:
        """Stop draining (pending queue is dropped; the WAL re-covers it)."""
        self.running = False
        if self._kick is not None:
            self._kick.try_trigger(None)

    @property
    def backlog(self) -> int:
        """Records waiting to be persisted."""
        return len(self._queue)

    def offer(self, record: WalRecord):
        """Process: enqueue a committed record, blocking when full."""
        while len(self._queue) >= self.capacity:
            waiter = Event(self.host.sim)
            self._space.append(waiter)
            yield waiter
        self._queue.append(record)
        if self._kick is not None:
            kick, self._kick = self._kick, None
            kick.try_trigger(None)

    def _writer(self):
        try:
            while self.running:
                if not self._queue:
                    kick = Event(self.host.sim)
                    self._kick = kick
                    yield kick
                    continue
                batch = []
                while self._queue and len(batch) < self.batch_max:
                    batch.append(self._queue.popleft())
                for record in batch:
                    if record.op == OP_PUT:
                        self.store.put(record.key, record.value)
                    else:
                        self.store.delete(record.key)
                self.store.sync()
                self.persisted += len(batch)
                yield self.host.execute(
                    self.sync_us + self.per_record_us * len(batch)
                )
                if self._space:
                    waiters, self._space = self._space, []
                    for waiter in waiters:
                        waiter.try_trigger(None)
        except ProcessKilled:
            raise
