"""Remotely mounted SAN / EBS device (§3.5).

"Alternatively, the coordinator can persist logs onto a remotely
mounted Storage Area Network (SAN) device, such as EBS on Amazon EC2,
using a write-ahead logging strategy."

The device is a host on the fabric with a millisecond-scale write
latency (EBS-class) and a FIFO ordering guarantee; the coordinator
appends log records and can await durability.
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.net.errors import Unreachable
from repro.net.fabric import Fabric
from repro.net.host import Host
from repro.net.latency import LinearLatency
from repro.sim.engine import Event

__all__ = ["SanDevice"]

EBS_LATENCY = LinearLatency(base_us=500.0, bytes_per_us=250.0, jitter=0.15)
"""EBS-class: ~0.5-1 ms writes, ~250 MB/s throughput."""


class _SanRecord(NamedTuple):
    offset: int
    data: bytes


class SanDevice:
    """A durable append-only volume reachable over the network."""

    def __init__(self, fabric: Fabric, name: str = "san"):
        self.fabric = fabric
        self.host: Host = fabric.add_host(name, cores=2)
        self._log: List[_SanRecord] = []
        self._bytes = 0

    @property
    def durable_bytes(self) -> int:
        """Bytes acknowledged as durable."""
        return self._bytes

    @property
    def record_count(self) -> int:
        return len(self._log)

    def append(self, src: Host, data: bytes) -> Event:
        """Write *data* durably; the event triggers on the write ack."""
        done = Event(src.sim)
        payload = bytes(data)

        def arrive() -> None:
            self._log.append(_SanRecord(self._bytes, payload))
            self._bytes += len(payload)
            self.fabric.deliver(
                self.host, src, 64, lambda: done.try_trigger(self._bytes),
                latency=EBS_LATENCY, stream="san",
            )

        sent = self.fabric.deliver(
            src, self.host, len(payload), arrive, latency=EBS_LATENCY, stream="san"
        )
        if not sent:
            done.try_fail(Unreachable(f"SAN {self.host.name} unreachable"))
        return done

    def read_all(self) -> bytes:
        """Recovery: the concatenated durable log."""
        return b"".join(record.data for record in self._log)
