"""Persistence options (§3.5).

By default Sift keeps all state in volatile memory.  The paper describes
two persistence strategies, both implemented here:

* :mod:`~repro.persist.rocks` — a RocksDB substitute
  (:class:`RocksLite`): an append-only WAL file plus memtable with
  checkpointing, giving the same code path as the paper's "design using
  RocksDB, where all updates are synchronously written to the persistent
  database by a background thread", and whose snapshots enable the
  alternative snapshot-based memory-node recovery.
* :mod:`~repro.persist.sink` — the coordinator-side background syncer
  bridging committed KV updates into the store, with bounded
  outstanding writes ("by limiting the number of outstanding writes to
  be the size of the log").
* :mod:`~repro.persist.san` — a remotely mounted SAN/EBS device model
  for the WAL-to-SAN strategy.
"""

from repro.persist.rocks import RocksLite
from repro.persist.san import SanDevice
from repro.persist.sink import PersistenceSink

__all__ = ["PersistenceSink", "RocksLite", "SanDevice"]
