"""RocksLite: a small persistent KV store (RocksDB substitute).

Real RocksDB is not available offline, so this is a from-scratch
equivalent exercising the same code path the paper describes (§3.5): a
write-ahead file that every update is appended to, an in-memory
memtable, and checkpoint files that bound recovery work.  The on-disk
format is deliberately simple and fully self-describing:

* ``wal.log`` — length-prefixed records ``op | key | value`` with CRCs;
* ``checkpoint-<n>.snap`` — a sorted dump of the memtable at sequence
  *n*; recovery loads the newest valid checkpoint then replays the WAL
  suffix.

Durability here is process-crash durability (files are flushed on
``sync()``); that is what the experiments need.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Dict, Iterator, Optional, Tuple

__all__ = ["RocksLite"]

_REC = struct.Struct("<QBII")  # seq, op, key_len, val_len
_CRC = struct.Struct("<I")
_OP_PUT = 1
_OP_DELETE = 2


class RocksLite:
    """A persistent key-value store backed by a directory."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._memtable: Dict[bytes, bytes] = {}
        self.seq = 0
        self._checkpoint_seq = 0
        self._wal_path = os.path.join(directory, "wal.log")
        self._recover()
        self._wal = open(self._wal_path, "ab")

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> int:
        """Append a put; returns its sequence number."""
        return self._append(_OP_PUT, key, value)

    def delete(self, key: bytes) -> int:
        """Append a delete tombstone."""
        return self._append(_OP_DELETE, key, b"")

    def get(self, key: bytes) -> Optional[bytes]:
        """Read from the memtable (always current)."""
        return self._memtable.get(bytes(key))

    def __len__(self) -> int:
        return len(self._memtable)

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate the live key-value pairs."""
        return iter(self._memtable.items())

    def sync(self) -> None:
        """Flush the WAL to the OS and disk."""
        self._wal.flush()
        os.fsync(self._wal.fileno())

    def _append(self, op: int, key: bytes, value: bytes) -> int:
        key = bytes(key)
        value = bytes(value)
        self.seq += 1
        header = _REC.pack(self.seq, op, len(key), len(value))
        payload = header + key + value
        self._wal.write(payload + _CRC.pack(zlib.crc32(payload)))
        if op == _OP_PUT:
            self._memtable[key] = value
        else:
            self._memtable.pop(key, None)
        return self.seq

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------

    def checkpoint(self) -> str:
        """Write a full snapshot and truncate the WAL; returns its path."""
        self.sync()
        path = os.path.join(self.directory, f"checkpoint-{self.seq}.snap")
        tmp = path + ".tmp"
        with open(tmp, "wb") as snap:
            snap.write(struct.pack("<Q", self.seq))
            for key in sorted(self._memtable):
                value = self._memtable[key]
                record = struct.pack("<II", len(key), len(value)) + key + value
                snap.write(record)
            snap.flush()
            os.fsync(snap.fileno())
        os.replace(tmp, path)
        self._checkpoint_seq = self.seq
        # Safe to truncate: the snapshot covers everything in the WAL.
        self._wal.close()
        self._wal = open(self._wal_path, "wb")
        self._drop_old_checkpoints(keep=path)
        return path

    def _drop_old_checkpoints(self, keep: str) -> None:
        for name in os.listdir(self.directory):
            if name.startswith("checkpoint-") and name.endswith(".snap"):
                path = os.path.join(self.directory, name)
                if path != keep:
                    os.remove(path)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def _recover(self) -> None:
        newest: Optional[Tuple[int, str]] = None
        for name in os.listdir(self.directory):
            if name.startswith("checkpoint-") and name.endswith(".snap"):
                try:
                    seq = int(name[len("checkpoint-") : -len(".snap")])
                except ValueError:
                    continue
                if newest is None or seq > newest[0]:
                    newest = (seq, os.path.join(self.directory, name))
        if newest is not None:
            self._load_checkpoint(newest[1])
        self._replay_wal()

    def _load_checkpoint(self, path: str) -> None:
        with open(path, "rb") as snap:
            raw = snap.read()
        if len(raw) < 8:
            return
        self.seq = self._checkpoint_seq = struct.unpack_from("<Q", raw)[0]
        offset = 8
        while offset + 8 <= len(raw):
            key_len, val_len = struct.unpack_from("<II", raw, offset)
            offset += 8
            if offset + key_len + val_len > len(raw):
                break  # truncated tail of a torn snapshot write
            key = raw[offset : offset + key_len]
            value = raw[offset + key_len : offset + key_len + val_len]
            self._memtable[bytes(key)] = bytes(value)
            offset += key_len + val_len

    def _replay_wal(self) -> None:
        if not os.path.exists(self._wal_path):
            return
        with open(self._wal_path, "rb") as wal:
            raw = wal.read()
        offset = 0
        while offset + _REC.size + _CRC.size <= len(raw):
            seq, op, key_len, val_len = _REC.unpack_from(raw, offset)
            total = _REC.size + key_len + val_len
            if offset + total + _CRC.size > len(raw):
                break  # torn tail
            payload = raw[offset : offset + total]
            (crc,) = _CRC.unpack_from(raw, offset + total)
            if zlib.crc32(payload) != crc:
                break  # torn or corrupt record: stop replay here
            key = bytes(payload[_REC.size : _REC.size + key_len])
            value = bytes(payload[_REC.size + key_len :])
            if seq > self.seq:
                self.seq = seq
                if op == _OP_PUT:
                    self._memtable[key] = value
                elif op == _OP_DELETE:
                    self._memtable.pop(key, None)
            offset += total + _CRC.size

    def close(self) -> None:
        """Flush and close the WAL file handle."""
        self.sync()
        self._wal.close()
