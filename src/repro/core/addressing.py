"""Logical-address translation.

Applications address replicated memory with logical byte offsets
(§3.1: "a contiguous block of memory that clients interact with through
logical addresses").  How a logical range lands on each memory node
depends on the mode:

* **Plain replication** — identity: logical offset *a* lives at region
  offset ``data_offset + a`` on every node.
* **Erasure coding** (§5.1) — the address space has two zones:

  - the *direct window* ``[0, direct_bytes)`` is stored raw on every node
    (it backs self-managing logs like the KV WAL, which the paper keeps
    non-encoded);
  - the *encoded zone* ``[direct_bytes, data_bytes)`` is split into
    blocks of ``block_bytes``; block *b* is encoded into ``Fm+1`` data
    chunks + ``Fm`` parity chunks of ``chunk_bytes`` each, and node *i*
    stores shard *i* at region offset
    ``data_offset + direct_bytes + b * chunk_bytes``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.config import SiftConfig
from repro.core.errors import InvalidAccess

__all__ = ["AddressMap"]


class AddressMap:
    """Pure translation logic, shared by the data path and recovery."""

    def __init__(self, config: SiftConfig, data_offset: int):
        self.config = config
        self.data_offset = data_offset

    # -- validation ----------------------------------------------------------

    def check_range(self, addr: int, length: int) -> None:
        """Reject ranges outside the logical address space."""
        if addr < 0 or length < 0 or addr + length > self.config.data_bytes:
            raise InvalidAccess(
                f"range [{addr}, {addr + length}) outside replicated memory "
                f"of {self.config.data_bytes} bytes"
            )

    def in_direct_window(self, addr: int, length: int) -> bool:
        """Whether the whole range lies in the direct (unencoded) window."""
        return addr + length <= self.config.direct_bytes

    def is_encoded(self, addr: int, length: int) -> bool:
        """Whether the range needs chunk translation (EC encoded zone)."""
        if not self.config.erasure_coding:
            return False
        if self.in_direct_window(addr, length):
            return False
        if addr < self.config.direct_bytes:
            raise InvalidAccess(
                f"range [{addr}, {addr + length}) straddles the direct/encoded "
                "zone boundary"
            )
        return True

    # -- blocks ---------------------------------------------------------------

    def block_index(self, addr: int) -> int:
        """Lock-table block index for a logical address."""
        return addr // self.config.block_bytes

    def blocks_of(self, addr: int, length: int) -> List[int]:
        """All lock blocks touched by a range (length 0 still touches one)."""
        self.check_range(addr, length)
        first = self.block_index(addr)
        last = self.block_index(addr + length - 1) if length else first
        return list(range(first, last + 1))

    def block_bounds(self, block: int) -> Tuple[int, int]:
        """Logical [start, end) of a lock/EC block."""
        start = block * self.config.block_bytes
        return start, min(start + self.config.block_bytes, self.config.data_bytes)

    # -- node placement ---------------------------------------------------------

    def raw_extent(self, addr: int) -> int:
        """Region offset on every node for a raw (unencoded) logical address."""
        return self.data_offset + addr

    def chunk_extent(self, block: int) -> int:
        """Region offset on every node of a block's shard in the encoded zone."""
        config = self.config
        encoded_block = block - config.direct_bytes // config.block_bytes
        if encoded_block < 0:
            raise InvalidAccess(f"block {block} is in the direct window")
        return self.data_offset + config.direct_bytes + encoded_block * config.chunk_bytes

    def split_by_block(self, addr: int, data: bytes) -> List[Tuple[int, bytes]]:
        """Split a write into per-block pieces (one WAL entry per piece)."""
        self.check_range(addr, len(data))
        pieces: List[Tuple[int, bytes]] = []
        offset = 0
        while offset < len(data):
            position = addr + offset
            block_end = (self.block_index(position) + 1) * self.config.block_bytes
            take = min(len(data) - offset, block_end - position)
            pieces.append((position, data[offset : offset + take]))
            offset += take
        if not pieces:
            pieces.append((addr, b""))
        return pieces
