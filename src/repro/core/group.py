"""Group deployment wiring and fault injection.

A :class:`SiftGroup` builds the full topology of one consensus group —
``2Fm + 1`` memory nodes and ``Fc + 1`` CPU nodes on a shared fabric —
starts the election machinery, and exposes the handles experiments need:
who currently coordinates, crash/restart of either node type, and a
"wait until the group serves requests" helper.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterable, List, Optional

from repro.core.config import SiftConfig
from repro.core.cpu_node import CpuNode
from repro.core.errors import GroupUnavailable
from repro.net.fabric import Fabric
from repro.obs import state as obs_state
from repro.sim.units import MS
from repro.storage.memory_node import MemoryNode

__all__ = ["SiftGroup"]


class SiftGroup:
    """One Sift consensus group: nodes, wiring, and fault injection.

    *persistent_nodes* selects memory nodes provisioned with persistent
    memory (§3.5): their regions survive a crash+restart, enabling the
    paper's mixed deployments — "a majority of memory nodes being
    provisioned with volatile memory, while the remainder are given
    persistent memory ... a lower-cost deployment with tunable amounts
    of data loss" (or, majority-persistent, a group that survives a full
    power cycle).
    """

    def __init__(
        self,
        fabric: Fabric,
        config: SiftConfig,
        name: str = "sift",
        app_factory: Optional[Callable] = None,
        persistent_nodes: Optional[Iterable[int]] = None,
    ):
        config.validate()
        self.fabric = fabric
        self.config = config
        self.name = name
        self.app_factory = app_factory
        self.persistent_nodes = frozenset(persistent_nodes or ())
        node_config = config.memory_node_config()
        self.memory_nodes: List[MemoryNode] = [
            MemoryNode(
                fabric,
                f"{name}-mem{i}",
                i,
                config=(
                    replace(node_config, persistent=True)
                    if i in self.persistent_nodes
                    else node_config
                ),
                cores=config.memory_node_cores,
            )
            for i in range(config.memory_node_count)
        ]
        self.cpu_nodes: List[CpuNode] = [
            CpuNode(
                fabric,
                f"{name}-cpu{i}",
                node_id=i + 1,
                config=config,
                memory_nodes=self.memory_nodes,
                app_factory=app_factory,
            )
            for i in range(config.cpu_node_count)
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start every CPU node; an election follows within the timeout."""
        for cpu_node in self.cpu_nodes:
            cpu_node.start()

    def coordinator(self) -> Optional[CpuNode]:
        """The CPU node currently in the coordinator role, if any."""
        for cpu_node in self.cpu_nodes:
            if cpu_node.is_coordinator:
                return cpu_node
        return None

    def serving_coordinator(self) -> Optional[CpuNode]:
        """The coordinator once it has finished recovery and serves."""
        coordinator = self.coordinator()
        if coordinator is not None and coordinator.serving:
            return coordinator
        return None

    def wait_until_serving(self, timeout_us: Optional[float] = None):
        """Process: poll until a coordinator is serving; returns it."""
        deadline = None if timeout_us is None else self.fabric.sim.now + timeout_us
        while True:
            coordinator = self.serving_coordinator()
            if coordinator is not None:
                if obs_state.TRACER is not None:
                    obs_state.TRACER.instant(
                        "group.serving",
                        self.fabric.sim.now,
                        group=self.name,
                        coordinator=coordinator.host.name,
                    )
                return coordinator
            if deadline is not None and self.fabric.sim.now >= deadline:
                raise GroupUnavailable(
                    f"group {self.name} has no serving coordinator after "
                    f"{timeout_us}us"
                )
            yield self.fabric.sim.timeout(1 * MS)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def adopt_cpu_node(self, cpu_node: CpuNode) -> CpuNode:
        """Admit an externally provisioned CPU node (a promoted backup).

        CPU nodes hold only soft state (§5.2), so joining is just
        appearing in the membership list and campaigning; no data
        transfer is involved.
        """
        self.cpu_nodes.append(cpu_node)
        if obs_state.TRACER is not None:
            obs_state.TRACER.instant(
                "group.adopt_cpu_node",
                self.fabric.sim.now,
                group=self.name,
                node=cpu_node.host.name,
            )
        return cpu_node

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def crash_coordinator(self) -> Optional[CpuNode]:
        """Kill the current coordinator (no-op when there is none)."""
        coordinator = self.coordinator()
        if coordinator is not None:
            if obs_state.TRACER is not None:
                obs_state.TRACER.instant(
                    "group.crash_coordinator",
                    self.fabric.sim.now,
                    group=self.name,
                    coordinator=coordinator.host.name,
                )
            coordinator.crash()
        return coordinator

    def crash_cpu_node(self, index: int) -> None:
        """Kill CPU node *index*."""
        self.cpu_nodes[index].crash()

    def restart_cpu_node(self, index: int) -> None:
        """Restart CPU node *index* with fresh soft state."""
        self.cpu_nodes[index].restart()

    def crash_memory_node(self, index: int) -> None:
        """Kill memory node *index* (volatile nodes lose their contents)."""
        self.memory_nodes[index].crash()

    def restart_memory_node(self, index: int) -> None:
        """Restart memory node *index*; the coordinator will re-copy it."""
        self.memory_nodes[index].restart()

    def __repr__(self) -> str:
        return (
            f"<SiftGroup {self.name} fm={self.config.fm} fc={self.config.fc} "
            f"ec={self.config.erasure_coding}>"
        )
