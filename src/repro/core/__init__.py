"""The Sift consensus protocol (the paper's primary contribution).

Layering follows §3 of the paper:

* :class:`~repro.core.config.SiftConfig` — deployment geometry
  (``2Fm + 1`` memory nodes, ``Fc + 1`` CPU nodes) and protocol timing.
* :class:`~repro.core.cpu_node.CpuNode` — the follower / candidate /
  coordinator state machine driven purely by reads and CAS writes to the
  memory nodes' admin words (no CPU-node-to-CPU-node communication).
* :class:`~repro.core.replicated_memory.ReplicatedMemory` — the
  coordinator-side replicated memory layer: logged writes with majority
  commit, background apply, block locks, direct (unlogged) windows, and
  optional erasure coding (§5.1).
* :mod:`~repro.core.recovery` — coordinator log recovery (§3.4.1) and
  incremental memory-node recovery (§3.4.2).
* :class:`~repro.core.group.SiftGroup` — wiring: builds the nodes,
  starts the election, exposes fault injection.
* :class:`~repro.core.backups.BackupPool` — shared backup CPU nodes
  monitoring many groups (§5.2).
"""

from repro.core.config import CpuCosts, SiftConfig
from repro.core.cpu_node import CpuNode, Role
from repro.core.group import SiftGroup
from repro.core.locks import BlockLockTable, LockMode
from repro.core.partition import RecoveryPartition, plan_fragments, plan_partitions
from repro.core.replicated_memory import ReplicatedMemory
from repro.core.backups import BackupPool

__all__ = [
    "BackupPool",
    "BlockLockTable",
    "CpuCosts",
    "CpuNode",
    "LockMode",
    "RecoveryPartition",
    "ReplicatedMemory",
    "Role",
    "SiftConfig",
    "SiftGroup",
    "plan_fragments",
    "plan_partitions",
]
