"""Shared backup CPU nodes across groups (§5.2).

Because CPU nodes hold only soft state, a spare CPU node is not tied to
any particular Sift group: a pool of ``B`` backups can watch ``G`` groups
and promote itself into whichever group loses its coordinator, replacing
``(F + 1) x G`` provisioned CPU nodes with ``G + B``.

The pool here is the *live* implementation used by tests and examples.
A watchdog host runs one monitor per group; each monitor performs the
same one-sided heartbeat *reads* of the group's admin words a follower
would ("the communication overhead of a backup CPU node being
responsible for multiple groups is negligible since heartbeats are
reads that rarely occur more frequently than every few milliseconds").
When a group's words stop changing on a quorum of its memory nodes, an
idle backup converts itself into a full CpuNode for that group and
campaigns.  The pool then provisions a replacement VM after
``provisioning_delay_us`` (100 s in the paper, the average EC2 Linux VM
start-up [18]).  The trace-driven *capacity analysis* behind Figure 8
lives separately in :mod:`repro.cluster.backups`.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, List, NamedTuple, Optional

from repro.core.cpu_node import CpuNode
from repro.core.group import SiftGroup
from repro.net.fabric import Fabric
from repro.net.host import Host
from repro.obs import state as obs_state
from repro.rdma.errors import RdmaError
from repro.rdma.nic import Rnic
from repro.rdma.qp import QpState, QueuePair
from repro.sim.engine import Event
from repro.sim.units import SEC
from repro.storage.admin import AdminWord
from repro.storage.memory_node import ADMIN_REGION, ADMIN_WORD_OFFSET

__all__ = ["BackupPool", "Promotion"]


class Promotion(NamedTuple):
    """One spare handed to a group (times in simulated microseconds).

    *wait_us* is the additional recovery time charged to the fault by
    the pool: zero when a spare was idle, the time spent queued for the
    next provisioned VM otherwise.  It is measured from *request_us*
    (the moment the pool decided the group was dead), so it composes
    with — but does not include — failure-detection latency, and is
    therefore directly comparable to the
    :class:`repro.cluster.backups.PoolAccountant` trace model.
    """

    request_us: float
    promoted_us: float
    group: str
    host: str
    wait_us: float

_BACKUP_NODE_IDS = count(100)  # distinct from the groups' own 1..Fc+1 ids


class _GroupWatcher:
    """Follower-style heartbeat reader for one group, on the watchdog."""

    def __init__(self, host: Host, nic: Rnic, group: SiftGroup):
        self.host = host
        self.nic = nic
        self.group = group
        self._qps: Dict[int, QueuePair] = {}
        self._last_words: Dict[int, AdminWord] = {}

    def _ensure_qps(self):
        for index, node in enumerate(self.group.memory_nodes):
            qp = self._qps.get(index)
            if qp is not None and qp.state is QpState.CONNECTED:
                continue
            if not node.alive:
                continue
            fresh = QueuePair(self.nic, node.listener, name=f"watch-{self.group.name}-{index}")
            try:
                yield self.host.spawn(fresh.connect([ADMIN_REGION]))
            except Exception:
                continue
            self._qps[index] = fresh

    def poll(self):
        """Process: one heartbeat-read round; returns #nodes with progress."""
        yield from self._ensure_qps()
        events = {
            index: qp.read_word(ADMIN_REGION, ADMIN_WORD_OFFSET)
            for index, qp in self._qps.items()
        }
        changed = 0
        for index, event in events.items():
            try:
                raw = yield event
            except RdmaError:
                qp = self._qps.pop(index, None)
                if qp is not None:
                    qp.close()
                continue
            word = AdminWord.unpack(raw)
            if self._last_words.get(index) != word:
                changed += 1
            self._last_words[index] = word
        return changed


class BackupPool:
    """A pool of spare CPU nodes monitoring many groups."""

    def __init__(
        self,
        fabric: Fabric,
        groups: List[SiftGroup],
        size: int,
        provisioning_delay_us: float = 100 * SEC,
        cores: int = 10,
        name: str = "backup",
    ):
        self.fabric = fabric
        self.groups = list(groups)
        self.capacity = size
        self.provisioning_delay_us = provisioning_delay_us
        self.cores = cores
        self.name = name
        self.sim = fabric.sim
        self._spares: List[str] = []
        self._waiters: List[Event] = []  # FIFO queue for the next ready VM
        self._next_host = count()
        self.promotions = 0
        self.provisioned = 0
        self.waits = 0
        self.recovery_wait_us_total = 0.0
        self.promotion_log: List[Promotion] = []
        self.running = False
        self._watchdog: Optional[Host] = None
        for _ in range(size):
            self._spares.append(self._new_spare())
        self._publish_occupancy()

    def _new_spare(self) -> str:
        host_name = f"{self.name}-{next(self._next_host)}"
        self.fabric.add_host(host_name, cores=self.cores)
        return host_name

    def _publish_occupancy(self) -> None:
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.gauge("backup_pool.idle", pool=self.name).set(
                len(self._spares)
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin monitoring every group from a watchdog host."""
        self.running = True
        self._watchdog = self.fabric.add_host(f"{self.name}-watchdog", cores=2)
        nic = Rnic(self._watchdog, self.fabric)
        for group in self.groups:
            watcher = _GroupWatcher(self._watchdog, nic, group)
            self._watchdog.spawn(self._monitor(group, watcher), name=f"monitor-{group.name}")

    def stop(self) -> None:
        """Stop promoting (running monitors drain on their next check)."""
        self.running = False
        # Release queued promotions so their processes terminate.
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter.try_trigger(None)

    @property
    def idle_backups(self) -> int:
        """Spare hosts ready to take over a group right now."""
        return len(self._spares)

    def recovery_wait_us_per_fault(self) -> float:
        """Mean additional recovery time per promotion so far."""
        return self.recovery_wait_us_total / self.promotions if self.promotions else 0.0

    # ------------------------------------------------------------------
    # Monitoring and promotion
    # ------------------------------------------------------------------

    def _monitor(self, group: SiftGroup, watcher: _GroupWatcher):
        config = group.config
        interval = config.heartbeat_read_interval_us
        stale_rounds = 0
        while self.running:
            yield self.sim.timeout(interval)
            changed = yield from watcher.poll()
            if changed >= config.quorum:
                stale_rounds = 0
                continue
            stale_rounds += 1
            if stale_rounds <= config.missed_heartbeats_allowed:
                continue
            if any(cpu.host.alive for cpu in group.cpu_nodes):
                # The group still has its own CPU node(s); its election
                # machinery will act (the stale reads mean it is mid-
                # election or briefly stalled, not abandoned).
                stale_rounds = 0
                continue
            yield from self._promote(group)
            stale_rounds = 0

    def _promote(self, group: SiftGroup):
        """Process: hand an idle spare to *group* (waiting for one if needed).

        Accounting mirrors :class:`repro.cluster.backups.PoolAccountant`
        exactly: an idle spare costs nothing and its replacement starts
        provisioning immediately; an empty pool queues the group for the
        next VM to come ready (FIFO — the heap model's earliest-ready
        VM) and charges the queueing time; a pool built with ``size=0``
        makes the group provision its own VM, charged in full.
        """
        request_us = self.sim.now
        if self._spares:
            host_name = self._spares.pop()
            self._publish_occupancy()
            # The consumed spare's replacement starts provisioning now.
            self.sim.spawn(self._provision(), name="provision-backup")
        elif self.capacity == 0:
            # No pool at all: the group provisions its own VM.
            yield self.sim.timeout(self.provisioning_delay_us)
            if not self.running:
                return
            host_name = self._new_spare()
        else:
            waiter = Event(self.sim)
            self._waiters.append(waiter)
            host_name = yield waiter
            if host_name is None or not self.running:
                return  # stop() drained the queue
            # Hand-over time: the replacement provisions from here.
            self.sim.spawn(self._provision(), name="provision-backup")
        wait_us = self.sim.now - request_us
        backup = CpuNode(
            self.fabric,
            f"{host_name}:{group.name}",
            node_id=next(_BACKUP_NODE_IDS),
            config=group.config,
            memory_nodes=group.memory_nodes,
            app_factory=group.app_factory,
            host=self.fabric.host(host_name),
        )
        backup.start()
        group.adopt_cpu_node(backup)
        self.promotions += 1
        if wait_us > 0:
            self.waits += 1
        self.recovery_wait_us_total += wait_us
        self.promotion_log.append(
            Promotion(request_us, self.sim.now, group.name, host_name, wait_us)
        )
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.counter(
                "backup_pool.promotions", pool=self.name, group=group.name
            ).inc()
            obs_state.REGISTRY.histogram("backup_pool.wait_us", pool=self.name).observe(
                wait_us
            )

    def _provision(self):
        yield self.sim.timeout(self.provisioning_delay_us)
        self.provisioned += 1
        host_name = self._new_spare()
        if self._waiters:
            # Hand the fresh VM straight to the longest-queued group so
            # its measured wait ends exactly at the VM's ready time.
            self._waiters.pop(0).try_trigger(host_name)
        else:
            self._spares.append(host_name)
            self._publish_occupancy()
