"""Shared backup CPU nodes across groups (§5.2).

Because CPU nodes hold only soft state, a spare CPU node is not tied to
any particular Sift group: a pool of ``B`` backups can watch ``G`` groups
and promote itself into whichever group loses its coordinator, replacing
``(F + 1) x G`` provisioned CPU nodes with ``G + B``.

The pool here is the *live* implementation used by tests and examples.
A watchdog host runs one monitor per group; each monitor performs the
same one-sided heartbeat *reads* of the group's admin words a follower
would ("the communication overhead of a backup CPU node being
responsible for multiple groups is negligible since heartbeats are
reads that rarely occur more frequently than every few milliseconds").
When a group's words stop changing on a quorum of its memory nodes, an
idle backup converts itself into a full CpuNode for that group and
campaigns.  The pool then provisions a replacement VM after
``provisioning_delay_us`` (100 s in the paper, the average EC2 Linux VM
start-up [18]).  The trace-driven *capacity analysis* behind Figure 8
lives separately in :mod:`repro.cluster.backups`.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, List, Optional

from repro.core.cpu_node import CpuNode
from repro.core.group import SiftGroup
from repro.net.fabric import Fabric
from repro.net.host import Host
from repro.rdma.errors import RdmaError
from repro.rdma.nic import Rnic
from repro.rdma.qp import QpState, QueuePair
from repro.sim.units import SEC
from repro.storage.admin import AdminWord
from repro.storage.memory_node import ADMIN_REGION, ADMIN_WORD_OFFSET

__all__ = ["BackupPool"]

_BACKUP_NODE_IDS = count(100)  # distinct from the groups' own 1..Fc+1 ids


class _GroupWatcher:
    """Follower-style heartbeat reader for one group, on the watchdog."""

    def __init__(self, host: Host, nic: Rnic, group: SiftGroup):
        self.host = host
        self.nic = nic
        self.group = group
        self._qps: Dict[int, QueuePair] = {}
        self._last_words: Dict[int, AdminWord] = {}

    def _ensure_qps(self):
        for index, node in enumerate(self.group.memory_nodes):
            qp = self._qps.get(index)
            if qp is not None and qp.state is QpState.CONNECTED:
                continue
            if not node.alive:
                continue
            fresh = QueuePair(self.nic, node.listener, name=f"watch-{self.group.name}-{index}")
            try:
                yield self.host.spawn(fresh.connect([ADMIN_REGION]))
            except Exception:
                continue
            self._qps[index] = fresh

    def poll(self):
        """Process: one heartbeat-read round; returns #nodes with progress."""
        yield from self._ensure_qps()
        events = {
            index: qp.read_word(ADMIN_REGION, ADMIN_WORD_OFFSET)
            for index, qp in self._qps.items()
        }
        changed = 0
        for index, event in events.items():
            try:
                raw = yield event
            except RdmaError:
                qp = self._qps.pop(index, None)
                if qp is not None:
                    qp.close()
                continue
            word = AdminWord.unpack(raw)
            if self._last_words.get(index) != word:
                changed += 1
            self._last_words[index] = word
        return changed


class BackupPool:
    """A pool of spare CPU nodes monitoring many groups."""

    def __init__(
        self,
        fabric: Fabric,
        groups: List[SiftGroup],
        size: int,
        provisioning_delay_us: float = 100 * SEC,
        cores: int = 10,
        name: str = "backup",
    ):
        self.fabric = fabric
        self.groups = list(groups)
        self.provisioning_delay_us = provisioning_delay_us
        self.cores = cores
        self.name = name
        self.sim = fabric.sim
        self._spares: List[str] = []
        self._next_host = count()
        self.promotions = 0
        self.provisioned = 0
        self.running = False
        self._watchdog: Optional[Host] = None
        for _ in range(size):
            self._spares.append(self._new_spare())

    def _new_spare(self) -> str:
        host_name = f"{self.name}-{next(self._next_host)}"
        self.fabric.add_host(host_name, cores=self.cores)
        return host_name

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin monitoring every group from a watchdog host."""
        self.running = True
        self._watchdog = self.fabric.add_host(f"{self.name}-watchdog", cores=2)
        nic = Rnic(self._watchdog, self.fabric)
        for group in self.groups:
            watcher = _GroupWatcher(self._watchdog, nic, group)
            self._watchdog.spawn(self._monitor(group, watcher), name=f"monitor-{group.name}")

    def stop(self) -> None:
        """Stop promoting (running monitors drain on their next check)."""
        self.running = False

    @property
    def idle_backups(self) -> int:
        """Spare hosts ready to take over a group right now."""
        return len(self._spares)

    # ------------------------------------------------------------------
    # Monitoring and promotion
    # ------------------------------------------------------------------

    def _monitor(self, group: SiftGroup, watcher: _GroupWatcher):
        config = group.config
        interval = config.heartbeat_read_interval_us
        stale_rounds = 0
        while self.running:
            yield self.sim.timeout(interval)
            changed = yield from watcher.poll()
            if changed >= config.quorum:
                stale_rounds = 0
                continue
            stale_rounds += 1
            if stale_rounds <= config.missed_heartbeats_allowed:
                continue
            if any(cpu.host.alive for cpu in group.cpu_nodes):
                # The group still has its own CPU node(s); its election
                # machinery will act (the stale reads mean it is mid-
                # election or briefly stalled, not abandoned).
                stale_rounds = 0
                continue
            yield from self._promote(group)
            stale_rounds = 0

    def _promote(self, group: SiftGroup):
        """Process: hand an idle spare to *group* (waiting for one if needed)."""
        while self.running and not self._spares:
            yield self.sim.timeout(group.config.heartbeat_read_interval_us)
        if not self.running:
            return
        host_name = self._spares.pop()
        backup = CpuNode(
            self.fabric,
            f"{host_name}:{group.name}",
            node_id=next(_BACKUP_NODE_IDS),
            config=group.config,
            memory_nodes=group.memory_nodes,
            app_factory=group.app_factory,
            host=self.fabric.host(host_name),
        )
        backup.start()
        group.cpu_nodes.append(backup)
        self.promotions += 1
        # Replenish the pool in the background.
        self.sim.spawn(self._provision(), name="provision-backup")

    def _provision(self):
        yield self.sim.timeout(self.provisioning_delay_us)
        self.provisioned += 1
        self._spares.append(self._new_spare())
