"""Shared backup CPU nodes across groups (§5.2).

Because CPU nodes hold only soft state, a spare CPU node is not tied to
any particular Sift group: a pool of ``B`` backups can watch ``G`` groups
and promote itself into whichever group loses its coordinator, replacing
``(F + 1) x G`` provisioned CPU nodes with ``G + B``.

The pool here is the *live* implementation used by tests and examples.
A watchdog host runs one monitor per group; each monitor performs the
same one-sided heartbeat *reads* of the group's admin words a follower
would ("the communication overhead of a backup CPU node being
responsible for multiple groups is negligible since heartbeats are
reads that rarely occur more frequently than every few milliseconds").
When a group's words stop changing on a quorum of its memory nodes, an
idle backup converts itself into a full CpuNode for that group and
campaigns.  The pool then provisions a replacement VM after
``provisioning_delay_us`` (100 s in the paper, the average EC2 Linux VM
start-up [18]).  The trace-driven *capacity analysis* behind Figure 8
lives separately in :mod:`repro.cluster.backups`.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, List, NamedTuple, Optional

from repro.core.cpu_node import CpuNode
from repro.core.group import SiftGroup
from repro.net.fabric import Fabric
from repro.net.host import Host
from repro.obs import state as obs_state
from repro.obs.stats import StatsSnapshot
from repro.rdma.errors import RdmaError
from repro.rdma.nic import Rnic
from repro.rdma.qp import QpState, QueuePair
from repro.sim.engine import Event
from repro.sim.units import SEC
from repro.storage.admin import AdminWord
from repro.storage.memory_node import ADMIN_REGION, ADMIN_WORD_OFFSET

__all__ = ["BackupPool", "Promotion"]


class Promotion(NamedTuple):
    """One spare handed to a group (times in simulated microseconds).

    *wait_us* is the additional recovery time charged to the fault by
    the pool: zero when a spare was idle, the time spent queued for the
    next provisioned VM otherwise.  It is measured from *request_us*
    (the moment the pool decided the group was dead), so it composes
    with — but does not include — failure-detection latency, and is
    therefore directly comparable to the
    :class:`repro.cluster.backups.PoolAccountant` trace model.
    """

    request_us: float
    promoted_us: float
    group: str
    host: str
    wait_us: float

_BACKUP_NODE_IDS = count(100)  # distinct from the groups' own 1..Fc+1 ids


class _GroupWatcher:
    """Follower-style heartbeat reader for one group, on the watchdog."""

    def __init__(self, host: Host, nic: Rnic, group: SiftGroup):
        self.host = host
        self.nic = nic
        self.group = group
        self._qps: Dict[int, QueuePair] = {}
        self._last_words: Dict[int, AdminWord] = {}

    def _ensure_qps(self):
        for index, node in enumerate(self.group.memory_nodes):
            qp = self._qps.get(index)
            if qp is not None and qp.state is QpState.CONNECTED:
                continue
            if not node.alive:
                continue
            fresh = QueuePair(self.nic, node.listener, name=f"watch-{self.group.name}-{index}")
            try:
                yield self.host.spawn(fresh.connect([ADMIN_REGION]))
            except Exception:
                continue
            self._qps[index] = fresh

    def poll(self):
        """Process: one heartbeat-read round; returns #nodes with progress."""
        yield from self._ensure_qps()
        events = {
            index: qp.read_word(ADMIN_REGION, ADMIN_WORD_OFFSET)
            for index, qp in self._qps.items()
        }
        changed = 0
        for index, event in events.items():
            try:
                raw = yield event
            except RdmaError:
                qp = self._qps.pop(index, None)
                if qp is not None:
                    qp.close()
                continue
            word = AdminWord.unpack(raw)
            if self._last_words.get(index) != word:
                changed += 1
            self._last_words[index] = word
        return changed


class BackupPool:
    """A pool of spare CPU nodes monitoring many groups."""

    def __init__(
        self,
        fabric: Fabric,
        groups: List[SiftGroup],
        size: int,
        provisioning_delay_us: float = 100 * SEC,
        cores: int = 10,
        name: str = "backup",
    ):
        self.fabric = fabric
        self.groups = list(groups)
        self.capacity = size
        self.provisioning_delay_us = provisioning_delay_us
        self.cores = cores
        self.name = name
        self.sim = fabric.sim
        self._spares: List[str] = []
        self._waiters: List[Event] = []  # FIFO queue for the next ready VM
        self._next_host = count()
        self.promotions = 0
        self.provisioned = 0
        self.waits = 0
        self.recovery_wait_us_total = 0.0
        self.promotion_log: List[Promotion] = []
        # Every promotion request instant, recorded *at request time* —
        # a request still waiting for a VM (pool exhausted) must be
        # visible to the autoscaler even though it has no Promotion yet.
        self.request_log: List[float] = []
        self.running = False
        self._watchdog: Optional[Host] = None
        self._watchdog_nic: Optional[Rnic] = None
        # Capacity cost integral (VM-microseconds): the fleet the pool
        # pays for is `capacity` VMs at any instant — a consumed spare's
        # replacement is already provisioning — so cost accrues at
        # `capacity` per microsecond between resizes.
        self._cost_vm_us = 0.0
        self._cost_marker_us = self.sim.now
        self._shrink_debt = 0  # provisions to cancel on arrival after a shrink
        self._retired: set = set()  # group names whose monitors should exit
        self.resizes = 0
        for _ in range(size):
            self._spares.append(self._new_spare())
        self._publish_occupancy()

    def _new_spare(self) -> str:
        host_name = f"{self.name}-{next(self._next_host)}"
        self.fabric.add_host(host_name, cores=self.cores)
        return host_name

    def _publish_occupancy(self) -> None:
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.gauge("backup_pool.idle", pool=self.name).set(
                len(self._spares)
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin monitoring every group from a watchdog host."""
        self.running = True
        self._watchdog = self.fabric.add_host(f"{self.name}-watchdog", cores=2)
        self._watchdog_nic = Rnic(self._watchdog, self.fabric)
        for group in self.groups:
            self._spawn_monitor(group)

    def _spawn_monitor(self, group: SiftGroup) -> None:
        watcher = _GroupWatcher(self._watchdog, self._watchdog_nic, group)
        self._watchdog.spawn(self._monitor(group, watcher), name=f"monitor-{group.name}")

    def watch(self, group: SiftGroup) -> None:
        """Begin monitoring a group added after :meth:`start` (a split)."""
        self._retired.discard(group.name)
        if any(existing is group for existing in self.groups):
            return
        self.groups.append(group)
        if self.running:
            self._spawn_monitor(group)

    def unwatch(self, group: SiftGroup) -> None:
        """Stop monitoring a retired group (its monitor exits next round)."""
        self._retired.add(group.name)
        self.groups = [g for g in self.groups if g.name != group.name]

    def stop(self) -> None:
        """Stop promoting (running monitors drain on their next check)."""
        self.running = False
        # Release queued promotions so their processes terminate.
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter.try_trigger(None)

    @property
    def idle_backups(self) -> int:
        """Spare hosts ready to take over a group right now."""
        return len(self._spares)

    def recovery_wait_us_per_fault(self) -> float:
        """Mean additional recovery time per promotion so far."""
        return self.recovery_wait_us_total / self.promotions if self.promotions else 0.0

    # ------------------------------------------------------------------
    # Autoscaling (repro.control)
    # ------------------------------------------------------------------

    def _accrue_cost(self) -> None:
        now = self.sim.now
        self._cost_vm_us += (now - self._cost_marker_us) * self.capacity
        self._cost_marker_us = now

    def vm_seconds(self) -> float:
        """Capacity time-integral so far: the VM-seconds the pool paid for.

        A statically provisioned pool of B spares over a run of T
        seconds costs ``B x T``; an autoscaled pool costs the integral
        of its capacity curve — the figHotspot cost axis.
        """
        return (self._cost_vm_us + (self.sim.now - self._cost_marker_us) * self.capacity) / 1e6

    def resize(self, capacity: int) -> int:
        """Set the pool's target capacity; returns the previous one.

        Growing starts provisioning the extra VMs now (idle after
        ``provisioning_delay_us``).  Shrinking decommissions idle spares
        immediately and cancels in-flight provisions on arrival; queued
        promotions always beat a pending shrink.
        """
        if capacity < 0:
            raise ValueError(f"pool capacity must be non-negative, got {capacity}")
        self._accrue_cost()
        previous = self.capacity
        self.capacity = capacity
        if capacity > previous:
            grow = capacity - previous
            recovered = min(grow, self._shrink_debt)
            self._shrink_debt -= recovered
            for _ in range(grow - recovered):
                self.sim.spawn(self._provision(), name="provision-backup")
        elif capacity < previous:
            drop = previous - capacity
            while drop and self._spares:
                self._spares.pop()
                drop -= 1
            self._shrink_debt += drop
        if capacity != previous:
            self.resizes += 1
            if obs_state.TRACER is not None:
                obs_state.TRACER.instant(
                    "backup_pool.resize",
                    self.sim.now,
                    pool=self.name,
                    capacity=capacity,
                    previous=previous,
                )
        self._publish_occupancy()
        return previous

    def snapshot(self) -> StatsSnapshot:
        """The pool's :class:`~repro.obs.stats.StatsSnapshot`."""
        return StatsSnapshot(
            kind="backup_pool",
            name=self.name,
            counters={
                "promotions": float(self.promotions),
                "provisioned": float(self.provisioned),
                "waits": float(self.waits),
                "resizes": float(self.resizes),
                "recovery_wait_us_total": self.recovery_wait_us_total,
            },
            gauges={
                "idle": float(len(self._spares)),
                "capacity": float(self.capacity),
                "queued": float(len(self._waiters)),
                "vm_seconds": self.vm_seconds(),
            },
        )

    # ------------------------------------------------------------------
    # Monitoring and promotion
    # ------------------------------------------------------------------

    def _monitor(self, group: SiftGroup, watcher: _GroupWatcher):
        config = group.config
        interval = config.heartbeat_read_interval_us
        stale_rounds = 0
        while self.running:
            yield self.sim.timeout(interval)
            if group.name in self._retired:
                return
            changed = yield from watcher.poll()
            if changed >= config.quorum:
                stale_rounds = 0
                continue
            stale_rounds += 1
            if stale_rounds <= config.missed_heartbeats_allowed:
                continue
            if any(cpu.host.alive for cpu in group.cpu_nodes):
                # The group still has its own CPU node(s); its election
                # machinery will act (the stale reads mean it is mid-
                # election or briefly stalled, not abandoned).
                stale_rounds = 0
                continue
            yield from self._promote(group)
            stale_rounds = 0

    def _promote(self, group: SiftGroup):
        """Process: hand an idle spare to *group* (waiting for one if needed).

        Accounting mirrors :class:`repro.cluster.backups.PoolAccountant`
        exactly: an idle spare costs nothing and its replacement starts
        provisioning immediately; an empty pool queues the group for the
        next VM to come ready (FIFO — the heap model's earliest-ready
        VM) and charges the queueing time; a pool built with ``size=0``
        makes the group provision its own VM, charged in full.
        """
        request_us = self.sim.now
        self.request_log.append(request_us)
        if self._spares:
            host_name = self._spares.pop()
            self._publish_occupancy()
            # The consumed spare's replacement starts provisioning now.
            self.sim.spawn(self._provision(), name="provision-backup")
        elif self.capacity == 0:
            # No pool at all: the group provisions its own VM.
            yield self.sim.timeout(self.provisioning_delay_us)
            if not self.running:
                return
            host_name = self._new_spare()
        else:
            waiter = Event(self.sim)
            self._waiters.append(waiter)
            host_name = yield waiter
            if host_name is None or not self.running:
                return  # stop() drained the queue
            # Hand-over time: the replacement provisions from here.
            self.sim.spawn(self._provision(), name="provision-backup")
        wait_us = self.sim.now - request_us
        backup = CpuNode(
            self.fabric,
            f"{host_name}:{group.name}",
            node_id=next(_BACKUP_NODE_IDS),
            config=group.config,
            memory_nodes=group.memory_nodes,
            app_factory=group.app_factory,
            host=self.fabric.host(host_name),
        )
        backup.start()
        group.adopt_cpu_node(backup)
        self.promotions += 1
        if wait_us > 0:
            self.waits += 1
        self.recovery_wait_us_total += wait_us
        self.promotion_log.append(
            Promotion(request_us, self.sim.now, group.name, host_name, wait_us)
        )
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.counter(
                "backup_pool.promotions", pool=self.name, group=group.name
            ).inc()
            obs_state.REGISTRY.histogram("backup_pool.wait_us", pool=self.name).observe(
                wait_us
            )

    def _provision(self):
        yield self.sim.timeout(self.provisioning_delay_us)
        self.provisioned += 1
        if self._waiters:
            # Hand the fresh VM straight to the longest-queued group so
            # its measured wait ends exactly at the VM's ready time.
            self._waiters.pop(0).try_trigger(self._new_spare())
        elif self._shrink_debt > 0:
            # A shrink landed while this VM was provisioning: release it
            # instead of parking it (queued promotions above beat this).
            self._shrink_debt -= 1
        else:
            self._spares.append(self._new_spare())
            self._publish_occupancy()
