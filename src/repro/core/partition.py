"""Deterministic partition planning for parallel memory-node recovery.

RAMCloud showed that the recovery time of a failed storage node stays
flat as data grows only if the node's image is *partitioned* and the
partitions are rebuilt in parallel from many sources.  Sift's §3.4.2
copy is a single coordinator-driven stream; the planner here splits the
same logical address space into ``num_partitions`` contiguous region
ranges so the recovery manager can stream each range independently.

The plan is pure arithmetic over the deployment geometry — no
simulation state, no RNG — so the same configuration always yields the
same plan, which is what makes partitioned recovery replayable and the
BENCH artifacts byte-identical across ``--jobs`` fan-out.

Invariants (enforced here, property-tested in
``tests/test_partition_planner.py``):

* every byte of ``[0, data_bytes)`` belongs to exactly one fragment and
  every fragment to exactly one partition — no gaps, no overlap;
* fragments never straddle the direct/encoded zone boundary (the copy
  path treats the two zones differently);
* partition boundaries land on block-lock boundaries whenever the
  fragment grid allows it, so two partitions' readers do not contend on
  a block split between them;
* partitions are contiguous and address-ordered; when there are more
  partitions than fragments the tail partitions are empty rather than
  fabricated.
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

__all__ = ["RecoveryPartition", "plan_fragments", "plan_partitions"]


class RecoveryPartition(NamedTuple):
    """One contiguous slice of the node image, copied by one reader crew."""

    index: int
    start: int
    """First logical byte of the partition's range."""

    end: int
    """One past the last logical byte (``start == end`` for an empty tail)."""

    fragments: Tuple[Tuple[int, int], ...]
    """``(addr, length)`` copy units, in ascending address order."""

    @property
    def total_bytes(self) -> int:
        """Bytes this partition is responsible for."""
        return self.end - self.start


def plan_fragments(
    data_bytes: int, chunk_bytes: int, direct_bytes: int = 0
) -> List[Tuple[int, int]]:
    """The ``(addr, length)`` copy units covering ``[0, data_bytes)``.

    Identical to the pre-partitioning copy plan: walk the address space
    in ``chunk_bytes`` steps, clamping the fragment that would straddle
    the direct/encoded boundary.
    """
    if chunk_bytes <= 0:
        raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
    if data_bytes < 0:
        raise ValueError(f"data_bytes must be non-negative, got {data_bytes}")
    if not 0 <= direct_bytes <= data_bytes:
        raise ValueError(
            f"direct_bytes {direct_bytes} outside [0, {data_bytes}]"
        )
    fragments: List[Tuple[int, int]] = []
    addr = 0
    while addr < data_bytes:
        length = min(chunk_bytes, data_bytes - addr)
        if addr < direct_bytes:
            # Never straddle the direct/encoded zone boundary.
            length = min(length, direct_bytes - addr)
        fragments.append((addr, length))
        addr += length
    return fragments


def plan_partitions(
    data_bytes: int,
    chunk_bytes: int,
    num_partitions: int,
    direct_bytes: int = 0,
    block_bytes: int = 1,
) -> List[RecoveryPartition]:
    """Split the node image into ``num_partitions`` contiguous ranges.

    Fragments are distributed as evenly as the grid allows (each split
    takes the ceiling share of the *remaining* fragments, so earlier
    partitions are never smaller than later ones by more than one
    fragment), then each boundary is pushed forward until it is
    block-aligned — a partition never ends mid-block unless the image
    itself does.
    """
    if num_partitions < 1:
        raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
    if block_bytes < 1:
        raise ValueError(f"block_bytes must be >= 1, got {block_bytes}")
    fragments = plan_fragments(data_bytes, chunk_bytes, direct_bytes)
    partitions: List[RecoveryPartition] = []
    position = 0
    cursor = 0  # address reached so far; empty tails collapse onto it
    for index in range(num_partitions):
        remaining = num_partitions - index
        quota = (len(fragments) - position + remaining - 1) // remaining
        take = fragments[position : position + quota]
        position += len(take)
        # Snap the boundary to the block-lock grid by absorbing whole
        # fragments; the last partition always absorbs the tail.
        while (
            position < len(fragments)
            and take
            and (take[-1][0] + take[-1][1]) % block_bytes
        ):
            take.append(fragments[position])
            position += 1
        if take:
            start = take[0][0]
            cursor = take[-1][0] + take[-1][1]
        else:
            start = cursor
        partitions.append(RecoveryPartition(index, start, cursor, tuple(take)))
    if position != len(fragments):  # pragma: no cover - planner invariant
        raise AssertionError("partition planner dropped fragments")
    return partitions
