"""Group membership word.

The paper brings a recovered memory node "into the system" after its
region copy completes (§3.4.2) but leaves the bookkeeping implicit.  We
make it explicit and crash-safe the same way Raft handles configuration
changes: membership transitions are **logged writes** to a reserved
address at the head of replicated memory, so they are committed through
the same quorum WAL append as ordinary writes, and a new coordinator
recovers the latest membership simply by replaying the log (§3.4.1).

Encoding (64 bits, little-endian at logical address 0):
``epoch (32b) | member bitmap (16b) | reserved (16b)``.  A zero word is
the bootstrap state and means "all 2Fm + 1 nodes are members".
"""

from __future__ import annotations

from typing import FrozenSet, NamedTuple

__all__ = ["Membership", "MEMBERSHIP_ADDR", "RESERVED_BYTES"]

MEMBERSHIP_ADDR = 0
RESERVED_BYTES = 64
"""Reserved prefix of the logical address space; applications start above it."""


class Membership(NamedTuple):
    """A committed membership view."""

    epoch: int
    members: FrozenSet[int]

    def pack(self) -> bytes:
        """Encode into the on-memory-node word."""
        bitmap = 0
        for index in self.members:
            if not 0 <= index < 16:
                raise ValueError(f"member index {index} out of bitmap range")
            bitmap |= 1 << index
        word = (self.epoch & 0xFFFFFFFF) | (bitmap << 32)
        return word.to_bytes(8, "little")

    @classmethod
    def unpack(cls, raw: bytes, total_nodes: int) -> "Membership":
        """Decode; a zero word bootstraps to all-members at epoch 0."""
        word = int.from_bytes(raw[:8], "little")
        if word == 0:
            return cls(0, frozenset(range(total_nodes)))
        epoch = word & 0xFFFFFFFF
        bitmap = (word >> 32) & 0xFFFF
        members = frozenset(i for i in range(total_nodes) if bitmap & (1 << i))
        return cls(epoch, members)

    def with_member(self, index: int) -> "Membership":
        """Next epoch with *index* joined."""
        return Membership(self.epoch + 1, self.members | {index})

    def without_member(self, index: int) -> "Membership":
        """Next epoch with *index* removed."""
        return Membership(self.epoch + 1, self.members - {index})
