"""Sift deployment configuration.

Defaults mirror the paper's experimental setup (§6.2) where one is
stated; timing constants that the paper leaves implicit are documented
with the sentence that constrains them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.memory_node import MemoryNodeConfig

__all__ = ["SiftConfig", "CpuCosts"]


@dataclass(frozen=True)
class CpuCosts:
    """Coordinator-side CPU charges, in core-microseconds.

    These are the calibration constants behind Figure 7: Sift needs more
    cores than Raft-R at equal throughput because of "the larger amount
    of work being performed in the background to apply writes" (§6.3.2).
    """

    rdma_post_us: float = 0.4
    """Posting a verb / reaping a completion."""

    request_us: float = 4.0
    """Base bookkeeping per client request inside the replicated-memory layer."""

    log_append_us: float = 2.0
    """Building a WAL slot image (header, CRC) before posting the writes."""

    apply_entry_us: float = 6.0
    """Background work to apply one committed entry to replicated memory."""

    ec_encode_us_per_kb: float = 12.0
    """Cauchy RS encoding cost per KiB of block data (calibrated so the
    Sift EC knee in Figure 7 lands ~2 cores above plain Sift's)."""

    ec_decode_us_per_kb: float = 12.0
    """Decode cost per KiB when a read must rebuild from parity chunks."""

    lock_us: float = 0.5
    """Acquiring/releasing one block lock."""


@dataclass(frozen=True)
class SiftConfig:
    """Everything needed to deploy one Sift group."""

    fm: int = 1
    """Tolerated memory-node failures; the group runs 2*fm + 1 memory nodes."""

    fc: int = 1
    """Tolerated CPU-node failures; the group runs fc + 1 CPU nodes."""

    erasure_coding: bool = False
    """Enable Sift EC (§5.1): split blocks into fm+1 data + fm parity chunks."""

    data_bytes: int = 4 * 1024 * 1024
    """Size of the logical replicated memory exposed to applications."""

    direct_bytes: int = 0
    """Prefix of the address space writable without logging (§3.3.2).

    Stored un-encoded on every node even in EC mode, because direct
    writers (like the KV store's own WAL) manage recovery themselves.
    """

    block_bytes: int = 1024
    """Lock granularity and the erasure-coding block size B."""

    wal_entries: int = 32 * 1024
    """Replicated-memory WAL capacity (§6.2: 32k entries)."""

    wal_payload_bytes: int = 1_088
    """Maximum logged write size (a KV block plus headers fits)."""

    heartbeat_write_interval_us: float = 2_000.0
    """Coordinator lease renewal period.

    Must be at most heartbeat_read_interval / missed allowed so a deposed
    coordinator notices before the new one starts serving (§3.2).
    """

    heartbeat_read_interval_us: float = 7_000.0
    """§6.5: "a heartbeat read interval of 7ms"."""

    missed_heartbeats_allowed: int = 3
    """§6.5: "a tolerance of three missed heartbeats" (~21 ms detection)."""

    election_backoff_min_us: float = 200.0
    election_backoff_max_us: float = 4_000.0
    """Randomized back-off window between failed election rounds (§3.4)."""

    verb_timeout_us: float = 1_000.0
    """Retry-exhaustion budget for one-sided verbs."""

    doorbell_batching: bool = False
    """Flush replication fan-out writes with one doorbell per batch.

    When set, the coordinator stages the per-node WAL/direct writes
    with :meth:`~repro.rdma.qp.QueuePair.prepare_write` and rings one
    doorbell (:meth:`~repro.rdma.nic.Rnic.post_many`) for the whole
    fan-out, paying the NIC's ``verb_overhead_us`` once instead of once
    per node.  Off by default: it changes simulated timings, so the
    committed figure baselines keep the unbatched path."""

    memnode_poll_interval_us: float = 500_000.0
    """§3.4.2: the background recovery thread polls failed nodes periodically."""

    recovery_chunk_bytes: int = 64 * 1024
    """Incremental copy unit for memory-node recovery (read-lock granularity)."""

    recovery_parallelism: int = 8
    """Concurrent chunk copies during memory-node recovery.  The paper's
    implementation "aggressively copies data to the new memory node to
    bring it back into the system as quickly as possible" (§6.5) — the
    resulting bandwidth contention is Figure 11's throughput dip.  Set
    to 1 for a gentle copy that trades recovery time for steadier
    throughput (the flexibility §6.5 points out)."""

    recovery_partitions: int = 1
    """Partition count for RAMCloud-style parallel memory-node recovery.

    ``1`` (the default) preserves the paper's single coordinator-driven
    copy stream — the §3.4.2 path, byte-for-byte.  Values above one
    split the node image into that many contiguous ranges (see
    :mod:`repro.core.partition`) and stream each range from a live
    source node *directly* to the rejoining node, so the aggregate copy
    bandwidth scales with the number of source links instead of being
    bottlenecked on the coordinator's NIC.  Erasure-coded groups always
    use the coordinator-driven stream regardless of this knob, because
    only the coordinator can decode and re-encode the target's chunks.
    """

    recovery_order: str = "sequential"
    """Memory-node recovery copy order: ``sequential`` (the paper's
    implementation) or ``popularity`` — the §6.5 proposal: "a more
    efficient recovery approach could identify the most popular memory
    blocks and copy them in order of increasing popularity to reduce the
    effective performance impact".  Popularity is tracked from the
    coordinator's remote-read counters, and the hottest chunks are copied
    *last* so the workload keeps its fast path for most of the copy."""

    max_apply_inflight: int = 16
    """Outstanding background apply verbs per memory node."""

    cpu_node_cores: int = 10
    """Table 2: Sift CPU nodes were provisioned with 10 cores (12 for EC)."""

    memory_node_cores: int = 1
    """Table 2: memory nodes need a single core."""

    costs: CpuCosts = field(default_factory=CpuCosts)

    # -- derived geometry ------------------------------------------------------

    @property
    def memory_node_count(self) -> int:
        """2Fm + 1 (§3.1)."""
        return 2 * self.fm + 1

    @property
    def cpu_node_count(self) -> int:
        """Fc + 1 (§3.1)."""
        return self.fc + 1

    @property
    def quorum(self) -> int:
        """Majority of memory nodes."""
        return self.fm + 1

    @property
    def data_shards(self) -> int:
        """EC data chunks per block (Fm + 1)."""
        return self.fm + 1

    @property
    def parity_shards(self) -> int:
        """EC parity chunks per block (Fm)."""
        return self.fm

    @property
    def chunk_bytes(self) -> int:
        """Stored bytes per node per block in EC mode (padded ceil(B/k))."""
        k = self.data_shards
        return (self.block_bytes + k - 1) // k

    @property
    def encoded_bytes(self) -> int:
        """Logical bytes in the encoded zone of the address space."""
        return self.data_bytes - self.direct_bytes

    @property
    def encoded_blocks(self) -> int:
        """Number of EC blocks in the encoded zone."""
        return (self.encoded_bytes + self.block_bytes - 1) // self.block_bytes

    @property
    def node_data_bytes(self) -> int:
        """Replicated-memory bytes stored per memory node."""
        if not self.erasure_coding:
            return self.data_bytes
        return self.direct_bytes + self.encoded_blocks * self.chunk_bytes

    @property
    def election_timeout_us(self) -> float:
        """Reads without a fresh heartbeat before a follower runs (§3.2)."""
        return self.heartbeat_read_interval_us * self.missed_heartbeats_allowed

    def memory_node_config(self) -> MemoryNodeConfig:
        """Geometry handed to each :class:`~repro.storage.MemoryNode`."""
        return MemoryNodeConfig(
            wal_entries=self.wal_entries,
            wal_payload_bytes=self.wal_payload_bytes,
            data_bytes=self.node_data_bytes,
        )

    def validate(self) -> None:
        """Raise ValueError on inconsistent settings."""
        if self.fm < 0 or self.fc < 0:
            raise ValueError("fm and fc must be non-negative")
        if self.direct_bytes > self.data_bytes:
            raise ValueError("direct_bytes cannot exceed data_bytes")
        if self.direct_bytes % self.block_bytes:
            raise ValueError("direct_bytes must be block-aligned")
        if self.wal_payload_bytes < self.block_bytes:
            raise ValueError("wal_payload_bytes must fit one block write")
        hb_budget = self.heartbeat_write_interval_us * 2
        if hb_budget > self.election_timeout_us:
            raise ValueError(
                "heartbeat writes too slow for the election timeout: a live "
                "coordinator would be deposed"
            )
        if self.recovery_partitions < 1:
            raise ValueError(
                f"recovery_partitions must be >= 1, got {self.recovery_partitions}"
            )
        if self.recovery_order not in ("sequential", "popularity"):
            raise ValueError(
                f"unknown recovery_order: {self.recovery_order!r} "
                "(expected 'sequential' or 'popularity')"
            )
