"""Fault recovery (§3.4).

Two procedures, both executed by coordinator-side processes against
passive memory nodes:

**Coordinator (log) recovery, §3.4.1.**  A newly elected coordinator
reads the circular logs from all reachable memory nodes, merges them into
"a consistent, up-to-date version of the log", repairs nodes whose logs
differ from the majority, and replays the merged log so that "all
previously committed writes have been applied to the replicated memory".
The merge uses two rules beyond the paper's prose, both forced by the
same races Raft handles:

* at equal log index, the entry with the higher *term* wins (a deposed
  coordinator may have left a divergent entry on a minority node);
* entries beyond the last index of the highest term present are dropped
  (an old coordinator's unacknowledged suffix must not resurrect after
  the newer coordinator has served conflicting state).

**Memory-node recovery, §3.4.2.**  A background thread polls failed
nodes; when one reconnects, the coordinator incrementally read-locks
regions of memory and copies them over, degrading write throughput
gradually while leaving reads unaffected, then commits a membership
change that brings the node back into quorums.  While the copy runs the
node already receives WAL appends and background applies — the block
locks guarantee a copied range cannot be concurrently applied to, which
is what makes the copy linearisable.

**Trust.**  A volatile memory node that crashes and restarts comes back
with zeroed DRAM, yet its admin word is writable again, so a recovering
coordinator must be able to tell "member with intact state" from "member
that silently lost everything".  Each node carries a *status word* in an
exclusive metadata region: the coordinator stamps it ``INITIALISED``
after bootstrap or a completed copy, and a restart wipes it.  Only
``member AND status-initialised`` nodes serve reads or count as data
sources.  Additionally, a coordinator commits a membership *removal*
immediately upon detecting a node failure; this closes the window in
which a successor could trust a node whose failure the old coordinator
had seen but not yet recorded.  (The one remaining hole — the old
coordinator dies before the removal commits *and* the WAL wraps before
the successor recovers — would need ~WAL-size committed writes in a few
hundred microseconds; we document rather than defend against it.)
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set

from repro.core.errors import GroupUnavailable
from repro.core.locks import LockMode
from repro.core.membership import MEMBERSHIP_ADDR, Membership
from repro.core.replicated_memory import NodeState, ReplicatedMemory
from repro.rdma.errors import RdmaError
from repro.rdma.qp import QueuePair
from repro.sim.engine import all_of
from repro.storage.memory_node import (
    META_REGION,
    REPMEM_REGION,
    STATUS_INITIALISED,
    STATUS_UNINITIALISED,
)
from repro.storage.wal import WalEntry

__all__ = ["recover_log", "RecoveryResult", "MemoryNodeRecoveryManager"]

_WAL_READ_CHUNK = 256 * 1024
"""Bytes per one-sided read while scanning a node's WAL."""


class RecoveryResult(NamedTuple):
    """Outcome of log recovery: who to activate, who to re-copy."""

    membership: Membership
    live: Set[int]
    bootstrap: bool
    replayed_entries: int


def recover_log(repmem: ReplicatedMemory):
    """Process: §3.4.1 log recovery; returns a :class:`RecoveryResult`.

    Must run after :meth:`ReplicatedMemory.connect` and before
    :meth:`ReplicatedMemory.activate`.  On return, every *trusted member*
    node holds the merged log and fully replayed replicated memory, and
    ``repmem.next_index`` points past the last recovered entry.
    """
    config = repmem.config
    costs = repmem.costs
    layout = repmem.wal_layout
    connected = sorted(repmem.qps)
    if len(connected) < config.quorum:
        raise GroupUnavailable(
            f"log recovery needs a quorum, only {len(connected)} nodes connected"
        )

    # 0. Which connected nodes still hold usable state?
    trusted: Set[int] = set()
    for n in connected:
        try:
            status = yield from repmem.read_status(n)
        except RdmaError:
            repmem.mark_node_dead(n)
            continue
        if status == STATUS_INITIALISED:
            trusted.add(n)
    connected = sorted(repmem.qps)

    # 1. Read every connected node's WAL, in bounded chunks.  Untrusted
    #    nodes are scanned too: a stale persistent node may hold genuine
    #    entries that survive the merge rules below.
    node_entries: Dict[int, Dict[int, WalEntry]] = {}
    for n in connected:
        raw = bytearray()
        offset = 0
        try:
            while offset < layout.total_bytes:
                take = min(_WAL_READ_CHUNK, layout.total_bytes - offset)
                data = yield repmem.qps[n].read(REPMEM_REGION, offset, take)
                raw += data
                offset += take
        except RdmaError:
            repmem.mark_node_dead(n)
            trusted.discard(n)
            continue
        yield repmem.host.execute(costs.apply_entry_us)  # header scan pass
        entries: Dict[int, WalEntry] = {}
        for slot in range(layout.entry_count):
            begin = slot * layout.slot_bytes
            entry = repmem.codec.decode(bytes(raw[begin : begin + layout.slot_bytes]))
            if entry is not None:
                entries[entry.log_index] = entry
        node_entries[n] = entries
    if len(node_entries) < config.quorum:
        raise GroupUnavailable("lost quorum while reading WALs")

    # 2. Merge: per index keep the max-term entry; truncate stale suffixes.
    merged: Dict[int, WalEntry] = {}
    for entries in node_entries.values():
        for index, entry in entries.items():
            best = merged.get(index)
            if best is None or entry.term > best.term:
                merged[index] = entry
    authoritative: List[WalEntry] = []
    if merged:
        max_term = max(entry.term for entry in merged.values())
        last_index = max(
            index for index, entry in merged.items() if entry.term == max_term
        )
        authoritative = [
            merged[index] for index in sorted(merged) if index <= last_index
        ]
        repmem.next_index = last_index + 1

    # 3. Bootstrap: nobody initialised and nothing logged means a fresh
    #    group; adopt the connected set and stamp everyone.
    total = len(repmem.memory_nodes)
    if not trusted and not authoritative:
        membership = Membership(1, frozenset(connected))
        for n in connected:
            yield from repmem.write_status(n, STATUS_INITIALISED)
        repmem.membership = membership
        return RecoveryResult(membership, set(connected), True, 0)

    # 4. Determine membership: the newest membership entry in the merged
    #    log wins; otherwise the max-epoch word applied on trusted nodes;
    #    otherwise the trusted set itself (group died before its first
    #    membership commit).
    membership: Optional[Membership] = None
    for entry in reversed(authoritative):
        if entry.address == MEMBERSHIP_ADDR:
            membership = Membership.unpack(entry.data, total)
            break
    if membership is None:
        best: Optional[Membership] = None
        for n in sorted(trusted):
            try:
                word = yield repmem.qps[n].read(
                    REPMEM_REGION, repmem.amap.raw_extent(MEMBERSHIP_ADDR), 8
                )
            except RdmaError:
                repmem.mark_node_dead(n)
                trusted.discard(n)
                continue
            if int.from_bytes(word, "little") == 0:
                continue
            decoded = Membership.unpack(word, total)
            if best is None or decoded.epoch > best.epoch:
                best = decoded
        membership = best if best is not None else Membership(0, frozenset(trusted))

    live = trusted & membership.members & set(repmem.qps)
    if len(live) < config.quorum:
        salvaged = yield from _try_salvage(repmem, membership, live, trusted)
        if salvaged is None:
            raise GroupUnavailable(
                f"only {len(live)} trusted member nodes reachable, need {config.quorum}"
            )
        live = salvaged
        trusted |= salvaged

    # 5. Repair lagging logs on the nodes that will serve (§3.4.1).
    repair_acks = []
    for n in sorted(live):
        entries = node_entries.get(n, {})
        for entry in authoritative:
            if entries.get(entry.log_index) == entry:
                continue
            image = repmem.codec.encode(entry)
            offset = layout.slot_offset(entry.log_index)
            repair_acks.append(repmem.qps[n].write(REPMEM_REGION, offset, image))
    if repair_acks:
        yield all_of(repmem.sim, repair_acks)

    # 6. Replay every recovered entry onto every live node, in log order.
    #    Replays are absolute writes, so re-applying already-applied
    #    entries is idempotent.
    for entry in authoritative:
        yield repmem.host.execute(costs.apply_entry_us)
        chunks = None
        if repmem.rs is not None and repmem.amap.is_encoded(entry.address, len(entry.data)):
            kb = len(entry.data) / 1024.0
            yield repmem.host.execute(costs.ec_encode_us_per_kb * kb)
            block = repmem.amap.block_index(entry.address)
            start, end = repmem.amap.block_bounds(block)
            if entry.address != start or len(entry.data) != end - start:
                raise GroupUnavailable(
                    "corrupt WAL: partial-block entry in the encoded zone"
                )
            chunks = repmem.rs.encode(entry.data)
        acks = []
        for n in sorted(live):
            qp = repmem.qps.get(n)
            if qp is None:
                continue
            if chunks is not None:
                offset = repmem.amap.chunk_extent(repmem.amap.block_index(entry.address))
                payload = chunks[n]
            else:
                offset = repmem.amap.raw_extent(entry.address)
                payload = entry.data
            acks.append(qp.write(REPMEM_REGION, offset, payload))
        if acks:
            yield all_of(repmem.sim, acks)

    repmem.membership = membership
    return RecoveryResult(membership, live, False, len(authoritative))


def _try_salvage(repmem: ReplicatedMemory, membership: Membership, live: Set[int], trusted: Set[int]):
    """Process: §3.5 salvage for minority-persistent deployments.

    After a full power cycle, a group whose persistent nodes are a
    *minority* has intact data on too few nodes to form a quorum, while
    the volatile majority restarted blank.  When plain replication is in
    use (any single replica is a complete copy), **every** member is
    reachable, and at least one is trusted, the surviving replica is
    authoritative up to the §3.5 caveat — acknowledged writes whose
    commit quorum consisted entirely of volatile nodes may be lost,
    which is exactly the "tunable amounts of data loss" the paper
    describes for this configuration.  The salvage copies the trusted
    replica onto each blank member and stamps their status words, after
    which recovery proceeds normally.

    Returns the new live set, or None when salvage is not applicable
    (erasure coding — one node does not hold a decodable copy — or an
    unreachable member that might hold newer state).
    """
    config = repmem.config
    if config.erasure_coding or not live:
        return None
    connected = set(repmem.qps)
    if not membership.members <= connected:
        return None  # an absent member could hold newer committed state
    source = repmem.qps[min(live)]
    targets = sorted(membership.members - live)
    node_config = config.memory_node_config()
    begin = node_config.data_offset
    end = node_config.data_offset + node_config.data_bytes
    for n in targets:
        offset = begin
        while offset < end:
            take = min(_WAL_READ_CHUNK, end - offset)
            data = yield source.read(REPMEM_REGION, offset, take)
            yield repmem.qps[n].write(REPMEM_REGION, offset, data)
            offset += take
        yield from repmem.write_status(n, STATUS_INITIALISED)
    return set(membership.members)


class MemoryNodeRecoveryManager:
    """§3.4.2: background poller + incremental copy for failed nodes."""

    def __init__(self, repmem: ReplicatedMemory):
        self.repmem = repmem
        self.running = False
        self._recovering: Set[int] = set()
        self.recoveries_completed = 0

    def start(self) -> None:
        """Spawn the background poller on the coordinator host."""
        self.running = True
        self.repmem.host.spawn(self._poller(), name="memnode-recovery")

    def stop(self) -> None:
        """Stop polling (the coordinator is shutting down or deposed)."""
        self.running = False

    # -- background poller -------------------------------------------------------

    def _poller(self):
        repmem = self.repmem
        while self.running and repmem.running and not repmem.deposed:
            yield repmem.sim.timeout(repmem.config.memnode_poll_interval_us)
            if not self.running or not repmem.running or repmem.deposed:
                return
            for n, state in list(repmem.states.items()):
                if state != NodeState.DEAD or n in self._recovering:
                    continue
                node = repmem.memory_nodes[n]
                if not node.alive:
                    continue
                if not repmem.nic.fabric.reachable(repmem.host.name, node.name):
                    continue
                self._recovering.add(n)
                repmem.host.spawn(self._recover_node(n), name=f"recover-mem-{n}")

    # -- one node's recovery --------------------------------------------------------

    def _recover_node(self, n: int):
        repmem = self.repmem
        node = repmem.memory_nodes[n]
        try:
            qp = QueuePair(repmem.nic, node.listener, name=f"repmem-{n}")
            try:
                yield repmem.host.spawn(qp.connect([REPMEM_REGION, META_REGION]))
            except Exception:
                return  # node vanished again; the poller will retry
            # The node must not be trusted (nor be a member) until the
            # copy completes, even if it is a stale persistent node.
            yield from repmem.commit_membership(
                lambda m: m.without_member(n) if n in m.members else m
            )
            repmem.begin_node_recovery(n, qp)
            yield from repmem.write_status(n, STATUS_UNINITIALISED)

            yield from self._copy_all(n, qp)
            if not repmem.running or repmem.deposed:
                return
            yield from repmem.write_status(n, STATUS_INITIALISED)
            repmem.finish_node_recovery(n)
            yield from repmem.commit_membership(lambda m: m.with_member(n))
            self.recoveries_completed += 1
        except Exception:
            # Any failure (node died again, we got deposed) abandons the
            # attempt; a later poll retries from scratch.
            repmem.mark_node_dead(n)
        finally:
            self._recovering.discard(n)

    def _copy_all(self, n: int, qp: QueuePair):
        """Incrementally copy the whole logical space to node *n*.

        ``recovery_parallelism`` chunk copies run concurrently — the
        paper's aggressive strategy, whose bandwidth use is what dents
        workload throughput in Figure 11.
        """
        repmem = self.repmem
        plan = self._copy_plan()
        plan.reverse()  # consumed via pop() from the front of the order
        workers = max(1, repmem.config.recovery_parallelism)
        failures: List[BaseException] = []

        def worker():
            while plan and repmem.running and not repmem.deposed:
                addr, length = plan.pop()
                blocks = repmem.amap.blocks_of(addr, length)
                token = yield from repmem.locks.acquire(blocks, LockMode.READ)
                try:
                    yield from self._copy_range(n, qp, addr, length)
                except BaseException as exc:
                    failures.append(exc)
                    return
                finally:
                    repmem.locks.release(token)

        procs = [repmem.host.spawn(worker(), name=f"copy-{n}") for _ in range(workers)]
        for proc in procs:
            try:
                yield proc
            except Exception as exc:
                failures.append(exc)
        if failures:
            raise failures[0]

    def _copy_plan(self):
        """The chunk ranges to copy, in the configured order.

        ``sequential`` walks the address space (the paper's aggressive
        default).  ``popularity`` implements the §6.5 proposal: copy in
        order of *increasing* read popularity, so the hottest ranges
        stay writable (and their write locks uncontended) for most of
        the recovery window.
        """
        repmem = self.repmem
        config = repmem.config
        step = config.recovery_chunk_bytes
        ranges = []
        addr = 0
        while addr < config.data_bytes:
            length = min(step, config.data_bytes - addr)
            if addr < config.direct_bytes:
                # Never straddle the direct/encoded zone boundary.
                length = min(length, config.direct_bytes - addr)
            ranges.append((addr, length))
            addr += length
        if config.recovery_order == "popularity":
            popularity = repmem.read_popularity
            ranges.sort(key=lambda r: popularity.get(r[0] // step, 0))
        return ranges

    def _copy_range(self, n: int, qp: QueuePair, addr: int, length: int):
        repmem = self.repmem
        if not repmem.amap.is_encoded(addr, length):
            data = yield from repmem._raw_read(addr, length)
            yield qp.write(REPMEM_REGION, repmem.amap.raw_extent(addr), data)
            return
        first = repmem.amap.block_index(addr)
        last = repmem.amap.block_index(addr + length - 1)
        for block in range(first, last + 1):
            data = yield from repmem._read_encoded_block(block)
            kb = len(data) / 1024.0
            yield repmem.host.execute(repmem.costs.ec_encode_us_per_kb * kb)
            shard = repmem.rs.encode(data)[n]
            yield qp.write(REPMEM_REGION, repmem.amap.chunk_extent(block), shard)
