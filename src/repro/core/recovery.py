"""Fault recovery (§3.4).

Two procedures, both executed by coordinator-side processes against
passive memory nodes:

**Coordinator (log) recovery, §3.4.1.**  A newly elected coordinator
reads the circular logs from all reachable memory nodes, merges them into
"a consistent, up-to-date version of the log", repairs nodes whose logs
differ from the majority, and replays the merged log so that "all
previously committed writes have been applied to the replicated memory".
The merge uses two rules beyond the paper's prose, both forced by the
same races Raft handles:

* at equal log index, the entry with the higher *term* wins (a deposed
  coordinator may have left a divergent entry on a minority node);
* entries beyond the last index of the highest term present are dropped
  (an old coordinator's unacknowledged suffix must not resurrect after
  the newer coordinator has served conflicting state).

**Memory-node recovery, §3.4.2.**  A background thread polls failed
nodes; when one reconnects, the coordinator incrementally read-locks
regions of memory and copies them over, degrading write throughput
gradually while leaving reads unaffected, then commits a membership
change that brings the node back into quorums.  While the copy runs the
node already receives WAL appends and background applies — the block
locks guarantee a copied range cannot be concurrently applied to, which
is what makes the copy linearisable.

**Trust.**  A volatile memory node that crashes and restarts comes back
with zeroed DRAM, yet its admin word is writable again, so a recovering
coordinator must be able to tell "member with intact state" from "member
that silently lost everything".  Each node carries a *status word* in an
exclusive metadata region: the coordinator stamps it ``INITIALISED``
after bootstrap or a completed copy, and a restart wipes it.  Only
``member AND status-initialised`` nodes serve reads or count as data
sources.  Additionally, a coordinator commits a membership *removal*
immediately upon detecting a node failure; this closes the window in
which a successor could trust a node whose failure the old coordinator
had seen but not yet recorded.  (The one remaining hole — the old
coordinator dies before the removal commits *and* the WAL wraps before
the successor recovers — would need ~WAL-size committed writes in a few
hundred microseconds; we document rather than defend against it.)
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Set, Tuple

from repro.core.errors import (
    GroupUnavailable,
    RecoveryIntegrityError,
    UntrustedSourceError,
)
from repro.core.locks import LockMode
from repro.core.membership import MEMBERSHIP_ADDR, Membership
from repro.core.partition import plan_fragments, plan_partitions
from repro.core.replicated_memory import NodeState, ReplicatedMemory
from repro.obs import state as obs_state
from repro.rdma.errors import RdmaError, RdmaTimeout
from repro.rdma.qp import ACK_WIRE_BYTES, QpState, QueuePair
from repro.sim.engine import Event, ProcessKilled, all_of
from repro.storage.memory_node import (
    META_REGION,
    RECOVERY_REGION,
    REPMEM_REGION,
    STATUS_INITIALISED,
    STATUS_OFFSET,
    STATUS_UNINITIALISED,
)
from repro.storage.wal import WalEntry

__all__ = [
    "recover_log",
    "RecoveryResult",
    "MemoryNodeRecoveryManager",
    "PartitionProgress",
]

PUSH_DESCRIPTOR_BYTES = 64
"""Wire size of one coordinator->source push command (range + grant info)."""

PUSH_TIMEOUT_FLOOR_US = 10_000.0
"""Minimum completion budget granted to one commanded push.  Pushes queue
bulk fragments behind a source NIC's transmit queue, so their legitimate
completion times scale with the number of concurrent readers; the budget
is sized from the deployment geometry with this floor under it."""

_WAL_READ_CHUNK = 256 * 1024
"""Bytes per one-sided read while scanning a node's WAL."""


class RecoveryResult(NamedTuple):
    """Outcome of log recovery: who to activate, who to re-copy."""

    membership: Membership
    live: Set[int]
    bootstrap: bool
    replayed_entries: int


def recover_log(repmem: ReplicatedMemory):
    """Process: §3.4.1 log recovery; returns a :class:`RecoveryResult`.

    Must run after :meth:`ReplicatedMemory.connect` and before
    :meth:`ReplicatedMemory.activate`.  On return, every *trusted member*
    node holds the merged log and fully replayed replicated memory, and
    ``repmem.next_index`` points past the last recovered entry.
    """
    config = repmem.config
    costs = repmem.costs
    layout = repmem.wal_layout
    connected = sorted(repmem.qps)
    if len(connected) < config.quorum:
        raise GroupUnavailable(
            f"log recovery needs a quorum, only {len(connected)} nodes connected"
        )

    # 0. Which connected nodes still hold usable state?
    trusted: Set[int] = set()
    for n in connected:
        try:
            status = yield from repmem.read_status(n)
        except RdmaError:
            repmem.mark_node_dead(n)
            continue
        if status == STATUS_INITIALISED:
            trusted.add(n)
    connected = sorted(repmem.qps)

    # 1. Read every connected node's WAL, in bounded chunks.  Untrusted
    #    nodes are scanned too: a stale persistent node may hold genuine
    #    entries that survive the merge rules below.
    node_entries: Dict[int, Dict[int, WalEntry]] = {}
    for n in connected:
        raw = bytearray()
        offset = 0
        try:
            while offset < layout.total_bytes:
                take = min(_WAL_READ_CHUNK, layout.total_bytes - offset)
                data = yield repmem.qps[n].read(REPMEM_REGION, offset, take)
                raw += data
                offset += take
        except RdmaError:
            repmem.mark_node_dead(n)
            trusted.discard(n)
            continue
        yield repmem.host.execute(costs.apply_entry_us)  # header scan pass
        entries: Dict[int, WalEntry] = {}
        for slot in range(layout.entry_count):
            begin = slot * layout.slot_bytes
            entry = repmem.codec.decode(bytes(raw[begin : begin + layout.slot_bytes]))
            if entry is not None:
                entries[entry.log_index] = entry
        node_entries[n] = entries
    if len(node_entries) < config.quorum:
        raise GroupUnavailable("lost quorum while reading WALs")

    # 2. Merge: per index keep the max-term entry; truncate stale suffixes.
    merged: Dict[int, WalEntry] = {}
    for entries in node_entries.values():
        for index, entry in entries.items():
            best = merged.get(index)
            if best is None or entry.term > best.term:
                merged[index] = entry
    authoritative: List[WalEntry] = []
    if merged:
        max_term = max(entry.term for entry in merged.values())
        last_index = max(
            index for index, entry in merged.items() if entry.term == max_term
        )
        authoritative = [
            merged[index] for index in sorted(merged) if index <= last_index
        ]
        repmem.next_index = last_index + 1

    # 3. Bootstrap: nobody initialised and nothing logged means a fresh
    #    group; adopt the connected set and stamp everyone.
    total = len(repmem.memory_nodes)
    if not trusted and not authoritative:
        membership = Membership(1, frozenset(connected))
        for n in connected:
            yield from repmem.write_status(n, STATUS_INITIALISED)
        repmem.membership = membership
        return RecoveryResult(membership, set(connected), True, 0)

    # 4. Determine membership: the newest membership entry in the merged
    #    log wins; otherwise the max-epoch word applied on trusted nodes;
    #    otherwise the trusted set itself (group died before its first
    #    membership commit).
    membership: Optional[Membership] = None
    for entry in reversed(authoritative):
        if entry.address == MEMBERSHIP_ADDR:
            membership = Membership.unpack(entry.data, total)
            break
    if membership is None:
        best: Optional[Membership] = None
        for n in sorted(trusted):
            try:
                word = yield repmem.qps[n].read(
                    REPMEM_REGION, repmem.amap.raw_extent(MEMBERSHIP_ADDR), 8
                )
            except RdmaError:
                repmem.mark_node_dead(n)
                trusted.discard(n)
                continue
            if int.from_bytes(word, "little") == 0:
                continue
            decoded = Membership.unpack(word, total)
            if best is None or decoded.epoch > best.epoch:
                best = decoded
        membership = best if best is not None else Membership(0, frozenset(trusted))

    live = trusted & membership.members & set(repmem.qps)
    if len(live) < config.quorum:
        salvaged = yield from _try_salvage(repmem, membership, live, trusted)
        if salvaged is None:
            raise GroupUnavailable(
                f"only {len(live)} trusted member nodes reachable, need {config.quorum}"
            )
        live = salvaged
        trusted |= salvaged

    # 5. Repair lagging logs on the nodes that will serve (§3.4.1).
    repair_acks = []
    for n in sorted(live):
        entries = node_entries.get(n, {})
        for entry in authoritative:
            if entries.get(entry.log_index) == entry:
                continue
            image = repmem.codec.encode(entry)
            offset = layout.slot_offset(entry.log_index)
            repair_acks.append(repmem.qps[n].write(REPMEM_REGION, offset, image))
    if repair_acks:
        yield all_of(repmem.sim, repair_acks)

    # 6. Replay every recovered entry onto every live node, in log order.
    #    Replays are absolute writes, so re-applying already-applied
    #    entries is idempotent.
    for entry in authoritative:
        yield repmem.host.execute(costs.apply_entry_us)
        chunks = None
        if repmem.rs is not None and repmem.amap.is_encoded(entry.address, len(entry.data)):
            kb = len(entry.data) / 1024.0
            yield repmem.host.execute(costs.ec_encode_us_per_kb * kb)
            block = repmem.amap.block_index(entry.address)
            start, end = repmem.amap.block_bounds(block)
            if entry.address != start or len(entry.data) != end - start:
                raise GroupUnavailable(
                    "corrupt WAL: partial-block entry in the encoded zone"
                )
            chunks = repmem.rs.encode(entry.data)
        acks = []
        for n in sorted(live):
            qp = repmem.qps.get(n)
            if qp is None:
                continue
            if chunks is not None:
                offset = repmem.amap.chunk_extent(repmem.amap.block_index(entry.address))
                payload = chunks[n]
            else:
                offset = repmem.amap.raw_extent(entry.address)
                payload = entry.data
            acks.append(qp.write(REPMEM_REGION, offset, payload))
        if acks:
            yield all_of(repmem.sim, acks)

    repmem.membership = membership
    return RecoveryResult(membership, live, False, len(authoritative))


def _try_salvage(repmem: ReplicatedMemory, membership: Membership, live: Set[int], trusted: Set[int]):
    """Process: §3.5 salvage for minority-persistent deployments.

    After a full power cycle, a group whose persistent nodes are a
    *minority* has intact data on too few nodes to form a quorum, while
    the volatile majority restarted blank.  When plain replication is in
    use (any single replica is a complete copy), **every** member is
    reachable, and at least one is trusted, the surviving replica is
    authoritative up to the §3.5 caveat — acknowledged writes whose
    commit quorum consisted entirely of volatile nodes may be lost,
    which is exactly the "tunable amounts of data loss" the paper
    describes for this configuration.  The salvage copies the trusted
    replica onto each blank member and stamps their status words, after
    which recovery proceeds normally.

    Returns the new live set, or None when salvage is not applicable
    (erasure coding — one node does not hold a decodable copy — or an
    unreachable member that might hold newer state).
    """
    config = repmem.config
    if config.erasure_coding or not live:
        return None
    connected = set(repmem.qps)
    if not membership.members <= connected:
        return None  # an absent member could hold newer committed state
    source = repmem.qps[min(live)]
    targets = sorted(membership.members - live)
    node_config = config.memory_node_config()
    begin = node_config.data_offset
    end = node_config.data_offset + node_config.data_bytes
    for n in targets:
        offset = begin
        while offset < end:
            take = min(_WAL_READ_CHUNK, end - offset)
            data = yield source.read(REPMEM_REGION, offset, take)
            yield repmem.qps[n].write(REPMEM_REGION, offset, data)
            offset += take
        yield from repmem.write_status(n, STATUS_INITIALISED)
    return set(membership.members)


class MemoryNodeRecoveryManager:
    """§3.4.2: background poller + incremental copy for failed nodes."""

    def __init__(self, repmem: ReplicatedMemory):
        self.repmem = repmem
        self.running = False
        self._recovering: Set[int] = set()
        self.recoveries_completed = 0
        self.copy_stats: Dict[int, Dict[str, object]] = {}
        """Per-node stats of the last *completed* copy: partitions,
        copy_us, bytes, sources.  Consumed by benches and tests."""

    def start(self) -> None:
        """Spawn the background poller on the coordinator host."""
        self.running = True
        self.repmem.host.spawn(self._poller(), name="memnode-recovery")

    def stop(self) -> None:
        """Stop polling (the coordinator is shutting down or deposed)."""
        self.running = False

    # -- background poller -------------------------------------------------------

    def _poller(self):
        repmem = self.repmem
        while self.running and repmem.running and not repmem.deposed:
            yield repmem.sim.timeout(repmem.config.memnode_poll_interval_us)
            if not self.running or not repmem.running or repmem.deposed:
                return
            for n, state in list(repmem.states.items()):
                if state != NodeState.DEAD or n in self._recovering:
                    continue
                node = repmem.memory_nodes[n]
                if not node.alive:
                    continue
                if not repmem.nic.fabric.reachable(repmem.host.name, node.name):
                    continue
                self._recovering.add(n)
                repmem.host.spawn(self._recover_node(n), name=f"recover-mem-{n}")

    # -- one node's recovery --------------------------------------------------------

    def _recover_node(self, n: int):
        repmem = self.repmem
        node = repmem.memory_nodes[n]
        try:
            qp = QueuePair(repmem.nic, node.listener, name=f"repmem-{n}")
            try:
                yield repmem.host.spawn(qp.connect([REPMEM_REGION, META_REGION]))
            except Exception:
                return  # node vanished again; the poller will retry
            # The node must not be trusted (nor be a member) until the
            # copy completes, even if it is a stale persistent node.
            yield from repmem.commit_membership(
                lambda m: m.without_member(n) if n in m.members else m
            )
            repmem.begin_node_recovery(n, qp)
            yield from repmem.write_status(n, STATUS_UNINITIALISED)

            yield from self._copy_all(n, qp)
            if not repmem.running or repmem.deposed:
                return
            yield from repmem.write_status(n, STATUS_INITIALISED)
            repmem.finish_node_recovery(n)
            yield from repmem.commit_membership(lambda m: m.with_member(n))
            self.recoveries_completed += 1
        except Exception:
            # Any failure (node died again, we got deposed) abandons the
            # attempt; a later poll retries from scratch.
            repmem.mark_node_dead(n)
        finally:
            self._recovering.discard(n)

    def _copy_all(self, n: int, qp: QueuePair):
        """Incrementally copy the whole logical space to node *n*.

        Dispatches on ``recovery_partitions``: ``1`` — or any
        erasure-coded group, since only the coordinator can decode and
        re-encode the target's chunks — runs the paper's single
        coordinator-driven stream (§3.4.2).  Above one, the image is
        split by :func:`repro.core.partition.plan_partitions` and each
        partition streams source→target in parallel, RAMCloud-style.
        Either way the copy ends with a pure-local verify step proving
        the copied fragments tile the address space exactly, *before*
        the caller stamps the status word.
        """
        repmem = self.repmem
        partitions = max(1, repmem.config.recovery_partitions)
        started_us = repmem.sim.now
        if partitions > 1 and repmem.rs is None:
            progresses = yield from self._copy_partitioned(n, partitions)
        else:
            progresses = yield from self._copy_single(n, qp)
        if not repmem.running or repmem.deposed:
            return
        self._verify_copy(n, progresses)
        self._record_copy(n, progresses, started_us)

    def _copy_single(self, n: int, qp: QueuePair):
        """Process: the single coordinator-driven copy stream (§3.4.2).

        ``recovery_parallelism`` chunk copies run concurrently — the
        paper's aggressive strategy, whose bandwidth use is what dents
        workload throughput in Figure 11.  This path is schedule-identical
        to the pre-partitioning implementation: every verb, lock
        acquisition, and yield happens in the same order, so
        ``recovery_partitions=1`` reproduces the Figure 11 numbers
        byte-for-byte.  The progress bookkeeping added for the verify
        step is pure local state.
        """
        repmem = self.repmem
        plan = self._copy_plan()
        plan.reverse()  # consumed via pop() from the front of the order
        progress = PartitionProgress(
            0, None, 0, repmem.config.data_bytes, repmem.sim.now
        )
        span = self._partition_span(n, progress)
        workers = max(1, repmem.config.recovery_parallelism)
        failures: List[BaseException] = []

        def worker():
            while plan and repmem.running and not repmem.deposed:
                addr, length = plan.pop()
                blocks = repmem.amap.blocks_of(addr, length)
                token = yield from repmem.locks.acquire(blocks, LockMode.READ)
                try:
                    yield from self._copy_range(n, qp, addr, length)
                    self._note_fragment(n, progress, addr, length)
                except BaseException as exc:
                    failures.append(exc)
                    return
                finally:
                    repmem.locks.release(token)

        procs = [repmem.host.spawn(worker(), name=f"copy-{n}") for _ in range(workers)]
        for proc in procs:
            try:
                yield proc
            except Exception as exc:
                failures.append(exc)
        if failures:
            raise failures[0]
        progress.finished_us = repmem.sim.now
        self._close_span(span, progress)
        return [progress]

    def _copy_partitioned(self, n: int, num_partitions: int):
        """Process: RAMCloud-style partitioned copy (P > 1, replication).

        The node image is split into contiguous partitions, each streamed
        by its own crew of ``recovery_parallelism`` readers, and the
        fragment payloads flow **source → target** over per-source push
        channels instead of through the coordinator's NIC — aggregate
        copy bandwidth scales with the number of source links.  The
        coordinator keeps the lock discipline: a fragment is pushed only
        while the coordinator holds its blocks' read locks, and the push
        command travels the same RC-ordered channel as the background
        applies, so the source's bytes are current when the push begins.
        """
        repmem = self.repmem
        config = repmem.config
        plan = plan_partitions(
            config.data_bytes,
            config.recovery_chunk_bytes,
            num_partitions,
            direct_bytes=config.direct_bytes,
            block_bytes=config.block_bytes,
        )
        sources = [
            m
            for m in sorted(repmem.states)
            if m != n and repmem.states[m] == NodeState.LIVE and m in repmem.qps
        ]
        if not sources:
            raise GroupUnavailable("partitioned recovery needs a live source node")
        assignment = {part.index: sources[part.index % len(sources)] for part in plan}

        readers = max(1, config.recovery_parallelism)
        nic = repmem.memory_nodes[sources[0]].nic
        serialise_us = (
            config.recovery_chunk_bytes / nic.bytes_per_us + nic.verb_overhead_us
        )
        # Worst case every in-flight fragment queues behind one source
        # NIC; double that for propagation/ack slack.
        budget_us = PUSH_TIMEOUT_FLOOR_US + 2.0 * len(plan) * readers * serialise_us

        pushers: Dict[int, _FragmentPusher] = {}
        progresses: List[PartitionProgress] = []
        failures: List[BaseException] = []

        def reader(fragments, pusher, progress):
            while fragments and repmem.running and not repmem.deposed:
                addr, length = fragments.pop()
                blocks = repmem.amap.blocks_of(addr, length)
                token = yield from repmem.locks.acquire(blocks, LockMode.READ)
                try:
                    yield from pusher.push(addr, length)
                    self._note_fragment(n, progress, addr, length)
                except BaseException as exc:
                    failures.append(exc)
                    self._note_untrusted_source(pusher, exc)
                    return
                finally:
                    repmem.locks.release(token)

        def crew(part):
            progress = PartitionProgress(
                part.index, assignment[part.index], part.start, part.end,
                repmem.sim.now,
            )
            progresses.append(progress)
            span = self._partition_span(n, progress)
            fragments = self._order_fragments(list(part.fragments))
            fragments.reverse()  # consumed via pop() from the front
            pusher = pushers[assignment[part.index]]
            procs = [
                repmem.host.spawn(
                    reader(fragments, pusher, progress),
                    name=f"copy-{n}-p{part.index}",
                )
                for _ in range(readers)
            ]
            for proc in procs:
                try:
                    yield proc
                except Exception as exc:
                    failures.append(exc)
            progress.finished_us = repmem.sim.now
            self._close_span(span, progress)

        try:
            opens = []
            for m in sorted(set(assignment.values())):
                pusher = _FragmentPusher(repmem, m, n, budget_us)
                pushers[m] = pusher
                opens.append(
                    (pusher, repmem.host.spawn(pusher.open(), name=f"push-open-{m}-{n}"))
                )
            for pusher, proc in opens:
                try:
                    yield proc
                except Exception as exc:
                    failures.append(exc)
                    self._note_untrusted_source(pusher, exc)
            if failures:
                raise failures[0]
            crews = [
                repmem.host.spawn(crew(part), name=f"copy-crew-{n}-p{part.index}")
                for part in plan
            ]
            for proc in crews:
                try:
                    yield proc
                except Exception as exc:
                    failures.append(exc)
        finally:
            for pusher in pushers.values():
                pusher.close()
        if failures:
            raise failures[0]
        return progresses

    def _note_untrusted_source(
        self, pusher: "_FragmentPusher", exc: BaseException
    ) -> None:
        """A source refused to serve because it is itself unrecovered.

        That refusal is the first (and possibly only) signal that the
        node restarted — no apply has failed toward it yet — so mark it
        dead here: the poller then recovers the source first, and the
        retried copy of the original node finds trustworthy sources.
        """
        if isinstance(exc, UntrustedSourceError):
            self.repmem.mark_node_dead(pusher.source.node_index)

    # -- verify / bookkeeping ----------------------------------------------------

    def _verify_copy(self, n: int, progresses: List["PartitionProgress"]) -> None:
        """The merge step: copied fragments must tile ``[0, data_bytes)``.

        Runs before the coordinator stamps ``INITIALISED`` — a gap,
        overlap, or short partition means the node must not be trusted,
        so the error aborts the attempt and the poller retries from
        scratch.  Pure local arithmetic: no verbs, no yields.
        """
        data_bytes = self.repmem.config.data_bytes
        for progress in progresses:
            if progress.bytes_done != progress.end - progress.start:
                raise self._integrity_failure(
                    n,
                    f"node {n} partition {progress.index}: copied "
                    f"{progress.bytes_done}B of [{progress.start}, {progress.end})",
                )
        fragments = sorted(f for p in progresses for f in p.done)
        cursor = 0
        for addr, length in fragments:
            if addr != cursor:
                kind = "overlap" if addr < cursor else "gap"
                raise self._integrity_failure(
                    n,
                    f"node {n}: {kind} at byte {min(addr, cursor)} "
                    "in the copied ranges",
                )
            cursor = addr + length
        if cursor != data_bytes:
            raise self._integrity_failure(
                n, f"node {n}: copy covers [0, {cursor}) of [0, {data_bytes})"
            )

    def _integrity_failure(self, n: int, message: str) -> RecoveryIntegrityError:
        """Build the integrity error, dumping a postmortem when traced.

        On traced runs (chaos keeps a flight recorder installed) the
        recent-span ring plus registry snapshot land in a postmortem
        file the error message points at; untraced runs lose nothing.
        """
        from repro.obs.flight import maybe_postmortem

        sim = getattr(self.repmem, "sim", None)
        path = maybe_postmortem(
            f"recovery integrity {message}",
            extra={
                "node": n,
                "sim_now_us": sim.now if sim is not None else None,
            },
        )
        if path is not None:
            message = f"{message} [postmortem: {path}]"
        return RecoveryIntegrityError(message)

    def _note_fragment(
        self, n: int, progress: "PartitionProgress", addr: int, length: int
    ) -> None:
        progress.done.append((addr, length))
        progress.bytes_done += length
        if obs_state.REGISTRY is not None:
            registry = obs_state.REGISTRY
            registry.counter("recovery.fragments", node=n).inc()
            registry.counter("recovery.bytes", node=n).inc(length)

    def _record_copy(
        self, n: int, progresses: List["PartitionProgress"], started_us: float
    ) -> None:
        repmem = self.repmem
        copy_us = repmem.sim.now - started_us
        total = sum(p.bytes_done for p in progresses)
        self.copy_stats[n] = {
            "partitions": len(progresses),
            "copy_us": copy_us,
            "bytes": total,
            "sources": sorted({p.source for p in progresses if p.source is not None}),
            "finished_at_us": repmem.sim.now,
        }
        if obs_state.REGISTRY is not None:
            registry = obs_state.REGISTRY
            registry.gauge("recovery.copy_us", node=n).set(copy_us)
            registry.gauge("recovery.partitions", node=n).set(len(progresses))
            if copy_us > 0:
                registry.gauge("recovery.bytes_per_us", node=n).set(total / copy_us)
            for p in progresses:
                if p.duration_us > 0:
                    registry.gauge(
                        "recovery.partition_bytes_per_us", node=n, partition=p.index
                    ).set(p.bytes_done / p.duration_us)

    def _partition_span(self, n: int, progress: "PartitionProgress"):
        if obs_state.TRACER is None:
            return None
        return obs_state.TRACER.span(
            "recovery.partition",
            self.repmem.sim.now,
            node=n,
            partition=progress.index,
            source=progress.source,
            start=progress.start,
            end=progress.end,
        )

    def _close_span(self, span, progress: "PartitionProgress") -> None:
        if span is None:
            return
        span.annotate(fragments=len(progress.done), bytes=progress.bytes_done)
        span.finish(self.repmem.sim.now)

    def _copy_plan(self):
        """The chunk ranges to copy, in the configured order.

        ``sequential`` walks the address space (the paper's aggressive
        default).  ``popularity`` implements the §6.5 proposal: copy in
        order of *increasing* read popularity, so the hottest ranges
        stay writable (and their write locks uncontended) for most of
        the recovery window.
        """
        config = self.repmem.config
        ranges = plan_fragments(
            config.data_bytes, config.recovery_chunk_bytes, config.direct_bytes
        )
        return self._order_fragments(ranges)

    def _order_fragments(self, ranges: List[Tuple[int, int]]):
        """Apply the configured copy order to address-sorted *ranges*."""
        config = self.repmem.config
        if config.recovery_order == "popularity":
            step = config.recovery_chunk_bytes
            popularity = self.repmem.read_popularity
            ranges.sort(key=lambda r: popularity.get(r[0] // step, 0))
        return ranges

    def _copy_range(self, n: int, qp: QueuePair, addr: int, length: int):
        repmem = self.repmem
        if not repmem.amap.is_encoded(addr, length):
            data = yield from repmem._raw_read(addr, length)
            yield qp.write(REPMEM_REGION, repmem.amap.raw_extent(addr), data)
            return
        first = repmem.amap.block_index(addr)
        last = repmem.amap.block_index(addr + length - 1)
        for block in range(first, last + 1):
            data = yield from repmem._read_encoded_block(block)
            kb = len(data) / 1024.0
            yield repmem.host.execute(repmem.costs.ec_encode_us_per_kb * kb)
            shard = repmem.rs.encode(data)[n]
            yield qp.write(REPMEM_REGION, repmem.amap.chunk_extent(block), shard)


class PartitionProgress:
    """Pure-local copy bookkeeping for one partition (no sim effects).

    The single-stream path uses one instance with ``source=None``
    (fragments flow coordinator→target); the partitioned path uses one
    per partition with ``source`` naming the pushing memory node.
    """

    __slots__ = (
        "index",
        "source",
        "start",
        "end",
        "done",
        "bytes_done",
        "started_us",
        "finished_us",
    )

    def __init__(
        self,
        index: int,
        source: Optional[int],
        start: int,
        end: int,
        started_us: float,
    ):
        self.index = index
        self.source = source
        self.start = start
        self.end = end
        self.done: List[Tuple[int, int]] = []
        self.bytes_done = 0
        self.started_us = started_us
        self.finished_us: Optional[float] = None

    @property
    def duration_us(self) -> float:
        """Wall (simulated) time the partition's crew ran."""
        end = self.finished_us if self.finished_us is not None else self.started_us
        return end - self.started_us

    def __repr__(self) -> str:
        return (
            f"<PartitionProgress {self.index} [{self.start}, {self.end}) "
            f"{self.bytes_done}B src={self.source}>"
        )


class _FragmentPusher:
    """Coordinator-held handle for one source→target push channel.

    The coordinator never moves fragment bytes itself: it sends small
    command descriptors to the *source* memory node over its ordinary
    verb channel — RC ordering puts each command after every apply the
    coordinator already posted toward that source, so the source's copy
    of a commanded range is current — and the source streams the bytes
    straight to the rejoining node through a queue pair granted the
    fenced ``repmem-recovery`` view.  Completion flows back as a small
    ack; a deterministic timeout guard bounds every wait so a crashed
    source or target cannot wedge the recovery process.
    """

    def __init__(
        self,
        repmem: ReplicatedMemory,
        source_index: int,
        target_index: int,
        budget_us: float,
    ):
        self.repmem = repmem
        self.source = repmem.memory_nodes[source_index]
        self.target = repmem.memory_nodes[target_index]
        self.budget_us = budget_us
        self._incarnation = self.source.host.incarnation
        self.qp: Optional[QueuePair] = None

    # -- coordinator-side processes ---------------------------------------------

    def open(self):
        """Process: command the source to connect its push channel."""
        ready = Event(self.repmem.sim)
        source, target = self.source, self.target

        def start_connect() -> None:
            qp = QueuePair(
                source.nic,
                target.listener,
                name=f"push-{source.node_index}-{target.node_index}",
            )

            def run():
                try:
                    self._attest_initialised()
                    yield from qp.connect([RECOVERY_REGION])
                except ProcessKilled:
                    raise
                except BaseException as exc:
                    self._answer(ready, error=exc)
                    return
                self.qp = qp
                self._answer(ready)

            source.host.spawn(run(), name=f"push-connect-{target.node_index}")

        yield self._guarded(ready, self._command(start_connect, "recovery_open"), "open")

    def push(self, addr: int, length: int):
        """Process: stream one read-locked fragment source→target.

        Returns once the target's memory holds the bytes (the source's
        RC write ack has been relayed back to the coordinator).
        """
        repmem = self.repmem
        done = Event(repmem.sim)
        offset = repmem.amap.raw_extent(addr)
        source = self.source

        def start_push() -> None:
            def run():
                qp = self.qp
                try:
                    self._attest_initialised()
                    if qp is None or qp.state is not QpState.CONNECTED:
                        raise RdmaError(
                            f"push channel to {self.target.name} not connected"
                        )
                    data = source.repmem_region.read(offset, length)
                    yield source.host.execute(repmem.costs.rdma_post_us)
                    yield qp.write(
                        RECOVERY_REGION, offset, data, timeout_us=self.budget_us
                    )
                except ProcessKilled:
                    raise
                except BaseException as exc:
                    self._answer(done, error=exc)
                    return
                self._answer(done, value=length)

            source.host.spawn(
                run(), name=f"push-{source.node_index}-{self.target.node_index}"
            )

        yield self._guarded(done, self._command(start_push, "recovery_push"), "push")
        return length

    def close(self) -> None:
        """Drop the push channel (bookkeeping only, as with QP close)."""
        qp, self.qp = self.qp, None
        if qp is not None:
            qp.close()

    # -- mechanics ---------------------------------------------------------------

    def _attest_initialised(self) -> None:
        """Source-side trust gate, run on the source's own CPU.

        A node that restarted before the coordinator noticed still shows
        as live in the state map, but its cleared meta region reads
        UNINITIALISED — were it to serve pushes it would feed zeroed
        pages to the rejoining node (the verify step only proves the
        fragments *tile*, not that their bytes were trustworthy).  The
        single-stream path is immune because it rides QPs established
        with the old incarnation, which a restart revokes; commands are
        issued fresh, so the source must attest its own status instead.
        """
        word = self.source.meta_region.read_word(STATUS_OFFSET)
        if word != STATUS_INITIALISED:
            raise UntrustedSourceError(
                f"{self.source.name} is not initialised and cannot "
                "serve recovery fragments"
            )

    def _command(self, on_arrival: Callable[[], None], verb: str) -> Event:
        """One small descriptor verb to the source, RC-ordered after
        every apply the coordinator has already posted toward it."""
        source = self.source
        incarnation = self._incarnation

        def apply_remote() -> None:
            if source.host.incarnation != incarnation:
                raise RdmaError(f"recovery source {source.name} restarted")
            on_arrival()

        # The command's ack serialises through the source's transmit
        # queue, behind any fragment writes already in flight there, so
        # it needs the same queue-aware budget as the pushes themselves —
        # the NIC's default verb timeout is sized for an idle link.
        return self.repmem.nic.transfer(
            source.host,
            PUSH_DESCRIPTOR_BYTES,
            ACK_WIRE_BYTES,
            apply_remote,
            timeout_us=self.budget_us,
            verb=verb,
        )

    def _guarded(self, answer: Event, command: Event, what: str) -> Event:
        """Bound the wait for *answer*: fail fast when the command verb
        errors, and give up after the deterministic push budget."""
        sim = self.repmem.sim
        guard = sim.schedule(
            self.budget_us,
            lambda: answer.try_fail(
                RdmaTimeout(
                    f"recovery {what} via {self.source.name} exceeded "
                    f"{self.budget_us}us"
                )
            ),
        )
        answer.add_callback(lambda _ev: sim.cancel(guard))

        def forward(event: Event) -> None:
            if event.failed:
                answer.try_fail(event.exception)

        command.add_callback(forward)
        return answer

    def _answer(self, event: Event, value=None, error=None) -> None:
        """Relay a pusher-side completion back to the coordinator."""
        repmem = self.repmem
        source = self.source
        if not source.host.alive:
            return  # the guard timeout reports the loss

        def arrive() -> None:
            if error is not None:
                event.try_fail(error)
            else:
                event.try_trigger(value)

        repmem.nic.fabric.deliver(
            source.host,
            repmem.host,
            ACK_WIRE_BYTES,
            arrive,
            latency=source.nic.propagation,
            stream="rdma",
        )
