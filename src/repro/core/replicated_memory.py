"""The coordinator-side replicated memory layer (§3).

This is the component a freshly elected coordinator instantiates.  It
gives applications a flat, logically addressed memory that is replicated
on ``2Fm + 1`` passive memory nodes:

* **Logged writes** (:meth:`ReplicatedMemory.write` /
  :meth:`multi_write`) — append one WAL entry per touched block to every
  active node with a single one-sided RDMA write each; the write commits
  (and the caller resumes) when ``Fm + 1`` *live* nodes have acked;
  background workers then apply the entries to the replicated memory
  block, in log order, pipelined per node.
* **Reads** (:meth:`read`) — served with one one-sided read (or, with
  erasure coding, ``Fm + 1`` chunk reads) under a local read lock; no
  quorum is needed because the coordinator holds the lease (§3.3.1).
* **Direct windows** (:meth:`direct_write` / :meth:`direct_read`) —
  unlogged raw access for applications that manage their own recovery,
  like the KV store's circular log (§3.3.2).
* **Erasure coding** (§5.1) — blocks in the encoded zone are split into
  ``Fm + 1`` data + ``Fm`` parity chunks at request time (the WAL itself
  stays unencoded, which is what preserves fault tolerance); partial
  writes to encoded blocks are promoted to full-block writes with a
  locked read-modify-write.

Lock discipline follows §3.3.2: write locks are released only after the
replicated-memory update has been *submitted* to every active node, so a
subsequent read — which is ordered after those writes on each queue
pair — can never observe stale data.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.addressing import AddressMap
from repro.core.config import SiftConfig
from repro.core.errors import GroupUnavailable, InvalidAccess, Deposed
from repro.core.locks import BlockLockTable, LockMode
from repro.core.membership import MEMBERSHIP_ADDR, Membership
from repro.ec.reed_solomon import CauchyRSCode
from repro.net.host import Host
from repro.obs import state as obs_state
from repro.rdma.errors import RdmaConnectionRevoked, RdmaError
from repro.rdma.nic import Rnic
from repro.rdma.qp import QueuePair
from repro.sim.engine import Event, all_of, quorum
from repro.storage.memory_node import (
    META_REGION,
    MemoryNode,
    REPMEM_REGION,
    STATUS_INITIALISED,
    STATUS_OFFSET,
)
from repro.storage.wal import HEADER_BYTES, WalCodec, WalEntry

__all__ = ["ReplicatedMemory", "NodeState"]


class NodeState:
    """Lifecycle of a memory node from this coordinator's perspective."""

    DEAD = "dead"
    RECOVERING = "recovering"
    LIVE = "live"


class _Pending:
    """A logged write making its way through commit and apply."""

    __slots__ = (
        "entry",
        "commit_event",
        "submit_event",
        "chunks",
        "committed",
        "submitted_to",
        "targets",
    )

    def __init__(
        self, entry: WalEntry, commit_event: Event, submit_event: Event, targets: Set[int]
    ):
        self.entry = entry
        self.commit_event = commit_event
        self.submit_event = submit_event
        self.chunks: Optional[List[bytes]] = None  # EC shards, encoded at request time
        self.committed = False
        self.submitted_to: Set[int] = set()
        # The nodes whose apply must be *submitted* before the write lock
        # can be released (§3.3.2).  Frozen at append time; node deaths
        # shrink it so a crash never strands the lock.
        self.targets = targets

    def note_submitted(self, n: int) -> None:
        self.submitted_to.add(n)
        if self.submitted_to >= self.targets:
            self.submit_event.try_trigger(None)

    def drop_target(self, n: int) -> None:
        self.targets.discard(n)
        if self.submitted_to >= self.targets:
            self.submit_event.try_trigger(None)


class ReplicatedMemory:
    """Replicated memory client living on the elected coordinator."""

    def __init__(
        self,
        host: Host,
        nic: Rnic,
        config: SiftConfig,
        memory_nodes: List[MemoryNode],
    ):
        config.validate()
        if len(memory_nodes) != config.memory_node_count:
            raise ValueError(
                f"expected {config.memory_node_count} memory nodes, "
                f"got {len(memory_nodes)}"
            )
        self.host = host
        self.nic = nic
        self.config = config
        self.memory_nodes = memory_nodes
        self.sim = host.sim
        self.costs = config.costs
        node_config = config.memory_node_config()
        self.wal_layout = node_config.wal_layout
        self.codec = WalCodec(self.wal_layout)
        self.amap = AddressMap(config, node_config.data_offset)
        self.locks = BlockLockTable(self.sim)
        self.rs = (
            CauchyRSCode(config.data_shards, config.parity_shards)
            if config.erasure_coding
            else None
        )

        self.qps: Dict[int, QueuePair] = {}
        self.states: Dict[int, str] = {
            n: NodeState.DEAD for n in range(len(memory_nodes))
        }
        self.membership = Membership(0, frozenset(range(len(memory_nodes))))

        self.term = 0  # set by the electing CPU node before activation
        self.next_index = 1
        self._log: Dict[int, _Pending] = {}
        self._applied: Dict[int, int] = {}
        self._next_apply: Dict[int, int] = {}
        self._inflight: Dict[int, int] = {}
        self._apply_kicks: Dict[int, Event] = {}
        self._wal_waiters: List[Event] = []
        self._membership_busy = False
        self._membership_waiters: List[Event] = []
        self._read_rr = 0
        # Remote-read popularity per recovery chunk, feeding the §6.5
        # popularity-ordered recovery option (config.recovery_order).
        self.read_popularity: Dict[int, int] = {}
        self.running = False
        self.deposed = False
        self.on_deposed: Optional[Callable[[], None]] = None
        self.on_node_dead: Optional[Callable[[int], None]] = None

        # Counters consumed by the benchmark harness.
        self.stats = {
            "writes_committed": 0,
            "entries_logged": 0,
            "remote_reads": 0,
            "ec_decodes": 0,
            "applies_posted": 0,
            "rmw_promotions": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def connect(self, members: Optional[Set[int]] = None):
        """Process: establish exclusive QPs to the replicated regions.

        Connecting to the exclusive region revokes the previous
        coordinator's access (at-most-one-connection, §3.2).  Raises
        :class:`GroupUnavailable` unless a quorum of *members* connects.
        """
        targets = sorted(members) if members is not None else list(self.states)
        attempts = []
        for n in targets:
            node = self.memory_nodes[n]
            qp = QueuePair(self.nic, node.listener, name=f"repmem-{n}")
            attempts.append(
                (n, qp, self.host.spawn(qp.connect([REPMEM_REGION, META_REGION])))
            )
        connected = 0
        for n, qp, proc in attempts:
            try:
                yield proc
            except Exception:
                continue  # unreachable node: proceed with the others
            self.qps[n] = qp
            connected += 1
        if connected < self.config.quorum:
            raise GroupUnavailable(
                f"connected to {connected} memory nodes, need {self.config.quorum}"
            )
        return connected

    def activate(self, live: Set[int]) -> None:
        """Mark *live* nodes active and start the background machinery.

        Called by recovery once the log has been replayed and the
        membership view is known.
        """
        self.running = True
        for n in live:
            if n not in self.qps:
                continue
            self.states[n] = NodeState.LIVE
            self._applied[n] = self.next_index - 1
            self._next_apply[n] = self.next_index
            self._inflight[n] = 0
            self.host.spawn(self._apply_worker(n), name=f"apply-{n}")

    def shutdown(self) -> None:
        """Stop background work and drop all connections (depose path)."""
        self.running = False
        for kick in list(self._apply_kicks.values()):
            kick.try_trigger(None)
        self._apply_kicks.clear()
        for waiter in self._wal_waiters:
            waiter.try_fail(Deposed("replicated memory shut down"))
        self._wal_waiters.clear()
        for qp in self.qps.values():
            qp.close()
        self.qps.clear()

    # ------------------------------------------------------------------
    # Public data path
    # ------------------------------------------------------------------

    def write(self, addr: int, data: bytes):
        """Process: logged write, returns once committed on a quorum."""
        yield from self._logged_write([(addr, bytes(data))])

    def multi_write(self, writes: List[Tuple[int, bytes]]):
        """Process: commit several writes atomically w.r.t. other writers.

        All blocks are locked up front, so no conflicting write can
        interleave (§3.3.2); the caller resumes when every piece has
        committed.
        """
        yield from self._logged_write([(a, bytes(d)) for a, d in writes])

    def read(self, addr: int, length: int):
        """Process: read under a block read lock; returns the bytes."""
        yield self.host.execute(self.costs.request_us)
        blocks = self.amap.blocks_of(addr, length)
        token = yield from self.locks.acquire(blocks, LockMode.READ)
        try:
            data = yield from self._read_unlocked(addr, length)
        finally:
            self.locks.release(token)
        return data

    def _fan_out_write(self, offset: int, data: bytes) -> List[Tuple[int, Event]]:
        """Post one WRITE of *data* at *offset* to every active node.

        With ``doorbell_batching`` the per-node writes are staged via
        :meth:`QueuePair.prepare_write` and flushed under a single
        doorbell — one NIC ``verb_overhead_us`` for the whole fan-out —
        otherwise each write posts individually.  Returns ``(node,
        completion event)`` pairs in node order either way; completion
        and error semantics per node are identical across both paths.
        """
        nodes = self._active_nodes()
        if self.config.doorbell_batching:
            posts = [
                self.qps[n].prepare_write(REPMEM_REGION, offset, data)
                for n in nodes
            ]
            self.nic.post_many(posts)
            return [(n, post.done) for n, post in zip(nodes, posts)]
        return [(n, self.qps[n].write(REPMEM_REGION, offset, data)) for n in nodes]

    def direct_write(self, addr: int, data: bytes):
        """Process: unlogged raw write committed on a quorum of live nodes.

        Only valid in the direct window (or anywhere without erasure
        coding); the caller owns conflict and recovery management.
        """
        data = bytes(data)
        self._check_usable()
        self.amap.check_range(addr, len(data))
        if self.config.erasure_coding and not self.amap.in_direct_window(addr, len(data)):
            raise InvalidAccess(
                "direct writes must stay inside the direct (unencoded) window"
            )
        yield self.host.execute(self.costs.rdma_post_us)
        offset = self.amap.raw_extent(addr)
        if obs_state.TRACER is not None:
            # Milestone: replication fan-out begins (closes "wal_write"
            # in critical-path analysis).
            obs_state.TRACER.instant(
                "repmem.fanout", self.sim.now, addr=addr, bytes=len(data)
            )
        acks = []
        for n, event in self._fan_out_write(offset, data):
            event.add_callback(lambda ev, n=n: self._note_verb(n, ev))
            if self.states[n] == NodeState.LIVE:
                acks.append(event)
        if len(acks) < self.config.quorum:
            raise GroupUnavailable("not enough live memory nodes for quorum")
        yield quorum(self.sim, acks, self.config.quorum)
        if obs_state.TRACER is not None:
            # Milestone: a quorum of replicas acked (closes "quorum").
            obs_state.TRACER.instant(
                "repmem.quorum", self.sim.now, acks=self.config.quorum
            )

    def direct_read(self, addr: int, length: int):
        """Process: unlogged raw read from one live node."""
        self._check_usable()
        self.amap.check_range(addr, length)
        if self.config.erasure_coding and not self.amap.in_direct_window(addr, length):
            raise InvalidAccess(
                "direct reads must stay inside the direct (unencoded) window"
            )
        data = yield from self._raw_read(addr, length)
        return data

    # ------------------------------------------------------------------
    # Logged write machinery
    # ------------------------------------------------------------------

    def _logged_write(self, writes: List[Tuple[int, bytes]]):
        self._check_usable()
        yield self.host.execute(self.costs.request_us)
        pieces: List[Tuple[int, bytes]] = []
        blocks: Set[int] = set()
        for addr, data in writes:
            for piece_addr, piece in self.amap.split_by_block(addr, data):
                pieces.append((piece_addr, piece))
                blocks.add(self.amap.block_index(piece_addr))
        yield self.host.execute(self.costs.lock_us * len(blocks))
        token = yield from self.locks.acquire(sorted(blocks), LockMode.WRITE)
        try:
            yield from self._wait_wal_space(len(pieces))
            prepared = []
            for piece_addr, piece in pieces:
                prepared.append((yield from self._prepare_piece(piece_addr, piece)))
            yield self.host.execute(self.costs.log_append_us * len(prepared))
            pendings = [self._append_entry(addr, data, chunks) for addr, data, chunks in prepared]
            yield all_of(self.sim, [p.commit_event for p in pendings])
            self.stats["writes_committed"] += 1
        except BaseException:
            self.locks.release(token)
            raise
        # Reply to the caller now; release locks when applies are submitted.
        submit = all_of(self.sim, [p.submit_event for p in pendings])
        self.host.spawn(self._release_after(submit, token), name="lock-release")

    def _release_after(self, submit: Event, token):
        try:
            yield submit
        except Exception:
            pass  # shutdown/depose: still release the local lock
        self.locks.release(token)

    def _prepare_piece(self, addr: int, data: bytes):
        """Handle EC promotion/encoding for one per-block piece.

        Returns ``(addr, data, chunks)`` where *chunks* is the shard list
        for encoded-zone pieces (None otherwise).
        """
        if not self.amap.is_encoded(addr, len(data)):
            return addr, data, None
        block = self.amap.block_index(addr)
        start, end = self.amap.block_bounds(block)
        if addr != start or len(data) != end - start:
            # Partial write to an encoded block: promote via locked RMW.
            self.stats["rmw_promotions"] += 1
            current = yield from self._read_encoded_block(block)
            patched = bytearray(current)
            patched[addr - start : addr - start + len(data)] = data
            addr, data = start, bytes(patched)
        kb = len(data) / 1024.0
        yield self.host.execute(self.costs.ec_encode_us_per_kb * kb)
        chunks = self.rs.encode(data)
        return addr, data, chunks

    def _append_entry(
        self, addr: int, data: bytes, chunks: Optional[List[bytes]]
    ) -> _Pending:
        index = self.next_index
        self.next_index += 1
        entry = WalEntry(index, addr, data, self.term)
        pending = _Pending(
            entry, Event(self.sim), Event(self.sim), self._active_set()
        )
        pending.chunks = chunks
        self._log[index] = pending
        self.stats["entries_logged"] += 1
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.counter("repmem.entries_logged").inc()
        if obs_state.TRACER is not None:
            span = obs_state.TRACER.span(
                "repmem.append", self.sim.now, index=index, addr=addr, bytes=len(data)
            )

            def _finish(event: Event, _span=span) -> None:
                _span.annotate(committed=event.ok)
                _span.finish(self.sim.now)

            pending.commit_event.add_callback(_finish)

        image = self.codec.encode(entry)[: HEADER_BYTES + len(data)]
        offset = self.wal_layout.slot_offset(index)
        live_acks = []
        for n, event in self._fan_out_write(offset, image):
            event.add_callback(lambda ev, n=n: self._note_verb(n, ev))
            if self.states[n] == NodeState.LIVE:
                live_acks.append(event)
        if len(live_acks) < self.config.quorum:
            pending.commit_event.try_fail(
                GroupUnavailable("not enough live memory nodes for quorum")
            )
            return pending
        commit = quorum(self.sim, live_acks, self.config.quorum)
        commit.add_callback(lambda ev: self._on_commit(pending, ev))
        return pending

    def _on_commit(self, pending: _Pending, event: Event) -> None:
        if event.failed:
            pending.commit_event.try_fail(
                event.exception or GroupUnavailable("commit quorum lost")
            )
            return
        pending.committed = True
        pending.commit_event.try_trigger(None)
        self._kick_appliers()

    # ------------------------------------------------------------------
    # Background apply pipeline
    # ------------------------------------------------------------------

    def _apply_worker(self, n: int):
        while self.running and self._node_active(n):
            progressed = False
            while (
                self._node_active(n)
                and self._inflight[n] < self.config.max_apply_inflight
            ):
                index = self._next_apply[n]
                pending = self._log.get(index)
                if pending is None or not pending.committed:
                    break
                yield self.host.execute(self.costs.apply_entry_us)
                if not self.running or not self._node_active(n):
                    return
                self._post_apply(n, index, pending)
                self._next_apply[n] = index + 1
                progressed = True
            if not self.running or not self._node_active(n):
                return
            if not progressed:
                kick = Event(self.sim)
                self._apply_kicks[n] = kick
                yield kick

    def _post_apply(self, n: int, index: int, pending: _Pending) -> None:
        entry = pending.entry
        if pending.chunks is not None:
            offset = self.amap.chunk_extent(self.amap.block_index(entry.address))
            payload = pending.chunks[n]
        else:
            offset = self.amap.raw_extent(entry.address)
            payload = entry.data
        self._inflight[n] += 1
        self.stats["applies_posted"] += 1
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.counter("repmem.applies_posted").inc()
        event = self.qps[n].write(REPMEM_REGION, offset, payload)
        event.add_callback(lambda ev: self._on_apply_done(n, index, pending, ev))
        pending.note_submitted(n)

    def _on_apply_done(self, n: int, index: int, pending: _Pending, event: Event) -> None:
        if n in self._inflight:
            self._inflight[n] = max(0, self._inflight[n] - 1)
        if event.failed:
            self._note_verb(n, event)
            return
        # RC ordering: completions arrive in post order, so this is contiguous.
        if self._applied.get(n, -1) < index:
            self._applied[n] = index
        self._advance_floor()
        kick = self._apply_kicks.pop(n, None)
        if kick is not None:
            kick.try_trigger(None)

    def _kick_appliers(self) -> None:
        for n, kick in list(self._apply_kicks.items()):
            del self._apply_kicks[n]
            kick.try_trigger(None)

    # ------------------------------------------------------------------
    # WAL window / flow control
    # ------------------------------------------------------------------

    def applied_floor(self) -> int:
        """Highest index applied on every active node (WAL reuse horizon)."""
        active = self._active_nodes()
        if not active:
            return self.next_index - 1
        return min(self._applied.get(n, 0) for n in active)

    def _wait_wal_space(self, needed: int):
        while self.next_index + needed - 1 - self.applied_floor() > self.config.wal_entries:
            self._check_usable()
            waiter = Event(self.sim)
            self._wal_waiters.append(waiter)
            yield waiter

    def _advance_floor(self) -> None:
        floor = self.applied_floor()
        # Garbage-collect pendings that can never be needed again.
        for index in [i for i in self._log if i <= floor]:
            del self._log[index]
        if self._wal_waiters:
            waiters, self._wal_waiters = self._wal_waiters, []
            for waiter in waiters:
                waiter.try_trigger(None)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def _read_unlocked(self, addr: int, length: int):
        if self.amap.is_encoded(addr, length):
            data = yield from self._read_encoded_range(addr, length)
        else:
            data = yield from self._raw_read(addr, length)
        return data

    def _note_read_popularity(self, addr: int) -> None:
        chunk = addr // self.config.recovery_chunk_bytes
        self.read_popularity[chunk] = self.read_popularity.get(chunk, 0) + 1

    def _raw_read(self, addr: int, length: int):
        self._note_read_popularity(addr)
        yield self.host.execute(self.costs.rdma_post_us)
        offset = self.amap.raw_extent(addr)
        last_error: Optional[BaseException] = None
        for n in self._live_nodes_rotated():
            event = self.qps[n].read(REPMEM_REGION, offset, length)
            try:
                data = yield event
            except RdmaError as exc:
                self._note_verb_failure(n, exc)
                last_error = exc
                continue
            self.stats["remote_reads"] += 1
            return data
        raise GroupUnavailable(f"no live memory node could serve a read: {last_error}")

    def _read_encoded_range(self, addr: int, length: int):
        first = self.amap.block_index(addr)
        last = self.amap.block_index(addr + length - 1) if length else first
        out = bytearray()
        for block in range(first, last + 1):
            start, end = self.amap.block_bounds(block)
            data = yield from self._read_encoded_block(block)
            lo = max(addr, start) - start
            hi = min(addr + length, end) - start
            out += data[lo:hi]
        return bytes(out)

    def _read_encoded_block(self, block: int):
        """Read Fm+1 chunks (data shards preferred, §5.1) and rebuild.

        A chunk read that fails (node died mid-read) retries with the
        refreshed live set, up to one attempt per memory node.
        """
        config = self.config
        offset = self.amap.chunk_extent(block)
        self._note_read_popularity(block * config.block_bytes)
        for _attempt in range(len(self.memory_nodes)):
            live = [
                n
                for n, s in self.states.items()
                if s == NodeState.LIVE and n in self.qps
            ]
            data_nodes = [n for n in live if n < config.data_shards]
            parity_nodes = [n for n in live if n >= config.data_shards]
            chosen = (data_nodes + parity_nodes)[: config.data_shards]
            if len(chosen) < config.data_shards:
                raise GroupUnavailable(
                    f"need {config.data_shards} chunks, only {len(chosen)} live nodes"
                )
            yield self.host.execute(self.costs.rdma_post_us * len(chosen))
            events = [
                self.qps[n].read(REPMEM_REGION, offset, config.chunk_bytes)
                for n in chosen
            ]
            for n, event in zip(chosen, events):
                event.add_callback(lambda ev, n=n: self._note_verb(n, ev))
            try:
                results = yield all_of(self.sim, events)
            except RdmaError:
                continue  # _note_verb already demoted the culprit
            break
        else:
            raise GroupUnavailable("could not assemble a decodable chunk set")
        self.stats["remote_reads"] += len(chosen)
        start, end = self.amap.block_bounds(block)
        block_len = end - start
        if chosen == list(range(config.data_shards)):
            # All data shards: concatenation, no field arithmetic.
            return b"".join(results)[:block_len]
        kb = block_len / 1024.0
        yield self.host.execute(self.costs.ec_decode_us_per_kb * kb)
        self.stats["ec_decodes"] += 1
        chunks = {n: bytes(r) for n, r in zip(chosen, results)}
        return self.rs.decode(chunks, block_len)

    # ------------------------------------------------------------------
    # Node state management
    # ------------------------------------------------------------------

    def _active_nodes(self) -> List[int]:
        return [
            n
            for n, s in self.states.items()
            if s in (NodeState.LIVE, NodeState.RECOVERING) and n in self.qps
        ]

    def _active_set(self) -> Set[int]:
        return set(self._active_nodes())

    def _node_active(self, n: int) -> bool:
        return (
            self.running
            and n in self.qps
            and self.states.get(n) in (NodeState.LIVE, NodeState.RECOVERING)
        )

    def _live_nodes_rotated(self) -> List[int]:
        live = sorted(
            n for n, s in self.states.items() if s == NodeState.LIVE and n in self.qps
        )
        if not live:
            return []
        self._read_rr = (self._read_rr + 1) % len(live)
        return live[self._read_rr :] + live[: self._read_rr]

    def _note_verb(self, n: int, event: Event) -> None:
        if event.failed:
            self._note_verb_failure(n, event.exception)

    def _note_verb_failure(self, n: int, exc: Optional[BaseException]) -> None:
        if isinstance(exc, RdmaConnectionRevoked):
            self._on_revoked()
            return
        self.mark_node_dead(n)

    def _on_revoked(self) -> None:
        """A newer coordinator owns the region: we have been deposed."""
        if self.deposed:
            return
        self.deposed = True
        if self.on_deposed is not None:
            self.on_deposed()

    def mark_node_dead(self, n: int) -> None:
        """Drop a memory node from the active set (§3.4.2 detection)."""
        if self.states.get(n) == NodeState.DEAD:
            return
        self.states[n] = NodeState.DEAD
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.counter("repmem.nodes_marked_dead").inc()
        if obs_state.TRACER is not None:
            obs_state.TRACER.instant("repmem.node_dead", self.sim.now, node=n)
        qp = self.qps.pop(n, None)
        if qp is not None:
            qp.close()
        for pending in self._log.values():
            pending.drop_target(n)
        self._inflight.pop(n, None)
        kick = self._apply_kicks.pop(n, None)
        if kick is not None:
            kick.try_trigger(None)
        self._advance_floor()
        self._kick_appliers()
        if self.running and not self.deposed and n in self.membership.members:
            # Commit the removal immediately so a successor coordinator
            # never trusts this node's (possibly wiped) state.  See the
            # discussion in repro.core.recovery.
            self.host.spawn(self._remove_member(n), name=f"remove-member-{n}")
        if self.on_node_dead is not None:
            self.on_node_dead(n)

    def _remove_member(self, n: int):
        try:
            yield from self.commit_membership(
                lambda m: m.without_member(n) if n in m.members else m
            )
        except Exception:
            pass  # deposed or unavailable; the next coordinator re-derives

    def _check_usable(self) -> None:
        if self.deposed:
            raise Deposed("this coordinator has been replaced")
        live = [n for n, s in self.states.items() if s == NodeState.LIVE]
        if self.running and len(live) < self.config.quorum:
            raise GroupUnavailable(
                f"{len(live)} live memory nodes, need {self.config.quorum}"
            )

    # ------------------------------------------------------------------
    # Hooks used by recovery (see repro.core.recovery)
    # ------------------------------------------------------------------

    def begin_node_recovery(self, n: int, qp: QueuePair) -> int:
        """Register a reconnected node as RECOVERING; returns its start index.

        From this point the node receives WAL appends and applies (but
        does not count toward quorums) while the incremental region copy
        runs; see §3.4.2 and the ordering argument in the module docs.
        """
        self.qps[n] = qp
        self.states[n] = NodeState.RECOVERING
        if obs_state.TRACER is not None:
            obs_state.TRACER.instant("repmem.recovery_begin", self.sim.now, node=n)
        start = self.next_index
        self._applied[n] = start - 1
        self._next_apply[n] = start
        self._inflight[n] = 0
        self.host.spawn(self._apply_worker(n), name=f"apply-{n}")
        return start

    def finish_node_recovery(self, n: int) -> None:
        """Promote a fully copied node to LIVE (membership commit follows)."""
        if self.states.get(n) == NodeState.RECOVERING:
            self.states[n] = NodeState.LIVE
            if obs_state.REGISTRY is not None:
                obs_state.REGISTRY.counter("repmem.nodes_recovered").inc()
            if obs_state.TRACER is not None:
                obs_state.TRACER.instant(
                    "repmem.recovery_finish", self.sim.now, node=n
                )

    def commit_membership(self, transform: Callable[[Membership], Membership]):
        """Process: atomically transform and log the membership view.

        Membership changes are serialized through an internal mutex so a
        concurrent node-removal and node-join cannot lose each other's
        update; each change is a Raft-style configuration entry committed
        through the ordinary logged-write path.  Returns the committed
        view.
        """
        while self._membership_busy:
            waiter = Event(self.sim)
            self._membership_waiters.append(waiter)
            yield waiter
        self._membership_busy = True
        try:
            updated = transform(self.membership)
            if updated.members != self.membership.members or updated.epoch != self.membership.epoch:
                yield from self.write(MEMBERSHIP_ADDR, updated.pack())
                self.membership = updated
        finally:
            self._membership_busy = False
            waiters, self._membership_waiters = self._membership_waiters, []
            for waiter in waiters:
                waiter.try_trigger(None)
        return self.membership

    def write_status(self, n: int, status: int = STATUS_INITIALISED):
        """Process: stamp node *n*'s status word (bootstrap / recovery done).

        A volatile node that crashes loses this word, which is how a later
        coordinator knows its zeroed region must not be trusted.
        """
        qp = self.qps[n]
        yield qp.write(
            META_REGION, STATUS_OFFSET, status.to_bytes(8, "little")
        )

    def read_status(self, n: int):
        """Process: fetch node *n*'s status word."""
        qp = self.qps[n]
        raw = yield qp.read(META_REGION, STATUS_OFFSET, 8)
        return int.from_bytes(raw, "little")
