"""Protocol-level errors surfaced to Sift applications."""

__all__ = [
    "SiftError",
    "GroupUnavailable",
    "NotCoordinator",
    "Deposed",
    "InvalidAccess",
]


class SiftError(Exception):
    """Base class for Sift protocol errors."""


class GroupUnavailable(SiftError):
    """Fewer than Fm + 1 live memory nodes: progress is impossible (§3.4)."""


class NotCoordinator(SiftError):
    """The operation requires coordinatorship this CPU node does not hold."""


class Deposed(SiftError):
    """A newer coordinator took over mid-operation; retry against it."""


class InvalidAccess(SiftError):
    """An address range outside the replicated memory, or a misuse of zones."""
