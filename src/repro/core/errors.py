"""Protocol-level errors surfaced to Sift applications.

All derive from :class:`repro.errors.ReproError`; ``SiftError`` remains
the subsystem base so existing ``except SiftError`` clauses still catch
everything raised here.
"""

from repro.errors import ReproError

__all__ = [
    "SiftError",
    "GroupUnavailable",
    "NotCoordinator",
    "Deposed",
    "InvalidAccess",
]


class SiftError(ReproError):
    """Base class for Sift protocol errors."""


class GroupUnavailable(SiftError):
    """Fewer than Fm + 1 live memory nodes: progress is impossible (§3.4)."""

    retryable = True  # nodes restart / the backup pool promotes


class NotCoordinator(SiftError):
    """The operation requires coordinatorship this CPU node does not hold."""

    retryable = True  # reissue against the current coordinator


class Deposed(SiftError):
    """A newer coordinator took over mid-operation; retry against it."""

    retryable = True


class InvalidAccess(SiftError):
    """An address range outside the replicated memory, or a misuse of zones."""
