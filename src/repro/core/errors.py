"""Protocol-level errors surfaced to Sift applications.

All derive from :class:`repro.errors.ReproError`; ``SiftError`` remains
the subsystem base so existing ``except SiftError`` clauses still catch
everything raised here.
"""

from repro.errors import ReproError

__all__ = [
    "SiftError",
    "GroupUnavailable",
    "NotCoordinator",
    "Deposed",
    "InvalidAccess",
    "RecoveryIntegrityError",
    "UntrustedSourceError",
]


class SiftError(ReproError):
    """Base class for Sift protocol errors."""


class GroupUnavailable(SiftError):
    """Fewer than Fm + 1 live memory nodes: progress is impossible (§3.4)."""

    retryable = True  # nodes restart / the backup pool promotes


class NotCoordinator(SiftError):
    """The operation requires coordinatorship this CPU node does not hold."""

    retryable = True  # reissue against the current coordinator


class Deposed(SiftError):
    """A newer coordinator took over mid-operation; retry against it."""

    retryable = True


class InvalidAccess(SiftError):
    """An address range outside the replicated memory, or a misuse of zones."""


class RecoveryIntegrityError(SiftError):
    """Memory-node recovery's verify step found a hole.

    Raised before the status word would be stamped when the union of
    copied fragments fails to tile the address space exactly (gap,
    overlap, or a partition shorter than its declared range).  The
    rejoining node stays untrusted and a later poll retries the copy.
    """

    retryable = True  # the copy restarts from scratch on the next poll


class UntrustedSourceError(SiftError):
    """A recovery source refused to serve fragments: it is not initialised.

    A memory node that restarted unnoticed (no apply traffic has failed
    toward it yet) still shows as live in the coordinator's state map,
    but its region is cleared and its status word reads UNINITIALISED.
    Commanded to push recovery fragments, such a node must refuse —
    otherwise it would feed zeroed pages to the rejoining node.  The
    coordinator reacts by marking the refusing source dead so the
    poller recovers *it* first, then retries the original node.
    """

    retryable = True  # the refusing source gets recovered, then we retry
