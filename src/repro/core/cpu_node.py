"""CPU nodes: follower / candidate / coordinator (§3.1–§3.2).

CPU nodes hold only soft state and never talk to each other; everything
flows through one-sided reads and CAS writes against the memory nodes'
administrative words:

* **Followers** read the admin words every ``heartbeat_read_interval``
  and compare against the previous read.  When a quorum of nodes shows
  no progress for ``missed_heartbeats_allowed`` consecutive rounds, the
  follower becomes a candidate.
* **Candidates** bump their term and attempt an RDMA CAS of
  ``(term, node_id, timestamp)`` onto every admin word, using the values
  remembered from heartbeat reads as the expected operand — "this
  process closely resembles the locking of spinlocks" (§3.2).  A
  majority of successful CASes wins; observing another candidate's win
  sends the loser back to following; an inconclusive round triggers a
  randomized back-off with an incremented term.
* **The coordinator** renews its lease with a CAS heartbeat every
  ``heartbeat_write_interval`` and steps down when the CAS fails on a
  majority (a successor has overwritten the words, §3.2).  On winning,
  it connects to the exclusive replicated regions (revoking its
  predecessor), runs log recovery, starts the background apply and
  memory-node-recovery machinery, and hands the replicated memory to the
  application layer.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict, List, Optional

from repro.core.config import SiftConfig
from repro.core.membership import Membership
from repro.core.recovery import MemoryNodeRecoveryManager, recover_log
from repro.core.replicated_memory import ReplicatedMemory
from repro.net.fabric import Fabric
from repro.net.host import Host
from repro.rdma.errors import RdmaError
from repro.rdma.nic import Rnic
from repro.rdma.qp import QpState, QueuePair
from repro.sim.engine import Event, ProcessKilled
from repro.storage.admin import TS_MAX, AdminWord
from repro.storage.memory_node import ADMIN_REGION, ADMIN_WORD_OFFSET, MemoryNode

__all__ = ["CpuNode", "Role"]


class Role(Enum):
    """Paper Figure 2's three states."""

    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    COORDINATOR = "coordinator"


class CpuNode:
    """One CPU node of a Sift group.

    *app_factory*, if given, is called as ``app_factory(cpu_node, repmem)``
    when this node wins an election and must return an object with
    ``start()`` (a process generator run before serving) and ``stop()``
    (synchronous teardown); the KV server implements this contract.
    """

    def __init__(
        self,
        fabric: Fabric,
        name: str,
        node_id: int,
        config: SiftConfig,
        memory_nodes: List[MemoryNode],
        app_factory: Optional[Callable] = None,
        cores: Optional[int] = None,
        host: Optional[Host] = None,
    ):
        if node_id < 1:
            raise ValueError("node_id must be >= 1 (0 means 'no coordinator')")
        config.validate()
        self.fabric = fabric
        self.name = name
        self.node_id = node_id
        self.config = config
        self.memory_nodes = memory_nodes
        self.app_factory = app_factory
        # A shared backup node re-uses its already-provisioned host (§5.2).
        self.host: Host = host or fabric.add_host(
            name, cores=cores or config.cpu_node_cores
        )
        self.nic = Rnic(self.host, fabric, timeout_us=config.verb_timeout_us)
        self.sim = self.host.sim
        self._rng = fabric.rng.stream(f"election:{name}")

        self.role = Role.FOLLOWER
        self.term = 0
        self.timestamp = 0
        self.repmem: Optional[ReplicatedMemory] = None
        self.recovery_manager: Optional[MemoryNodeRecoveryManager] = None
        self.app = None
        self._admin_qps: Dict[int, QueuePair] = {}
        self._last_words: Dict[int, AdminWord] = {}
        self._deposed: Optional[Event] = None
        self._main_proc = None
        self.serving = False
        self.stats = {"elections_won": 0, "elections_lost": 0, "stepdowns": 0}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin participating (spawns the state-machine process)."""
        self._main_proc = self.host.spawn(self._main(), name="cpu-node")

    def crash(self) -> None:
        """Fail-stop this CPU node."""
        self.host.crash()
        self.role = Role.FOLLOWER
        self.repmem = None
        self.recovery_manager = None
        self.app = None
        self._admin_qps.clear()

    def restart(self) -> None:
        """Restart with empty soft state (§3.1: CPU nodes are stateless)."""
        self.host.restart()
        self.role = Role.FOLLOWER
        self.term = 0
        self.timestamp = 0
        self._last_words.clear()
        self._admin_qps.clear()
        self.start()

    @property
    def is_coordinator(self) -> bool:
        """Whether this node currently leads the group."""
        return self.role is Role.COORDINATOR

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _main(self):
        try:
            while True:
                yield from self._follow()
                self.role = Role.CANDIDATE
                won = yield from self._campaign()
                if won:
                    self.role = Role.COORDINATOR
                    self.stats["elections_won"] += 1
                    yield from self._lead()
                    self.stats["stepdowns"] += 1
                else:
                    self.stats["elections_lost"] += 1
                self.role = Role.FOLLOWER
        except ProcessKilled:
            raise

    # ------------------------------------------------------------------
    # Follower: heartbeat reads
    # ------------------------------------------------------------------

    def _read_admin_words(self):
        """Process: read all reachable admin words; updates _last_words.

        Returns the set of node indices whose word changed since the last
        read (progress evidence).
        """
        yield from self._ensure_admin_qps()
        events = {}
        for n, qp in self._admin_qps.items():
            events[n] = qp.read_word(ADMIN_REGION, ADMIN_WORD_OFFSET)
        changed = set()
        for n, event in events.items():
            try:
                raw = yield event
            except RdmaError:
                self._drop_admin_qp(n)
                continue
            word = AdminWord.unpack(raw)
            if self._last_words.get(n) != word:
                changed.add(n)
            self._last_words[n] = word
        return changed

    def _follow(self):
        """Run heartbeat reads until the election timeout fires (§3.2)."""
        stale_rounds = 0
        # Randomize the first read so co-started followers don't stampede.
        yield self.sim.timeout(
            self._rng.uniform(0.5, 1.5) * self.config.heartbeat_read_interval_us
        )
        while stale_rounds <= self.config.missed_heartbeats_allowed:
            changed = yield from self._read_admin_words()
            if len(changed) >= self.config.quorum:
                stale_rounds = 0
            else:
                stale_rounds += 1
            if stale_rounds > self.config.missed_heartbeats_allowed:
                return
            yield self.sim.timeout(self.config.heartbeat_read_interval_us)

    # ------------------------------------------------------------------
    # Candidate: CAS election
    # ------------------------------------------------------------------

    def _campaign(self):
        """Process: run election rounds; True if we won, False if another
        candidate's victory (or a live coordinator) was observed."""
        while True:
            observed_terms = [w.term_id for w in self._last_words.values()]
            self.term = max([self.term] + observed_terms) + 1
            self.timestamp = (self.timestamp + 1) & TS_MAX
            claim = AdminWord(self.term, self.node_id, self.timestamp)
            yield from self._ensure_admin_qps()
            events = {}
            for n, qp in self._admin_qps.items():
                expected = self._last_words.get(n, AdminWord(0, 0, 0))
                events[n] = qp.cas(
                    ADMIN_REGION, ADMIN_WORD_OFFSET, expected.pack(), claim.pack()
                )
            successes = 0
            lost_to_other = False
            for n, event in events.items():
                expected = self._last_words.get(n, AdminWord(0, 0, 0))
                try:
                    old_raw = yield event
                except RdmaError:
                    self._drop_admin_qp(n)
                    continue
                old = AdminWord.unpack(old_raw)
                if old == expected:
                    successes += 1
                    self._last_words[n] = claim
                else:
                    self._last_words[n] = old
                    if old.term_id >= self.term:
                        lost_to_other = True
            if successes >= self.config.quorum:
                return True
            if lost_to_other:
                return False  # fall back to follower; restart election timer
            # Inconclusive round (e.g. split CASes): random back-off, retry
            # with refreshed expected values and an incremented term (§3.2).
            backoff = self._rng.uniform(
                self.config.election_backoff_min_us,
                self.config.election_backoff_max_us,
            )
            yield self.sim.timeout(backoff)

    # ------------------------------------------------------------------
    # Coordinator: serve until deposed
    # ------------------------------------------------------------------

    def _lead(self):
        deposed = Event(self.sim)
        self._deposed = deposed
        repmem = ReplicatedMemory(self.host, self.nic, self.config, self.memory_nodes)
        repmem.term = self.term
        repmem.on_deposed = lambda: deposed.try_trigger(None)
        manager = MemoryNodeRecoveryManager(repmem)
        self.repmem = repmem
        self.recovery_manager = manager
        # The lease begins the moment the election is won: heartbeats must
        # renew *during* log recovery (which can far exceed the election
        # timeout on large stores) or the followers would depose every
        # recovering coordinator and the group would thrash forever.
        self.host.spawn(self._heartbeat_writer(deposed), name="heartbeat")
        try:
            try:
                yield from repmem.connect()
                result = yield from recover_log(repmem)
                repmem.activate(result.live)
                # Drop connections to nodes we will not serve from; the
                # recovery manager re-establishes them with a fresh copy.
                for n in list(repmem.qps):
                    if n not in result.live:
                        repmem.qps.pop(n).close()
                        repmem.states[n] = "dead"
                # Re-log the membership so the next recovery finds it in
                # the WAL window even if older entries have wrapped.
                yield from repmem.commit_membership(
                    lambda m: Membership(m.epoch + 1, m.members)
                )
            except Exception:
                return  # lost the race (revoked / no quorum); step down
            manager.start()
            if self.app_factory is not None:
                self.app = self.app_factory(self, repmem)
                yield from self.app.start()
            self.serving = True
            yield deposed
        finally:
            self.serving = False
            deposed.try_trigger(None)  # stops the heartbeat writer
            manager.stop()
            if self.app is not None:
                self.app.stop()
                self.app = None
            repmem.shutdown()
            self.repmem = None
            self.recovery_manager = None
            self._deposed = None

    def _heartbeat_writer(self, deposed: Event):
        """Renew the lease by CAS on every admin word (§3.2)."""
        config = self.config
        try:
            while not deposed.settled:
                self.timestamp = (self.timestamp + 1) & TS_MAX
                claim = AdminWord(self.term, self.node_id, self.timestamp)
                yield from self._ensure_admin_qps()
                events = {}
                for n, qp in self._admin_qps.items():
                    expected = self._last_words.get(n, AdminWord(0, 0, 0))
                    events[n] = qp.cas(
                        ADMIN_REGION, ADMIN_WORD_OFFSET, expected.pack(), claim.pack()
                    )
                renewed = 0
                overthrown = 0
                for n, event in events.items():
                    expected = self._last_words.get(n, AdminWord(0, 0, 0))
                    try:
                        old_raw = yield event
                    except RdmaError:
                        self._drop_admin_qp(n)
                        continue
                    old = AdminWord.unpack(old_raw)
                    if old == expected:
                        renewed += 1
                        self._last_words[n] = claim
                    else:
                        self._last_words[n] = old
                        if old.term_id > self.term:
                            overthrown += 1
                        # A lower term here is a lagging node we have not
                        # claimed yet; the refreshed expected value will
                        # claim it next round.
                if overthrown >= self.config.quorum or renewed < self.config.quorum:
                    deposed.try_trigger(None)
                    return
                yield self.sim.timeout(config.heartbeat_write_interval_us)
        except ProcessKilled:
            raise

    # ------------------------------------------------------------------
    # Admin connections
    # ------------------------------------------------------------------

    def _ensure_admin_qps(self):
        """Process: (re)connect admin QPs to every reachable memory node."""
        attempts = []
        for n, node in enumerate(self.memory_nodes):
            qp = self._admin_qps.get(n)
            if qp is not None and qp.state is QpState.CONNECTED:
                continue
            if not node.alive:
                continue
            if not self.fabric.reachable(self.host.name, node.name):
                continue
            fresh = QueuePair(self.nic, node.listener, name=f"admin-{self.name}-{n}")
            attempts.append((n, fresh, self.host.spawn(fresh.connect([ADMIN_REGION]))))
        for n, qp, proc in attempts:
            try:
                yield proc
            except Exception:
                continue
            self._admin_qps[n] = qp

    def _drop_admin_qp(self, n: int) -> None:
        qp = self._admin_qps.pop(n, None)
        if qp is not None:
            qp.close()

    def __repr__(self) -> str:
        return f"<CpuNode {self.name} {self.role.value} term={self.term}>"
