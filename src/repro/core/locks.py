"""Coordinator-local block locks.

All requests flow through the single coordinator, so consistency within
the group needs only *local* reader/writer locks per block of replicated
memory (§3.3): reads take a read lock, logged writes take write locks,
and memory-node recovery read-locks regions incrementally so that "no
updates can be applied to it, but reads go through" (§3.4.2).

Locks are granted strictly FIFO per block to prevent writer starvation
under the read-heavy workloads of the evaluation.
"""

from __future__ import annotations

from collections import deque
from enum import Enum
from typing import Deque, Dict, List, NamedTuple, Tuple

from repro.sim.engine import Event, Simulator

__all__ = ["BlockLockTable", "LockMode", "LockToken"]


class LockMode(Enum):
    """Reader/writer lock modes."""

    READ = "read"
    WRITE = "write"


class LockToken(NamedTuple):
    """A granted lock over a block range; pass back to release()."""

    blocks: Tuple[int, ...]
    mode: LockMode


class _Waiter(NamedTuple):
    mode: LockMode
    event: Event


class _BlockState:
    __slots__ = ("readers", "writer", "queue")

    def __init__(self) -> None:
        self.readers = 0
        self.writer = False
        self.queue: Deque[_Waiter] = deque()

    @property
    def idle(self) -> bool:
        return not self.readers and not self.writer and not self.queue

    def can_grant(self, mode: LockMode) -> bool:
        if mode is LockMode.READ:
            return not self.writer
        return not self.writer and self.readers == 0


class BlockLockTable:
    """Per-block reader/writer locks with FIFO fairness.

    Block indices are plain integers; the replicated-memory layer maps
    byte ranges onto them.  Multi-block acquisitions take blocks in
    ascending order, which (with every caller doing the same) rules out
    deadlock.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._blocks: Dict[int, _BlockState] = {}

    # -- acquisition ----------------------------------------------------------

    def acquire(self, blocks: List[int], mode: LockMode):
        """Process: acquire *mode* locks on all *blocks*; returns a token."""
        ordered = tuple(sorted(set(blocks)))
        for block in ordered:
            state = self._blocks.get(block)
            if state is None:
                state = _BlockState()
                self._blocks[block] = state
            if state.can_grant(mode) and not state.queue:
                self._grant(state, mode)
            else:
                event = Event(self.sim)
                state.queue.append(_Waiter(mode, event))
                yield event  # granted by _pump when our turn arrives
        return LockToken(ordered, mode)

    def try_acquire(self, blocks: List[int], mode: LockMode):
        """Non-blocking variant: token or None if any block would wait."""
        ordered = tuple(sorted(set(blocks)))
        states = []
        for block in ordered:
            state = self._blocks.get(block)
            if state is None:
                state = _BlockState()
                self._blocks[block] = state
            if not state.can_grant(mode) or state.queue:
                return None
            states.append(state)
        for state in states:
            self._grant(state, mode)
        return LockToken(ordered, mode)

    def release(self, token: LockToken) -> None:
        """Release a previously granted token."""
        for block in token.blocks:
            state = self._blocks.get(block)
            if state is None:
                raise RuntimeError(f"release of unheld lock on block {block}")
            if token.mode is LockMode.READ:
                if state.readers <= 0:
                    raise RuntimeError(f"release of unheld read lock on {block}")
                state.readers -= 1
            else:
                if not state.writer:
                    raise RuntimeError(f"release of unheld write lock on {block}")
                state.writer = False
            self._pump(state)
            if state.idle:
                del self._blocks[block]

    # -- mechanics ---------------------------------------------------------------

    def _grant(self, state: _BlockState, mode: LockMode) -> None:
        if mode is LockMode.READ:
            state.readers += 1
        else:
            state.writer = True

    def _pump(self, state: _BlockState) -> None:
        while state.queue and state.can_grant(state.queue[0].mode):
            waiter = state.queue.popleft()
            self._grant(state, waiter.mode)
            waiter.event.trigger(None)
            if waiter.mode is LockMode.WRITE:
                break  # a writer excludes everyone behind it

    # -- introspection -----------------------------------------------------------

    def held(self, block: int) -> bool:
        """Whether any lock is currently held on *block*."""
        state = self._blocks.get(block)
        return state is not None and (state.readers > 0 or state.writer)

    def waiters(self, block: int) -> int:
        """Queue length on *block* (contention metric)."""
        state = self._blocks.get(block)
        return len(state.queue) if state else 0
