"""Coordinator-side value cache.

An LRU over key -> (value, block address) sized to a fraction of the key
space (50% in the paper's setup).  Entries with pending (logged but not
yet applied) updates are pinned: "our cache tracks whether entries have
been applied yet and does not evict entries which have pending updates"
(§4.2) — evicting one would let a subsequent get read a stale block from
replicated memory.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

__all__ = ["ValueCache"]


class _CacheEntry:
    __slots__ = ("value", "block_addr", "pending", "tombstone")

    def __init__(self, value: bytes, block_addr: Optional[int]):
        self.value = value
        self.block_addr = block_addr
        self.pending = 0
        self.tombstone = False


class ValueCache:
    """Pin-aware LRU cache."""

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"negative cache capacity: {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[bytes, _CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    # -- read path -----------------------------------------------------------

    def get(self, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """Look up *key*: returns (hit, value).

        A hit with value ``None`` means the cache knows the key is
        deleted (pending tombstone) — the caller must not fall through to
        a remote read that could resurrect it.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return False, None
        self._entries.move_to_end(key)
        self.hits += 1
        if entry.tombstone:
            return True, None
        return True, entry.value

    def block_addr_of(self, key: bytes) -> Optional[int]:
        """The data block address of a cached key, if known."""
        entry = self._entries.get(key)
        return entry.block_addr if entry is not None else None

    # -- write path -----------------------------------------------------------

    def put(self, key: bytes, value: bytes, pending: bool = False) -> None:
        """Insert/overwrite; optionally pin as having a pending update."""
        entry = self._entries.get(key)
        if entry is None:
            entry = _CacheEntry(value, None)
            self._entries[key] = entry
        else:
            entry.value = value
            entry.tombstone = False
            self._entries.move_to_end(key)
        if pending:
            entry.pending += 1
        self._evict()

    def mark_deleted(self, key: bytes, pending: bool = True) -> None:
        """Record a pending delete so gets do not read the stale block."""
        entry = self._entries.get(key)
        if entry is None:
            entry = _CacheEntry(b"", None)
            self._entries[key] = entry
        entry.tombstone = True
        entry.value = b""
        if pending:
            entry.pending += 1
        self._entries.move_to_end(key)
        self._evict()

    def fill(self, key: bytes, value: bytes, block_addr: Optional[int]) -> None:
        """Populate from a remote read (never pins, never overwrites newer).

        If the key already has a pending update, the remote read raced an
        in-flight put and its value is stale — keep the cached one.
        """
        entry = self._entries.get(key)
        if entry is not None:
            if entry.pending == 0 and not entry.tombstone:
                entry.value = value
            if block_addr is not None:
                # The block address is protocol truth regardless of which
                # value version the cache is holding.
                entry.block_addr = block_addr
            self._entries.move_to_end(key)
            return
        entry = _CacheEntry(value, block_addr)
        self._entries[key] = entry
        self._evict()

    def applied(self, key: bytes, block_addr: Optional[int]) -> None:
        """Unpin one pending update; record the key's block address."""
        entry = self._entries.get(key)
        if entry is None:
            return
        entry.pending = max(0, entry.pending - 1)
        if block_addr is not None:
            entry.block_addr = block_addr
        if entry.tombstone and entry.pending == 0:
            del self._entries[key]

    # -- eviction ---------------------------------------------------------------

    def _evict(self) -> None:
        # Evict the first unpinned keys in LRU order.  Restart the scan
        # from the head after each delete instead of snapshotting every
        # key: with no pinned entries at the head (the common case) each
        # eviction is O(1) rather than O(len(cache)).
        entries = self._entries
        capacity = self.capacity
        while len(entries) > capacity:
            for key in entries:
                if entries[key].pending == 0:
                    del entries[key]
                    break
            else:
                break  # everything left is pinned

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
