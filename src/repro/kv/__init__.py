"""The recoverable key-value store built on replicated memory (§4).

Four on-memory structures, all living inside the Sift replicated memory
at predefined logical addresses (§4.1):

* an array of fixed-size **data blocks** (16 B header + 32 B key +
  992 B value),
* an **index table** of bucket-head pointers (hashing with chaining,
  12.5% maximum load factor),
* a **bitmap** tracking free data blocks,
* a circular **write-ahead log**, separate from the replicated-memory
  WAL, living in the direct-write window so a put commits in a single
  RDMA round trip (§4.2).

The index table and bitmap are cached at the coordinator; a value cache
holds up to 50% of the pairs and never evicts entries with pending
updates (§4.2).  Recovery (§4.3) reloads the index table and bitmap,
then replays the KV log above the applied watermark.
"""

from repro.kv.client import KvClient
from repro.kv.config import KvConfig
from repro.kv.layout import KvLayout
from repro.kv.store import KvServer, kv_app_factory

__all__ = ["KvClient", "KvConfig", "KvLayout", "KvServer", "kv_app_factory"]
