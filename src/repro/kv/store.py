"""The KV server: request handlers, background apply, recovery (§4).

The server is the coordinator's *application*: it is created by the
``app_factory`` hook when a CPU node wins an election, recovers its soft
structures from replicated memory, registers RPC handlers, and serves
until the node is deposed or crashes.

Data path (§4.2):

* **put** — assign a sequence number, append the record to the KV WAL
  with one direct (unlogged) RDMA write, update the cache (pinned), and
  reply; a background applier later walks the bucket chain and writes
  the data block / index / bitmap.
* **get** — serve from the cache when possible; on a miss, walk the
  bucket chain with one-sided reads and fill the cache.
* **delete** — like put with a tombstone record; the applier unlinks the
  block and frees its bitmap bit.

Structure writes go through :meth:`ReplicatedMemory.direct_write` in
plain-replication mode (each block write is atomic per node, and the KV
WAL replays anything torn across nodes).  With erasure coding they use
the *logged* path instead: a block striped across nodes can be half-new
chunks and half-old after a crash, and only the non-encoded
replicated-memory WAL can repair that (§5.1's stated modification).

Recovery (§4.3) loads the index table and bitmap, merges the KV WAL from
all live memory nodes (per-sequence max-term, truncated at the newest
term's last record — the same divergence rules as the consensus log),
replays records above the persisted watermark, and only then serves.
The cache fills during replay, so the store restarts warm (§6.5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.cpu_node import CpuNode
from repro.core.errors import Deposed, GroupUnavailable
from repro.core.locks import BlockLockTable, LockMode
from repro.core.replicated_memory import NodeState, ReplicatedMemory
from repro.storage.memory_node import REPMEM_REGION
from repro.kv.cache import ValueCache
from repro.kv.config import KvConfig
from repro.kv.layout import (
    OP_DELETE,
    OP_PUT,
    WATERMARK_OFFSET,
    BlockImage,
    KvLayout,
    WalRecord,
)
from repro.net.rpc import Reply, RpcEndpoint
from repro.obs import state as obs_state
from repro.sim.engine import Event

__all__ = ["KvServer", "KvError", "kv_app_factory", "merge_wal_records"]

_STRUCTURE_READ_CHUNK = 256 * 1024
_WAL_FLOW_SLACK = 64


class KvError(Exception):
    """Client-visible KV failure (full store, oversized record, ...)."""


def merge_wal_records(
    per_node: List[Dict[int, WalRecord]], floor_seq: int
) -> List[WalRecord]:
    """Merge per-node KV WAL scans into the authoritative record list.

    Keeps, per sequence number, the record with the highest term, then
    truncates everything after the newest term's last record (a deposed
    coordinator's unacknowledged suffix).  Only records with
    ``seq > floor_seq`` (the persisted watermark) are returned, in order.
    """
    merged: Dict[int, WalRecord] = {}
    for records in per_node:
        for seq, record in records.items():
            best = merged.get(seq)
            if best is None or record.term > best.term:
                merged[seq] = record
    if not merged:
        return []
    max_term = max(record.term for record in merged.values())
    last_seq = max(seq for seq, record in merged.items() if record.term == max_term)
    return [
        merged[seq]
        for seq in sorted(merged)
        if floor_seq < seq <= last_seq
    ]


class KvServer:
    """One coordinator's key-value store instance."""

    def __init__(
        self,
        cpu_node: CpuNode,
        repmem: ReplicatedMemory,
        config: KvConfig,
        endpoint: RpcEndpoint,
        persistence=None,
    ):
        self.cpu_node = cpu_node
        self.repmem = repmem
        self.config = config
        self.endpoint = endpoint
        self.persistence = persistence  # optional PersistenceSink (§3.5)
        self.layout = KvLayout(config)
        self.host = cpu_node.host
        self.sim = self.host.sim
        if repmem.config.data_bytes < self.layout.data_bytes:
            raise ValueError(
                "replicated memory too small for this KV layout; build the "
                "SiftConfig with KvConfig.sift_config()"
            )

        self.cache = ValueCache(config.cache_entries)
        self.index: Optional[np.ndarray] = None  # uint64 bucket heads
        self.bitmap: Optional[bytearray] = None
        self._free_blocks = 0
        self._reserved_blocks = 0  # blocks promised to unapplied inserts
        self._ready_reservations: Dict[int, bool] = {}  # seq -> reserved
        self._alloc_hint = 0
        self._bucket_locks = BlockLockTable(self.sim)
        # In EC mode, index/bitmap updates rewrite whole blocks from the
        # local caches; concurrent appliers must serialize per structure
        # block or a later-landing write could carry a stale snapshot.
        self._structure_locks = BlockLockTable(self.sim)

        self.next_seq = 1
        self.applied_seq = 0  # contiguous: every record <= this is applied
        self._next_dispatch = 1  # next seq a worker may pick up
        # Live-migration hook (repro.control.migrate.MigrationHooks) —
        # installed/cleared by the control plane on the *current*
        # coordinator only; a successor elected mid-migration starts
        # bare and the migration manager re-installs (and restarts the
        # copy pass, so nothing acked in the window is missed).
        self.migration = None
        # Destination-side import fence: per-key source sequence floor.
        # Mirrored writes carry their source WAL seq; copy-pass imports
        # carry 0, so a stale copy read can never overwrite a newer
        # mirrored write however the two RPCs interleave.
        self._import_seqs: Dict[bytes, int] = {}
        self._done_seqs: set = set()
        self._ready: Dict[int, WalRecord] = {}
        self._apply_kicks: List[Event] = []
        self._flow_waiters: List[Event] = []
        self._pending_appends: List[Tuple[WalRecord, bytes, Event]] = []
        self._append_flusher_busy = False
        self._last_watermark = 0
        self.running = False
        self.stats = {
            "puts": 0,
            "gets": 0,
            "deletes": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "chain_reads": 0,
            "applies": 0,
            "replayed": 0,
        }

    # ------------------------------------------------------------------
    # App contract (start is a process; stop is synchronous)
    # ------------------------------------------------------------------

    def start(self):
        """Process: recover structures, replay the KV WAL, begin serving."""
        yield from self._load_structures()
        yield from self._replay_wal()
        self.running = True
        self._next_dispatch = self.applied_seq + 1
        if self.persistence is not None:
            self.persistence.start()
        for worker in range(self.config.apply_workers):
            self.host.spawn(self._applier(), name=f"kv-applier-{worker}")
        self.endpoint.register("kv.put", self.handle_put)
        self.endpoint.register("kv.get", self.handle_get)
        self.endpoint.register("kv.delete", self.handle_delete)
        self.endpoint.register("kv.mig_put", self.handle_migrate_put)
        self.endpoint.register("kv.mig_scan", self.handle_migrate_scan)

    def stop(self) -> None:
        """Tear down handlers and background work (depose path)."""
        self.running = False
        if self.persistence is not None:
            self.persistence.stop()
        self.endpoint.unregister("kv.put")
        self.endpoint.unregister("kv.get")
        self.endpoint.unregister("kv.delete")
        self.endpoint.unregister("kv.mig_put")
        self.endpoint.unregister("kv.mig_scan")
        kicks, self._apply_kicks = self._apply_kicks, []
        for kick in kicks:
            kick.try_trigger(None)
        for waiter in self._flow_waiters:
            waiter.try_fail(KvError("kv server stopped"))
        self._flow_waiters.clear()

    # ------------------------------------------------------------------
    # Recovery (§4.3)
    # ------------------------------------------------------------------

    def _load_structures(self):
        layout = self.layout
        raw = yield from self.repmem.direct_read(WATERMARK_OFFSET, 8)
        self.applied_seq = int.from_bytes(raw, "little")
        self._last_watermark = self.applied_seq

        index_raw = yield from self._bulk_read(layout.index_offset, layout.index_bytes)
        self.index = np.frombuffer(
            index_raw[: self.config.index_buckets * 8], dtype="<u8"
        ).copy()

        bitmap_raw = yield from self._bulk_read(layout.bitmap_offset, layout.bitmap_bytes)
        self.bitmap = bytearray(bitmap_raw[: (self.config.max_keys + 7) // 8])
        self._free_blocks = self.config.max_keys - sum(
            bin(byte).count("1") for byte in self.bitmap
        )

    def _bulk_read(self, addr: int, length: int):
        out = bytearray()
        offset = 0
        while offset < length:
            take = min(_STRUCTURE_READ_CHUNK, length - offset)
            data = yield from self.repmem.read(addr + offset, take)
            # Parsing/copy cost for bulk structure loads (Fig. 12's "loading
            # the index table and bitmap" phase).
            yield self.host.execute(take / 4096.0)
            out += data
            offset += take
        return bytes(out)

    def _replay_wal(self):
        layout = self.layout
        config = self.config
        wal_bytes = config.wal_entries * layout.wal_slot_bytes
        per_node: List[Dict[int, WalRecord]] = []
        live = [
            n
            for n, s in self.repmem.states.items()
            if s == NodeState.LIVE and n in self.repmem.qps
        ]
        for n in live:
            raw = bytearray()
            offset = 0
            while offset < wal_bytes:
                take = min(_STRUCTURE_READ_CHUNK, wal_bytes - offset)
                data = yield self.repmem.qps[n].read(
                    REPMEM_REGION,
                    self.repmem.amap.raw_extent(layout.wal_offset + offset),
                    take,
                )
                raw += data
                offset += take
            yield self.host.execute(config.wal_entries * 0.02)  # slot scan
            records: Dict[int, WalRecord] = {}
            for slot in range(config.wal_entries):
                begin = slot * layout.wal_slot_bytes
                record = layout.decode_wal_record(
                    bytes(raw[begin : begin + layout.wal_slot_bytes])
                )
                if record is not None:
                    records[record.seq] = record
            per_node.append(records)

        records = merge_wal_records(per_node, self.applied_seq)
        for record in records:
            yield from self._apply_record(record)
            self.applied_seq = record.seq
            if record.op == OP_PUT:
                # "While the log is being replayed, the cache is populated
                # in parallel" (§6.5) — the store restarts warm.
                self.cache.put(record.key, record.value)
            self.stats["replayed"] += 1
        highest = max((r.seq for node in per_node for r in node.values()), default=0)
        self.next_seq = max(highest, self.applied_seq) + 1
        yield from self._persist_watermark()

    # ------------------------------------------------------------------
    # Benchmark scaffolding
    # ------------------------------------------------------------------

    def preload(self, items, warm_cache: bool = True) -> None:
        """Synchronously pre-populate the store (no simulated time).

        Experiment scaffolding for the paper's "each system is
        pre-populated with all of the keys at the start of each
        experiment" (§6.2): writes blocks, index and bitmap straight into
        every active node's memory region and the coordinator caches,
        exactly as if the puts had been applied, without burning
        wall-clock on millions of simulated RPCs.  Must run after
        :meth:`start` and before any traffic.
        """
        repmem = self.repmem
        ec = repmem.config.erasure_coding
        regions = [
            (n, repmem.memory_nodes[n].repmem_region)
            for n in sorted(repmem.states)
            if repmem.states[n] != "dead" and n in repmem.qps
        ]
        cache_budget = self.cache.capacity if warm_cache else 0
        for key, value in items:
            key = bytes(key)
            value = bytes(value)
            self._check_record(key, value)
            block_number = self._allocate_block()
            addr = self.layout.block_addr(block_number)
            bucket = self.layout.bucket_of(key)
            head = int(self.index[bucket])
            image = self.layout.encode_block(BlockImage(head, key, value))
            self.index[bucket] = addr
            self._raw_store(regions, addr, image, ec)
            if cache_budget > 0:
                self.cache.fill(key, value, addr)
                cache_budget -= 1
        # Flush the index table and bitmap wholesale.
        self._raw_store_range(
            regions, self.layout.index_offset, self.index.tobytes(), ec
        )
        self._raw_store_range(
            regions, self.layout.bitmap_offset, bytes(self.bitmap), ec
        )

    def _raw_store(self, regions, addr: int, data: bytes, ec: bool) -> None:
        amap = self.repmem.amap
        if not ec:
            offset = amap.raw_extent(addr)
            for _n, region in regions:
                region.write(offset, data)
            return
        block = amap.block_index(addr)
        offset = amap.chunk_extent(block)
        chunks = self.repmem.rs.encode(data)
        for n, region in regions:
            region.write(offset, chunks[n])

    def _raw_store_range(self, regions, addr: int, data: bytes, ec: bool) -> None:
        block_bytes = self.repmem.config.block_bytes
        for begin in range(0, len(data), block_bytes):
            piece = data[begin : begin + block_bytes]
            if len(piece) < block_bytes:
                piece = piece + bytes(block_bytes - len(piece))
            self._raw_store(regions, addr + begin, piece, ec)

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------

    def handle_put(self, payload: Tuple[bytes, bytes]):
        """Process: §4.2 put — one RDMA round trip to commit."""
        key, value = payload
        # Capture the hook once: a cutover mid-operation must not strand
        # a write that committed under the dual-write window unmirrored.
        hook = self.migration
        if hook is not None and hook.forwards(key):
            reply = yield from hook.forward("put", key, value)
            return reply
        seq = yield from self._local_put(key, value)
        if hook is not None and hook.mirrors(key):
            # Synchronous dual-write *before* the ack: an acked in-range
            # put is on the destination too, whatever happens next.
            yield from hook.mirror(key, value, seq)
        return Reply(("ok", seq), 32)

    def _local_put(self, key: bytes, value: bytes):
        """Process: the put body (admission, WAL commit); returns the seq."""
        self._check_record(key, value)
        yield self.host.execute(self.config.op_cpu_us + self.config.cache_cpu_us)
        # Admission control: a put that may insert must have a block
        # available *now* — once the record is in the WAL and acked, the
        # applier can no longer refuse it.  Keys whose block is cached are
        # known updates; everything else conservatively reserves.
        reserved = self.cache.block_addr_of(key) is None
        if reserved:
            if self._free_blocks - self._reserved_blocks <= 0:
                raise KvError("key-value store is full")
            self._reserved_blocks += 1
        seq = self.next_seq
        self.next_seq += 1
        record = WalRecord(seq, OP_PUT, bytes(key), bytes(value), self.repmem.term)
        if reserved:
            self._ready_reservations[seq] = True
        # Cache before any yield so concurrent puts publish in seq order.
        self.cache.put(record.key, record.value, pending=True)
        self.stats["puts"] += 1
        try:
            yield from self._commit_record(record)
        except Exception:
            self.cache.applied(record.key, None)
            if self._ready_reservations.pop(seq, False):
                self._reserved_blocks -= 1
            raise
        return seq

    def handle_get(self, key: bytes):
        """Process: §4.2 get — cache first, chain walk on a miss."""
        hook = self.migration
        if hook is not None and hook.forwards(key):
            reply = yield from hook.forward("get", key)
            return reply
        yield self.host.execute(self.config.op_cpu_us + self.config.cache_cpu_us)
        self.stats["gets"] += 1
        hit, value = self.cache.get(key)
        if hit:
            self.stats["cache_hits"] += 1
            if value is None:
                return Reply(("missing", None), 16)
            return Reply(("ok", value), 16 + len(value))
        self.stats["cache_misses"] += 1
        bucket = self.layout.bucket_of(key)
        token = yield from self._bucket_locks.acquire([bucket], LockMode.READ)
        try:
            found = yield from self._walk_chain(bucket, key)
        finally:
            self._bucket_locks.release(token)
        if found is None:
            return Reply(("missing", None), 16)
        addr, image, _prev = found
        yield self.host.execute(self.config.cache_cpu_us)
        self.cache.fill(key, image.value, addr)
        return Reply(("ok", image.value), 16 + len(image.value))

    def handle_delete(self, key: bytes):
        """Process: delete — a tombstone record through the same WAL."""
        hook = self.migration
        if hook is not None and hook.forwards(key):
            reply = yield from hook.forward("delete", key)
            return reply
        seq = yield from self._local_delete(key)
        if hook is not None and hook.mirrors(key):
            yield from hook.mirror(key, None, seq)
        return Reply(("ok", seq), 32)

    def _local_delete(self, key: bytes):
        """Process: the delete body (tombstone WAL commit); returns the seq."""
        self._check_record(key, b"")
        yield self.host.execute(self.config.op_cpu_us + self.config.cache_cpu_us)
        seq = self.next_seq
        self.next_seq += 1
        record = WalRecord(seq, OP_DELETE, bytes(key), b"", self.repmem.term)
        self.cache.mark_deleted(record.key, pending=True)
        self.stats["deletes"] += 1
        try:
            yield from self._commit_record(record)
        except Exception:
            self.cache.applied(record.key, None)
            raise
        return seq

    # ------------------------------------------------------------------
    # Live-migration RPCs (repro.control)
    # ------------------------------------------------------------------

    def handle_migrate_put(self, payload: Tuple[bytes, Optional[bytes], int]):
        """Process: fenced import on the migration *destination*.

        Applies a mirrored write (``src_seq`` = its source WAL sequence)
        or a copy-pass record (``src_seq`` = 0, ``value`` = None means a
        tombstone) only when it is newer than anything already imported
        for the key, so copy-vs-mirror races resolve to the source's
        latest acked value regardless of RPC arrival order.
        """
        key, value, src_seq = payload
        key = bytes(key)
        recorded = self._import_seqs.get(key, -1)
        if src_seq <= recorded:
            self.stats["migrate_stale"] = self.stats.get("migrate_stale", 0) + 1
            return Reply(("ok", 0), 32)
        self._import_seqs[key] = src_seq
        self.stats["migrate_imports"] = self.stats.get("migrate_imports", 0) + 1
        if value is None:
            seq = yield from self._local_delete(key)
        else:
            seq = yield from self._local_put(key, value)
        return Reply(("ok", seq), 32)

    def handle_migrate_scan(self, payload: Tuple[int, int, tuple]):
        """Process: copy-pass scan on the migration *source*.

        Returns every applied ``(key, value)`` in buckets ``[lo, hi)``
        whose hash falls in the moved arcs.  The scan first waits for
        the apply frontier to pass the WAL records committed before it
        started; anything committed after that point is covered by the
        already-installed dual-write mirror, so scan + mirror together
        observe every acked write.
        """
        from repro.shard.hashing import key_point, ranges_contain

        bucket_lo, bucket_hi, ranges = payload
        floor = self.next_seq - 1
        while self.applied_seq < floor:
            if not self.running:
                raise KvError("kv server stopped mid-scan")
            yield self.sim.timeout(500.0)
        out = []
        total = 0
        for bucket in range(bucket_lo, min(bucket_hi, self.config.index_buckets)):
            # Empty buckets (the vast majority at a 12.5% load factor)
            # cost nothing: the unlocked peek is safe because the chain
            # head is re-read under the lock before it is walked.
            if not int(self.index[bucket]):
                continue
            token = yield from self._bucket_locks.acquire([bucket], LockMode.READ)
            try:
                ptr = int(self.index[bucket])
                while ptr:
                    raw = yield from self.repmem.read(ptr, self.layout.block_bytes)
                    self.stats["chain_reads"] += 1
                    image = self.layout.decode_block(raw)
                    if image is None:
                        break  # torn block: WAL replay repairs; skip chain tail
                    if ranges_contain(ranges, key_point(image.key)):
                        out.append((image.key, image.value))
                        total += len(image.key) + len(image.value)
                    ptr = image.next_ptr
            finally:
                self._bucket_locks.release(token)
        return Reply(("ok", out), 16 + total)

    def _check_record(self, key: bytes, value: bytes) -> None:
        if not key or len(key) > self.config.key_bytes:
            raise KvError(f"key must be 1..{self.config.key_bytes} bytes")
        if len(value) > self.config.value_bytes:
            raise KvError(f"value exceeds {self.config.value_bytes} bytes")

    def _commit_record(self, record: WalRecord):
        # Flow control: the circular WAL bounds outstanding updates (§4.2).
        # The slack keeps a few slots clear of the apply frontier; it must
        # never consume the whole window on small test configurations.
        slack = max(1, min(_WAL_FLOW_SLACK, self.config.wal_entries // 4))
        while record.seq - self.applied_seq > self.config.wal_entries - slack:
            waiter = Event(self.sim)
            self._flow_waiters.append(waiter)
            yield waiter
        image = self.layout.encode_wal_record(record)
        if self.config.coalesce_appends:
            if obs_state.TRACER is not None:
                # The fan-out milestones land in the flusher's trace; mark
                # where this record joined the coalescing queue instead.
                obs_state.TRACER.instant(
                    "kv.append_queued", self.sim.now, seq=record.seq
                )
            done = Event(self.sim)
            self._pending_appends.append((record, image, done))
            if not self._append_flusher_busy:
                self._append_flusher_busy = True
                self.host.spawn(self._append_flusher(), name="kv-append-flusher")
            yield done  # raises here if the extent write failed
            return
        yield from self.repmem.direct_write(self.layout.wal_slot_addr(record.seq), image)
        self._mark_committed([record])

    def _mark_committed(self, records) -> None:
        for record in records:
            self._ready[record.seq] = record
        kicks, self._apply_kicks = self._apply_kicks, []
        for kick in kicks:
            kick.try_trigger(None)

    def _append_flusher(self):
        """Process: drain pending appends as contiguous-slot extent writes.

        Concurrent puts enqueue encoded records; each flush takes up to
        ``coalesce_max`` of them, groups runs of adjacent WAL slots
        (splitting where the circular log wraps), and commits each run
        with **one** replicated write — every slot but the run's last is
        zero-padded to ``wal_slot_bytes`` so images land on their slot
        boundaries.  Per-record completion events keep the unbatched
        error semantics: a failed extent write fails exactly the records
        in that extent.
        """
        slot_bytes = self.layout.wal_slot_bytes
        wal_entries = self.config.wal_entries
        try:
            while self._pending_appends:
                batch = self._pending_appends[: self.config.coalesce_max]
                del self._pending_appends[: len(batch)]
                extents = [[batch[0]]]
                for item in batch[1:]:
                    prev_seq = extents[-1][-1][0].seq
                    if item[0].seq == prev_seq + 1 and (item[0].seq - 1) % wal_entries:
                        extents[-1].append(item)
                    else:
                        extents.append([item])
                for extent in extents:
                    addr = self.layout.wal_slot_addr(extent[0][0].seq)
                    image = b"".join(
                        img.ljust(slot_bytes, b"\0") for _, img, _ in extent[:-1]
                    ) + extent[-1][1]
                    self.stats["coalesced_appends"] = (
                        self.stats.get("coalesced_appends", 0) + len(extent) - 1
                    )
                    try:
                        yield from self.repmem.direct_write(addr, image)
                    except Exception as exc:
                        for _, _, done in extent:
                            done.try_fail(exc)
                        continue
                    self._mark_committed([rec for rec, _, _ in extent])
                    for _, _, done in extent:
                        done.try_trigger(None)
        finally:
            self._append_flusher_busy = False

    # ------------------------------------------------------------------
    # Background apply (§4.2)
    # ------------------------------------------------------------------

    def _applier(self):
        """One of ``apply_workers`` concurrent appliers.

        Records are dispatched strictly in sequence order; the per-bucket
        FIFO write locks then serialize conflicting keys while letting
        independent keys apply in parallel (§4.2).
        """
        while self.running:
            record = self._ready.pop(self._next_dispatch, None)
            if record is None:
                kick = Event(self.sim)
                self._apply_kicks.append(kick)
                yield kick
                continue
            self._next_dispatch += 1
            try:
                yield from self._apply_record(record)
            except KvError:
                # Admission control should make this unreachable; if it
                # ever happens, dropping the record is the only option
                # left (the client was already acked).
                self.stats["apply_drops"] = self.stats.get("apply_drops", 0) + 1
            except Exception:
                if not self.running:
                    return  # deposed mid-apply; successor replays the WAL
                raise
            finally:
                if self._ready_reservations.pop(record.seq, False):
                    self._reserved_blocks = max(0, self._reserved_blocks - 1)
            block_addr = self.cache.block_addr_of(record.key)
            self.cache.applied(record.key, block_addr)
            self.stats["applies"] += 1
            if self.persistence is not None:
                yield from self.persistence.offer(record)
            self._note_applied(record.seq)

    def _note_applied(self, seq: int) -> None:
        self._done_seqs.add(seq)
        advanced = False
        while self.applied_seq + 1 in self._done_seqs:
            self.applied_seq += 1
            self._done_seqs.remove(self.applied_seq)
            advanced = True
        if not advanced:
            return
        if self.applied_seq - self._last_watermark >= self.config.watermark_interval:
            self._last_watermark = self.applied_seq
            self.host.spawn(self._persist_watermark(), name="kv-watermark")
        if self._flow_waiters:
            waiters, self._flow_waiters = self._flow_waiters, []
            for waiter in waiters:
                waiter.try_trigger(None)

    def _persist_watermark(self):
        self._last_watermark = self.applied_seq
        try:
            yield from self.repmem.direct_write(
                WATERMARK_OFFSET, self.applied_seq.to_bytes(8, "little")
            )
        except (Deposed, GroupUnavailable):
            pass  # advisory write: recovery just replays a longer suffix

    def _apply_record(self, record: WalRecord):
        bucket = self.layout.bucket_of(record.key)
        token = yield from self._bucket_locks.acquire([bucket], LockMode.WRITE)
        try:
            yield self.host.execute(self.config.apply_cpu_us)
            if record.op == OP_PUT:
                yield from self._apply_put(bucket, record)
            else:
                yield from self._apply_delete(bucket, record)
        finally:
            self._bucket_locks.release(token)

    def _apply_put(self, bucket: int, record: WalRecord):
        found = yield from self._walk_chain(bucket, record.key)
        if found is not None:
            addr, image, _prev = found
            updated = BlockImage(image.next_ptr, record.key, record.value)
            yield from self._write_block(addr, updated)
            self.cache.fill(record.key, record.value, addr)
            return
        block_number = self._allocate_block()
        addr = self.layout.block_addr(block_number)
        head = int(self.index[bucket])
        yield from self._write_block(addr, BlockImage(head, record.key, record.value))
        yield from self._write_bitmap_bit(block_number)
        yield from self._write_bucket_head(bucket, addr)
        self.cache.fill(record.key, record.value, addr)

    def _apply_delete(self, bucket: int, record: WalRecord):
        found = yield from self._walk_chain(bucket, record.key, need_prev=True)
        if found is None:
            return  # delete of a non-existent key: nothing to do
        addr, image, prev = found
        if prev is None:
            yield from self._write_bucket_head(bucket, image.next_ptr)
        else:
            prev_addr, prev_image = prev
            relinked = BlockImage(image.next_ptr, prev_image.key, prev_image.value)
            yield from self._write_block(prev_addr, relinked)
        self._free_block(self.layout.block_number(addr))
        yield from self._write_bitmap_bit(self.layout.block_number(addr))

    # ------------------------------------------------------------------
    # Chain / structure access
    # ------------------------------------------------------------------

    def _walk_chain(self, bucket: int, key: bytes, need_prev: bool = False):
        """Process: find *key* in its bucket chain.

        Returns ``(addr, image, prev)`` where *prev* is ``None`` for the
        chain head or ``(prev_addr, prev_image)`` otherwise; ``None`` if
        the key is absent.  Uses the cached block address as a shortcut
        when available — unless the caller needs the predecessor (chain
        unlinking), which only a full walk can produce.
        """
        shortcut = None if need_prev else self.cache.block_addr_of(key)
        if shortcut:
            raw = yield from self.repmem.read(shortcut, self.layout.block_bytes)
            self.stats["chain_reads"] += 1
            image = self.layout.decode_block(raw)
            if image is not None and image.key == key:
                return shortcut, image, None  # prev unknown (not needed)
        prev = None
        ptr = int(self.index[bucket])
        while ptr:
            raw = yield from self.repmem.read(ptr, self.layout.block_bytes)
            self.stats["chain_reads"] += 1
            image = self.layout.decode_block(raw)
            if image is None:
                return None  # torn block: treat as absent (WAL replay fixes)
            if image.key == key:
                return ptr, image, prev
            prev = (ptr, image)
            ptr = image.next_ptr
        return None

    def _write_block(self, addr: int, image: BlockImage):
        data = self.layout.encode_block(image)
        if self.repmem.config.erasure_coding:
            yield from self.repmem.write(addr, data)  # logged: EC-safe
        else:
            yield from self.repmem.direct_write(addr, data)

    def _write_bucket_head(self, bucket: int, ptr: int):
        self.index[bucket] = ptr
        addr = self.layout.bucket_addr(bucket)
        if self.repmem.config.erasure_coding:
            # Write the whole containing EC block from the local cache,
            # under a structure-block mutex so the snapshot is current.
            block = self.repmem.amap.block_index(addr)
            token = yield from self._structure_locks.acquire([block], LockMode.WRITE)
            try:
                start, end = self.repmem.amap.block_bounds(block)
                data = self._index_slice(start, end)
                yield from self.repmem.write(start, data)
            finally:
                self._structure_locks.release(token)
        else:
            yield from self.repmem.direct_write(addr, int(ptr).to_bytes(8, "little"))

    def _write_bitmap_bit(self, block_number: int):
        byte_index = block_number // 8
        addr = self.layout.bitmap_offset + byte_index
        if self.repmem.config.erasure_coding:
            block = self.repmem.amap.block_index(addr)
            token = yield from self._structure_locks.acquire([block], LockMode.WRITE)
            try:
                start, end = self.repmem.amap.block_bounds(block)
                data = self._bitmap_slice(start, end)
                yield from self.repmem.write(start, data)
            finally:
                self._structure_locks.release(token)
        else:
            # Serialize per word: concurrent set/clear of bits sharing a
            # word must not land a stale snapshot.
            aligned = addr - (addr % 8)
            token = yield from self._structure_locks.acquire([aligned], LockMode.WRITE)
            try:
                begin = aligned - self.layout.bitmap_offset
                word = bytes(self.bitmap[begin : begin + 8]).ljust(8, b"\x00")
                yield from self.repmem.direct_write(aligned, word)
            finally:
                self._structure_locks.release(token)

    def _index_slice(self, start: int, end: int) -> bytes:
        """The index table's bytes for logical range [start, end), padded."""
        table = self.index.tobytes()
        lo = start - self.layout.index_offset
        hi = end - self.layout.index_offset
        chunk = table[max(lo, 0) : min(hi, len(table))]
        return chunk + bytes((end - start) - len(chunk))

    def _bitmap_slice(self, start: int, end: int) -> bytes:
        lo = start - self.layout.bitmap_offset
        hi = end - self.layout.bitmap_offset
        chunk = bytes(self.bitmap[max(lo, 0) : min(hi, len(self.bitmap))])
        return chunk + bytes((end - start) - len(chunk))

    # ------------------------------------------------------------------
    # Bitmap allocation
    # ------------------------------------------------------------------

    def _allocate_block(self) -> int:
        if self._free_blocks <= 0:
            raise KvError("key-value store is full")
        total = self.config.max_keys
        for step in range(total):
            candidate = (self._alloc_hint + step) % total
            byte_index, bit = divmod(candidate, 8)
            if not self.bitmap[byte_index] & (1 << bit):
                self.bitmap[byte_index] |= 1 << bit
                self._free_blocks -= 1
                self._alloc_hint = candidate + 1
                return candidate
        raise KvError("bitmap inconsistent: no free block found")

    def _free_block(self, block_number: int) -> None:
        byte_index, bit = divmod(block_number, 8)
        if self.bitmap[byte_index] & (1 << bit):
            self.bitmap[byte_index] &= ~(1 << bit) & 0xFF
            self._free_blocks += 1


def kv_app_factory(config: KvConfig, persistence_factory=None):
    """Build the ``app_factory`` hook wiring a KvServer to elected nodes.

    Every CPU node gets one persistent RPC endpoint named ``kv``; the
    server registers its handlers there while it leads and unregisters on
    depose, so clients simply retry another node when theirs stops
    answering.  *persistence_factory(cpu_node)*, if given, supplies a
    :class:`~repro.persist.sink.PersistenceSink` for the §3.5 RocksDB
    strategy.
    """

    def factory(cpu_node: CpuNode, repmem: ReplicatedMemory):
        endpoint = cpu_node.host.services.get("rpc:kv")
        if endpoint is None:
            endpoint = RpcEndpoint(cpu_node.host, cpu_node.fabric, name="kv")
        persistence = (
            persistence_factory(cpu_node) if persistence_factory is not None else None
        )
        return KvServer(cpu_node, repmem, config, endpoint, persistence=persistence)

    return factory
