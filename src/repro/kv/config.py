"""Key-value store configuration.

Defaults reproduce the paper's setup (§6.2): 1M keys, 32-byte keys,
992-byte values, a cache sized for 50% of the pairs, a 12.5% index load
factor, and a 64k-entry circular write-ahead log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SiftConfig

__all__ = ["KvConfig"]


@dataclass(frozen=True)
class KvConfig:
    """Geometry and cost knobs for one KV store instance."""

    max_keys: int = 1_000_000
    """Capacity in key-value pairs (= number of data blocks)."""

    key_bytes: int = 32
    """§6.2: "a maximum key size of 32 bytes"."""

    value_bytes: int = 992
    """§6.2: "a maximum value size of 992 bytes"."""

    index_load_factor: float = 0.125
    """§6.2: "the index table has a maximum load factor of 12.5%"."""

    cache_fraction: float = 0.5
    """§6.2: "the cache is set to hold up to 50% of the key-value pairs"."""

    wal_entries: int = 64 * 1024
    """§6.2: "the key-value store's circular write-ahead log can hold up
    to 64k entries"."""

    watermark_interval: int = 1024
    """Applied-sequence watermark persistence cadence (entries)."""

    apply_workers: int = 8
    """Concurrent background appliers (§4.2: "updates to multiple keys can
    be applied concurrently through the locking of the local index table
    and bitmap structures")."""

    coalesce_appends: bool = False
    """Coalesce concurrent WAL appends into extent writes.

    When set, committing puts hand their encoded records to a flusher
    process that merges contiguous-sequence slots into one replicated
    write per extent — extending the WAL-append amortization of §4 to
    the hot path: one ``rdma_post_us`` charge and one fan-out (and, with
    ``doorbell_batching``, one doorbell) per *extent* instead of per
    record.  Off by default: it changes simulated timings, so the
    committed figure baselines keep the per-record path."""

    coalesce_max: int = 16
    """Upper bound on records merged per flush (bounds ack latency)."""

    # -- coordinator-side CPU costs (core-microseconds) -----------------------
    #
    # Calibration constants (DESIGN.md §5): tuned so the Figure 7
    # saturation curves put Sift's knee near 10 cores where Raft-R's is
    # near 8 at the same throughput — the provisioning deltas behind
    # Table 2.  The per-op cost covers validation, hashing, cache
    # maintenance, verb posting/completion handling and the per-op share
    # of lease upkeep, which is where the paper's Sift spends the extra
    # cycles its stateless design costs it (§6.3.2).

    op_cpu_us: float = 8.0
    """Request handling per put/get (see calibration note above)."""

    cache_cpu_us: float = 1.2
    """Cache lookup/insert."""

    apply_cpu_us: float = 6.0
    """Background work per applied put (chain bookkeeping)."""

    # -- derived ---------------------------------------------------------------

    @property
    def index_buckets(self) -> int:
        """Bucket count honouring the maximum load factor (power of two)."""
        needed = int(self.max_keys / self.index_load_factor)
        buckets = 1
        while buckets < needed:
            buckets *= 2
        return buckets

    @property
    def cache_entries(self) -> int:
        """Maximum cached key-value pairs."""
        return int(self.max_keys * self.cache_fraction)

    @property
    def block_bytes(self) -> int:
        """Data block size: header + key + value."""
        from repro.kv.layout import BLOCK_HEADER_BYTES

        return BLOCK_HEADER_BYTES + self.key_bytes + self.value_bytes

    def sift_config(
        self,
        fm: int = 1,
        fc: int = 1,
        erasure_coding: bool = False,
        **overrides,
    ) -> SiftConfig:
        """Build the :class:`SiftConfig` that can host this KV store.

        Sizes the replicated memory, the direct (unencoded) window that
        holds the KV WAL, and aligns the EC block size with the KV data
        block size so every put encodes exactly one block.
        """
        from repro.kv.layout import KvLayout

        layout = KvLayout(self)
        defaults = dict(
            fm=fm,
            fc=fc,
            erasure_coding=erasure_coding,
            data_bytes=layout.data_bytes,
            direct_bytes=layout.direct_bytes,
            block_bytes=self.block_bytes,
            wal_payload_bytes=self.block_bytes + 64,
        )
        defaults.update(overrides)
        return SiftConfig(**defaults)
