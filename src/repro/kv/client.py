"""KV client.

Clients talk to whichever CPU node currently coordinates.  They do not
participate in the protocol: a client simply issues the RPC, and when the
call times out or errors (the node crashed, was deposed mid-request, or
was never the coordinator) it rotates to the next CPU node of the group
with a small back-off.  The client remembers the last node that answered
so steady-state traffic goes straight to the coordinator.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.compat import resolve_us_kwargs
from repro.core.group import SiftGroup
from repro.errors import ReproError
from repro.net.fabric import Fabric
from repro.net.host import Host
from repro.net.rpc import RpcClient
from repro.obs.stats import StatsSnapshot
from repro.sim.units import MS

__all__ = ["KvClient", "KvRequestFailed"]


class KvRequestFailed(ReproError):
    """The request could not complete after exhausting every CPU node."""

    retryable = True


#: Legacy duration kwargs accepted with a one-time DeprecationWarning.
_LEGACY_DURATIONS = {
    "request_timeout": "request_timeout_us",
    "retry_backoff": "retry_backoff_us",
}


class KvClient:
    """A closed-loop client bound to one Sift group."""

    def __init__(
        self,
        host: Host,
        fabric: Fabric,
        group: SiftGroup,
        request_timeout_us: float = 10 * MS,
        max_rounds: int = 2_000,
        retry_backoff_us: float = 5 * MS,
        **deprecated,
    ):
        if deprecated:
            durations = resolve_us_kwargs(
                "KvClient",
                deprecated,
                _LEGACY_DURATIONS,
                {
                    "request_timeout_us": request_timeout_us,
                    "retry_backoff_us": retry_backoff_us,
                },
            )
            request_timeout_us = durations["request_timeout_us"]
            retry_backoff_us = durations["retry_backoff_us"]
        self.host = host
        self.group = group
        self.rpc = RpcClient(host, fabric)
        self.request_timeout_us = request_timeout_us
        self.max_rounds = max_rounds
        self.retry_backoff_us = retry_backoff_us
        self._preferred: Optional[int] = None
        self._order_cache: dict = {}  # preferred index -> probe order tuple
        self.stats = {
            "requests": 0,
            "retries": 0,
            "failures": 0,
            "inflight": 0,
            "inflight_peak": 0,
        }

    def prefer(self, index: int) -> None:
        """Seed the preferred-CPU-node cache (modulo the group size)."""
        cpu_nodes = self.group.cpu_nodes
        self._preferred = index % max(1, len(cpu_nodes))

    def snapshot(self) -> StatsSnapshot:
        """This client's counters under the shared stats protocol."""
        stats = self.stats
        return StatsSnapshot(
            kind="kv_client",
            name=f"{self.host.name}->{self.group.name}",
            counters={
                "requests": float(stats["requests"]),
                "retries": float(stats["retries"]),
                "failures": float(stats["failures"]),
            },
            gauges={
                "inflight": float(stats["inflight"]),
                "inflight_peak": float(stats["inflight_peak"]),
            },
        )

    # -- public API (all processes) ---------------------------------------------

    def put(self, key: bytes, value: bytes):
        """Process: store *value* under *key*; returns the commit sequence."""
        status, result = yield from self._call(
            "kv.put", (bytes(key), bytes(value)), len(key) + len(value)
        )
        return result

    def get(self, key: bytes):
        """Process: fetch *key*; returns the value or None when absent."""
        status, result = yield from self._call("kv.get", bytes(key), len(key))
        return result if status == "ok" else None

    def delete(self, key: bytes):
        """Process: delete *key* (idempotent)."""
        status, result = yield from self._call("kv.delete", bytes(key), len(key))
        return result

    # -- mechanics ---------------------------------------------------------------

    def _endpoints(self):
        endpoints = []
        preferred = self._preferred
        cpu_nodes = self.group.cpu_nodes
        n = len(cpu_nodes)
        if preferred is not None and preferred < n:
            # The probe order depends only on (preferred, n); memoise it
            # instead of rebuilding the list on every request.
            order = self._order_cache.get(preferred)
            if order is None or len(order) != n:
                order = (preferred, *(i for i in range(n) if i != preferred))
                self._order_cache[preferred] = order
        else:
            order = range(n)
        for index in order:
            cpu_node = cpu_nodes[index]
            endpoint = cpu_node.host.services.get("rpc:kv")
            if endpoint is not None and cpu_node.host.alive:
                endpoints.append((index, endpoint))
        return endpoints

    def _call(self, method: str, payload: Any, payload_bytes: int):
        stats = self.stats
        stats["requests"] += 1
        # In-flight window accounting: the bounded-dispatch load engines
        # (open-loop lanes, the chaos clients) cap concurrency above this
        # layer; the counter lets tests and routers *verify* the bound at
        # the client, with no yields or randomness added to the call.
        stats["inflight"] += 1
        if stats["inflight"] > stats["inflight_peak"]:
            stats["inflight_peak"] = stats["inflight"]
        try:
            last_error: Optional[BaseException] = None
            for round_number in range(self.max_rounds):
                endpoints = self._endpoints()
                if not endpoints:
                    yield self.host.sim.timeout(self.retry_backoff_us)
                    continue
                for index, endpoint in endpoints:
                    event = self.rpc.call(
                        endpoint,
                        method,
                        payload,
                        payload_bytes=payload_bytes,
                        timeout_us=self.request_timeout_us,
                    )
                    try:
                        reply: Tuple[str, Any] = yield event
                    except Exception as exc:  # timeout, unreachable, handler error
                        last_error = exc
                        stats["retries"] += 1
                        continue
                    self._preferred = index
                    return reply
                yield self.host.sim.timeout(self.retry_backoff_us)
            stats["failures"] += 1
            raise KvRequestFailed(
                f"{method} failed after {self.max_rounds} rounds: {last_error}"
            )
        finally:
            stats["inflight"] -= 1
