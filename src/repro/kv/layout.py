"""On-memory layout and codecs for the KV store.

Logical address space (§4.1: "all of these structures exist within the
replicated memory at predefined locations")::

    0            reserved (membership word, repro.core.membership)
    64           KV metadata: applied-sequence watermark (8 B)
    128          circular KV write-ahead log          --.
    ...                                                  | direct window
    direct_bytes index table (bucket-head pointers)    --'
    ...          block allocation bitmap
    ...          data blocks (one per key)

Everything from the index table down lives in the *encoded* zone when
erasure coding is on, aligned so that one data block is exactly one EC
block.  The KV WAL stays in the direct window — the paper stores logs
non-encoded (§5.1) and commits puts with a single RDMA round trip
(§4.2).

Data block wire format (``block_bytes`` = 16 + key + value)::

    next_ptr (8) | key_len (2) | val_len (2) | pad (4) | key | value

KV WAL slot format (``wal_slot_bytes`` = 24 + key + value)::

    seq (8) | term (4) | op (1) | pad (1) | key_len (2) | val_len (2)
    | pad (2) | crc (4) | key | value

Like the replicated-memory WAL, KV records carry the coordinator term so
recovery can discard a deposed coordinator's divergent uncommitted
records at the same sequence numbers.
"""

from __future__ import annotations

import struct
import zlib
from typing import NamedTuple, Optional

from repro.core.membership import RESERVED_BYTES

__all__ = [
    "BLOCK_HEADER_BYTES",
    "BlockImage",
    "KvLayout",
    "OP_DELETE",
    "OP_PUT",
    "WalRecord",
]

BLOCK_HEADER_BYTES = 16
_BLOCK_HEADER = struct.Struct("<QHH4x")

KV_WAL_HEADER_BYTES = 24
_WAL_HEADER = struct.Struct("<QIBxHH2xI")

OP_PUT = 1
OP_DELETE = 2

WATERMARK_OFFSET = RESERVED_BYTES
KV_WAL_OFFSET = RESERVED_BYTES + 64


class BlockImage(NamedTuple):
    """Decoded data block."""

    next_ptr: int
    key: bytes
    value: bytes


class WalRecord(NamedTuple):
    """Decoded KV WAL entry."""

    seq: int
    op: int
    key: bytes
    value: bytes
    term: int = 0


class KvLayout:
    """Address computations for one KV store instance."""

    def __init__(self, config):
        self.config = config
        block = config.block_bytes
        self.block_bytes = block
        self.wal_slot_bytes = KV_WAL_HEADER_BYTES + config.key_bytes + config.value_bytes
        self.wal_offset = KV_WAL_OFFSET
        wal_end = self.wal_offset + config.wal_entries * self.wal_slot_bytes
        self.direct_bytes = _round_up(wal_end, block)
        self.index_offset = self.direct_bytes
        self.index_bytes = _round_up(config.index_buckets * 8, block)
        self.bitmap_offset = self.index_offset + self.index_bytes
        self.bitmap_bytes = _round_up((config.max_keys + 7) // 8, block)
        self.blocks_offset = self.bitmap_offset + self.bitmap_bytes
        self.data_bytes = self.blocks_offset + config.max_keys * block

    # -- addresses -----------------------------------------------------------

    def wal_slot_addr(self, seq: int) -> int:
        """Logical address of the WAL slot for sequence number *seq*."""
        if seq < 1:
            raise ValueError(f"KV sequence numbers start at 1, got {seq}")
        return self.wal_offset + ((seq - 1) % self.config.wal_entries) * self.wal_slot_bytes

    def block_addr(self, block_number: int) -> int:
        """Logical address of data block *block_number*."""
        if not 0 <= block_number < self.config.max_keys:
            raise ValueError(f"block number {block_number} out of range")
        return self.blocks_offset + block_number * self.block_bytes

    def block_number(self, addr: int) -> int:
        """Inverse of :meth:`block_addr`."""
        offset = addr - self.blocks_offset
        if offset < 0 or offset % self.block_bytes:
            raise ValueError(f"{addr} is not a data block address")
        return offset // self.block_bytes

    def bucket_addr(self, bucket: int) -> int:
        """Logical address of an index-table bucket pointer."""
        return self.index_offset + bucket * 8

    def bucket_of(self, key: bytes) -> int:
        """Hash a key to its bucket (stable across processes)."""
        return zlib.crc32(key) & (self.config.index_buckets - 1)

    # -- block codec -----------------------------------------------------------

    def encode_block(self, image: BlockImage) -> bytes:
        """Serialise a data block (padded to the full block size)."""
        config = self.config
        if len(image.key) > config.key_bytes:
            raise ValueError(f"key of {len(image.key)}B exceeds {config.key_bytes}B")
        if len(image.value) > config.value_bytes:
            raise ValueError(
                f"value of {len(image.value)}B exceeds {config.value_bytes}B"
            )
        header = _BLOCK_HEADER.pack(image.next_ptr, len(image.key), len(image.value))
        key = image.key + bytes(config.key_bytes - len(image.key))
        value = image.value + bytes(config.value_bytes - len(image.value))
        return header + key + value

    def decode_block(self, raw: bytes) -> Optional[BlockImage]:
        """Parse a data block; None when lengths are implausible."""
        if len(raw) < self.block_bytes:
            return None
        next_ptr, key_len, val_len = _BLOCK_HEADER.unpack_from(raw)
        config = self.config
        if key_len > config.key_bytes or val_len > config.value_bytes:
            return None
        key = bytes(raw[BLOCK_HEADER_BYTES : BLOCK_HEADER_BYTES + key_len])
        value_start = BLOCK_HEADER_BYTES + config.key_bytes
        value = bytes(raw[value_start : value_start + val_len])
        return BlockImage(next_ptr, key, value)

    # -- WAL codec -----------------------------------------------------------

    def encode_wal_record(self, record: WalRecord) -> bytes:
        """Serialise a KV WAL entry (header + key + value, unpadded)."""
        config = self.config
        if len(record.key) > config.key_bytes:
            raise ValueError(f"key of {len(record.key)}B exceeds {config.key_bytes}B")
        if len(record.value) > config.value_bytes:
            raise ValueError(
                f"value of {len(record.value)}B exceeds {config.value_bytes}B"
            )
        crc = zlib.crc32(record.key + record.value) ^ (record.seq & 0xFFFFFFFF)
        header = _WAL_HEADER.pack(
            record.seq,
            record.term & 0xFFFFFFFF,
            record.op,
            len(record.key),
            len(record.value),
            crc,
        )
        return header + record.key + record.value

    def decode_wal_record(self, raw: bytes) -> Optional[WalRecord]:
        """Parse a WAL slot; None for empty, torn, or corrupt entries."""
        if len(raw) < KV_WAL_HEADER_BYTES:
            return None
        seq, term, op, key_len, val_len, crc = _WAL_HEADER.unpack_from(raw)
        if seq == 0 or op not in (OP_PUT, OP_DELETE):
            return None
        config = self.config
        if key_len > config.key_bytes or val_len > config.value_bytes:
            return None
        if KV_WAL_HEADER_BYTES + key_len + val_len > len(raw):
            return None
        key = bytes(raw[KV_WAL_HEADER_BYTES : KV_WAL_HEADER_BYTES + key_len])
        value = bytes(
            raw[KV_WAL_HEADER_BYTES + key_len : KV_WAL_HEADER_BYTES + key_len + val_len]
        )
        if zlib.crc32(key + value) ^ (seq & 0xFFFFFFFF) != crc:
            return None
        return WalRecord(seq, op, key, value, term)


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple
