"""Systematic Cauchy Reed-Solomon code.

``CauchyRSCode(k, m)`` turns a block into ``k`` data chunks plus ``m``
parity chunks; any ``k`` of the ``k + m`` survive-and-rebuild.  Sift EC
uses ``k = Fm + 1`` and ``m = Fm`` (§5.1): a write still commits on a
quorum of ``Fm + 1`` memory nodes, tolerates ``Fm`` failures, and stores
``(2Fm + 1) × B/(Fm + 1)`` bytes instead of ``(2Fm + 1) × B``.

The code is *systematic*: chunk ``i < k`` is a verbatim slice of the
block, which is why the coordinator can "prioritize reading from memory
nodes which store non-parity data to avoid the decoding cost" (§5.1).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.ec.matrix import cauchy_matrix, gf_mat_inv, gf_matmul, identity

__all__ = ["CauchyRSCode", "DecodeError"]


class DecodeError(Exception):
    """Not enough chunks (or inconsistent sizes) to rebuild the block."""


class CauchyRSCode:
    """Encoder/decoder for a fixed ``(data_shards, parity_shards)`` geometry."""

    def __init__(self, data_shards: int, parity_shards: int):
        if data_shards < 1:
            raise ValueError(f"need at least one data shard, got {data_shards}")
        if parity_shards < 0:
            raise ValueError(f"negative parity shards: {parity_shards}")
        if data_shards + parity_shards > 256:
            raise ValueError("GF(2^8) supports at most 256 total shards")
        self.data_shards = data_shards
        self.parity_shards = parity_shards
        self.total_shards = data_shards + parity_shards
        # Full encoding matrix: identity on top (systematic), Cauchy below.
        parity_rows = (
            cauchy_matrix(parity_shards, data_shards)
            if parity_shards
            else np.zeros((0, data_shards), dtype=np.uint8)
        )
        self.matrix = np.concatenate([identity(data_shards), parity_rows], axis=0)

    # -- geometry ------------------------------------------------------------

    def chunk_size(self, block_len: int) -> int:
        """Bytes per chunk for a block of *block_len* bytes."""
        return (block_len + self.data_shards - 1) // self.data_shards

    # -- encoding ------------------------------------------------------------

    def encode(self, block: bytes) -> List[bytes]:
        """Split *block* and return all ``k + m`` chunks in shard order."""
        size = self.chunk_size(len(block))
        padded = np.frombuffer(
            block + bytes(size * self.data_shards - len(block)), dtype=np.uint8
        )
        data = padded.reshape(self.data_shards, size)
        if self.parity_shards:
            parity = gf_matmul(self.matrix[self.data_shards :], data)
            shards = np.concatenate([data, parity], axis=0)
        else:
            shards = data
        return [shards[i].tobytes() for i in range(self.total_shards)]

    # -- decoding ------------------------------------------------------------

    def decode(self, chunks: Dict[int, bytes], block_len: int) -> bytes:
        """Rebuild the original block from any ``k`` chunks.

        *chunks* maps shard index to chunk bytes.  Raises
        :class:`DecodeError` when fewer than ``k`` chunks are supplied.
        """
        data = self._solve_data(chunks, block_len)
        return data.reshape(-1).tobytes()[:block_len]

    def reconstruct(self, chunks: Dict[int, bytes], block_len: int) -> List[bytes]:
        """Rebuild *all* shards (used for memory-node recovery, §5.1)."""
        data = self._solve_data(chunks, block_len)
        if self.parity_shards:
            parity = gf_matmul(self.matrix[self.data_shards :], data)
            shards = np.concatenate([data, parity], axis=0)
        else:
            shards = data
        return [shards[i].tobytes() for i in range(self.total_shards)]

    def _solve_data(self, chunks: Dict[int, bytes], block_len: int) -> np.ndarray:
        if block_len < 0:
            raise ValueError(f"negative block length: {block_len}")
        size = self.chunk_size(block_len)
        available = sorted(index for index in chunks if 0 <= index < self.total_shards)
        if len(available) < self.data_shards:
            raise DecodeError(
                f"need {self.data_shards} chunks, have {len(available)}"
            )
        chosen = available[: self.data_shards]
        # Fast path: all data shards present, nothing to invert.
        if chosen == list(range(self.data_shards)):
            rows = []
            for index in chosen:
                chunk = chunks[index]
                if len(chunk) != size:
                    raise DecodeError(
                        f"chunk {index} has {len(chunk)}B, expected {size}B"
                    )
                rows.append(np.frombuffer(chunk, dtype=np.uint8))
            return np.stack(rows)
        sub_matrix = self.matrix[chosen]
        inverse = gf_mat_inv(sub_matrix)
        rows = []
        for index in chosen:
            chunk = chunks[index]
            if len(chunk) != size:
                raise DecodeError(f"chunk {index} has {len(chunk)}B, expected {size}B")
            rows.append(np.frombuffer(chunk, dtype=np.uint8))
        return gf_matmul(inverse, np.stack(rows))

    def __repr__(self) -> str:
        return f"CauchyRSCode(k={self.data_shards}, m={self.parity_shards})"
