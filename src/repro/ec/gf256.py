"""GF(2^8) arithmetic.

The field of 256 elements with the AES/Rijndael-compatible reduction
polynomial ``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D) and generator 2.
Multiplication uses exp/log tables; the same tables back the vectorised
numpy kernels used by the Reed-Solomon encoder.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "EXP",
    "LOG",
    "MUL",
    "gf_add",
    "gf_sub",
    "gf_mul",
    "gf_div",
    "gf_inv",
    "gf_pow",
    "gf_mul_vec",
]

_POLY = 0x11D
_GENERATOR = 2

# exp table doubled in length so gf_mul can skip a modulo 255.
EXP = np.zeros(512, dtype=np.uint8)
LOG = np.zeros(256, dtype=np.int32)

_value = 1
for _power in range(255):
    EXP[_power] = _value
    LOG[_value] = _power
    _value <<= 1
    if _value & 0x100:
        _value ^= _POLY
for _power in range(255, 512):
    EXP[_power] = EXP[_power - 255]

# Full 256x256 product table (64 KiB).  ``MUL[a, b] == gf_mul(a, b)`` —
# one fancy-indexed row lookup replaces the log/exp + nonzero-mask dance
# in the vectorised kernels.
MUL = EXP[LOG[:, None] + LOG[None, :]].copy()
MUL[0, :] = 0
MUL[:, 0] = 0
MUL.setflags(write=False)


def gf_add(a: int, b: int) -> int:
    """Addition in GF(2^8) is XOR."""
    return (a ^ b) & 0xFF


def gf_sub(a: int, b: int) -> int:
    """Subtraction equals addition in characteristic 2."""
    return (a ^ b) & 0xFF


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements."""
    if a == 0 or b == 0:
        return 0
    return int(EXP[int(LOG[a]) + int(LOG[b])])


def gf_inv(a: int) -> int:
    """Multiplicative inverse; 0 has none."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(2^8)")
    return int(EXP[255 - int(LOG[a])])


def gf_div(a: int, b: int) -> int:
    """Divide *a* by *b*."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(2^8)")
    if a == 0:
        return 0
    return int(EXP[int(LOG[a]) - int(LOG[b]) + 255])


def gf_pow(a: int, exponent: int) -> int:
    """Raise *a* to an integer power (negative powers via the inverse)."""
    if a == 0:
        if exponent == 0:
            return 1
        if exponent < 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^8)")
        return 0
    log_a = int(LOG[a])
    return int(EXP[(log_a * exponent) % 255])


def gf_mul_vec(scalar: int, vec: np.ndarray) -> np.ndarray:
    """Multiply every byte of *vec* by *scalar* (vectorised)."""
    if scalar == 0:
        return np.zeros_like(vec)
    if scalar == 1:
        return vec.copy()
    return MUL[scalar][vec]
