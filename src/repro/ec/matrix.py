"""Matrix algebra over GF(2^8): multiply, invert, Cauchy construction.

All kernels go through the precomputed :data:`repro.ec.gf256.MUL`
product table — a row lookup ``MUL[coeff][vec]`` multiplies a whole
chunk by a scalar in one vectorised fancy-index, and an outer lookup
``MUL[factors[:, None], row[None, :]]`` eliminates every row of a
Gauss-Jordan column at once.  The scalar reference implementations live
in the equivalence tests (``tests/test_ec.py``), which drive both over
seeded random blocks.
"""

from __future__ import annotations

import numpy as np

from repro.ec.gf256 import EXP, LOG, MUL

__all__ = ["gf_matmul", "gf_mat_inv", "cauchy_matrix", "identity"]


def identity(n: int) -> np.ndarray:
    """The n-by-n identity matrix over the field."""
    return np.eye(n, dtype=np.uint8)


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2^8).

    XOR replaces summation; each coefficient's scalar-times-row product
    is a single table-row lookup.  Shapes follow numpy convention:
    (n, k) @ (k, m) -> (n, m).
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} @ {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for i in range(a.shape[0]):
        acc = out[i]
        row = a[i]
        for j in range(a.shape[1]):
            coeff = row[j]
            if coeff:
                acc ^= MUL[coeff][b[j]]
    return out


def gf_mat_inv(matrix: np.ndarray) -> np.ndarray:
    """Invert a square matrix with Gauss-Jordan elimination over the field.

    Raises ``np.linalg.LinAlgError`` on singular input so callers can use
    the same exception type they would with real-valued numpy.
    """
    matrix = np.asarray(matrix, dtype=np.uint8)
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    work = np.concatenate([matrix.copy(), identity(n)], axis=1).astype(np.uint8)
    for col in range(n):
        pivot_col = work[:, col]
        nonzero = np.flatnonzero(pivot_col[col:])
        if nonzero.size == 0:
            raise np.linalg.LinAlgError("matrix is singular over GF(2^8)")
        pivot_row = col + int(nonzero[0])
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
        # Scale the pivot row to make the pivot 1.
        inv_pivot = int(EXP[255 - int(LOG[work[col, col]])])
        work[col] = MUL[inv_pivot][work[col]]
        # Eliminate the column from every other row in one outer lookup.
        factors = work[:, col].copy()
        factors[col] = 0
        rows = np.flatnonzero(factors)
        if rows.size:
            work[rows] ^= MUL[factors[rows][:, None], work[col][None, :]]
    return work[:, n:].copy()


def cauchy_matrix(rows: int, cols: int) -> np.ndarray:
    """A rows-by-cols Cauchy matrix: ``C[i][j] = 1 / (x_i ^ y_j)``.

    ``x_i = i`` and ``y_j = rows + j`` are distinct field elements, so every
    square submatrix is invertible — the property that makes any Fm+1 of
    the 2Fm+1 chunks sufficient to rebuild a block.
    """
    if rows + cols > 256:
        raise ValueError(f"rows + cols must be <= 256, got {rows + cols}")
    x = np.arange(rows, dtype=np.int32)[:, None]
    y = rows + np.arange(cols, dtype=np.int32)[None, :]
    # x < rows <= y, so x ^ y is never zero and always invertible.
    return EXP[255 - LOG[x ^ y]].astype(np.uint8)
