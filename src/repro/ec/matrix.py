"""Matrix algebra over GF(2^8): multiply, invert, Cauchy construction."""

from __future__ import annotations

import numpy as np

from repro.ec.gf256 import EXP, LOG, gf_inv

__all__ = ["gf_matmul", "gf_mat_inv", "cauchy_matrix", "identity"]


def identity(n: int) -> np.ndarray:
    """The n-by-n identity matrix over the field."""
    return np.eye(n, dtype=np.uint8)


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2^8).

    Computed row-by-row with the exp/log tables; XOR replaces summation.
    Shapes follow numpy convention: (n, k) @ (k, m) -> (n, m).
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} @ {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for i in range(a.shape[0]):
        acc = np.zeros(b.shape[1], dtype=np.uint8)
        row = a[i]
        for j in range(a.shape[1]):
            coeff = int(row[j])
            if coeff == 0:
                continue
            col = b[j]
            nz = col != 0
            term = np.zeros_like(col)
            term[nz] = EXP[int(LOG[coeff]) + LOG[col[nz]]]
            acc ^= term
        out[i] = acc
    return out


def gf_mat_inv(matrix: np.ndarray) -> np.ndarray:
    """Invert a square matrix with Gauss-Jordan elimination over the field.

    Raises ``np.linalg.LinAlgError`` on singular input so callers can use
    the same exception type they would with real-valued numpy.
    """
    matrix = np.asarray(matrix, dtype=np.uint8)
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    work = np.concatenate([matrix.copy(), identity(n)], axis=1).astype(np.uint8)
    for col in range(n):
        pivot_row = None
        for row in range(col, n):
            if work[row, col] != 0:
                pivot_row = row
                break
        if pivot_row is None:
            raise np.linalg.LinAlgError("matrix is singular over GF(2^8)")
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
        # Scale the pivot row to make the pivot 1.
        inv_pivot = gf_inv(int(work[col, col]))
        log_inv = int(LOG[inv_pivot])
        row_vals = work[col]
        nz = row_vals != 0
        scaled = np.zeros_like(row_vals)
        scaled[nz] = EXP[log_inv + LOG[row_vals[nz]]]
        work[col] = scaled
        # Eliminate the column from every other row.
        for row in range(n):
            if row == col or work[row, col] == 0:
                continue
            factor = int(work[row, col])
            log_f = int(LOG[factor])
            pivot_vals = work[col]
            nz = pivot_vals != 0
            term = np.zeros_like(pivot_vals)
            term[nz] = EXP[log_f + LOG[pivot_vals[nz]]]
            work[row] ^= term
    return work[:, n:].copy()


def cauchy_matrix(rows: int, cols: int) -> np.ndarray:
    """A rows-by-cols Cauchy matrix: ``C[i][j] = 1 / (x_i ^ y_j)``.

    ``x_i = i`` and ``y_j = rows + j`` are distinct field elements, so every
    square submatrix is invertible — the property that makes any Fm+1 of
    the 2Fm+1 chunks sufficient to rebuild a block.
    """
    if rows + cols > 256:
        raise ValueError(f"rows + cols must be <= 256, got {rows + cols}")
    out = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            out[i, j] = gf_inv(i ^ (rows + j))
    return out
