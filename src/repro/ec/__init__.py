"""Erasure coding (Sift EC, §5.1).

Sift splits each block of size *B* into ``Fm + 1`` data chunks and derives
``Fm`` parity chunks with a Cauchy Reed-Solomon code, one chunk per memory
node; any ``Fm + 1`` chunks rebuild the block, so fault tolerance matches
plain replication while memory per node shrinks by a factor of ``Fm + 1``.

The code here is self-contained: :mod:`repro.ec.gf256` implements the
field, :mod:`repro.ec.matrix` the linear algebra over it, and
:mod:`repro.ec.reed_solomon` the systematic Cauchy-matrix code (the paper
uses the cm256 library [26]; this is a from-scratch equivalent).
"""

from repro.ec.gf256 import gf_add, gf_div, gf_inv, gf_mul, gf_pow
from repro.ec.reed_solomon import CauchyRSCode, DecodeError

__all__ = [
    "CauchyRSCode",
    "DecodeError",
    "gf_add",
    "gf_div",
    "gf_inv",
    "gf_mul",
    "gf_pow",
]
