"""Declarative fault schedules.

A :class:`FaultSchedule` is an ordered list of :class:`FaultAction`
records — *what* to break and *when*, with no reference to a live
cluster.  Schedules are plain data: they can be built fluently, printed,
compared, generated from a seed (:mod:`repro.chaos.explorer`), shrunk,
and replayed.  Applying one to a running cluster is the job of
:class:`repro.chaos.adapters.ChaosController`.

Targets may be symbolic: ``"leader"`` and ``"follower"`` resolve against
the cluster *at injection time*, so a schedule written before the first
election still crashes whoever actually won it.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, NamedTuple, Optional, Tuple

__all__ = ["FaultAction", "FaultSchedule", "LEADER", "FOLLOWER"]

LEADER = "leader"
"""Symbolic target: resolved to the current leader at injection time."""

FOLLOWER = "follower"
"""Symbolic target: the first live non-leader node at injection time."""


class FaultAction(NamedTuple):
    """One injection: at virtual time *at_us*, do *kind* with *args*.

    ``args`` is a tuple of plain values (ints, floats, strings, tuples)
    so actions hash, compare, and ``repr`` deterministically — the
    properties the explorer's shrinking and the runner's replay traces
    rely on.
    """

    at_us: float
    kind: str
    args: Tuple = ()

    @property
    def label(self) -> str:
        if self.kind == "probe":
            return str(self.args[0])
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.kind}({inner})"

    def identity(self) -> Tuple:
        """A hashable, address-free stand-in (probe callables -> label)."""
        if self.kind == "probe":
            return (self.at_us, self.kind, (self.args[0],))
        return (self.at_us, self.kind, self.args)


class FaultSchedule:
    """An immutable-ish, time-ordered fault plan with a fluent builder.

    Builder methods return ``self`` so schedules read as a sentence::

        FaultSchedule().crash_leader(200 * MS).heal(700 * MS)

    Actions keep their insertion order among equal timestamps (the sort
    is stable), matching :func:`repro.bench.runner.run_timeline`'s
    same-time semantics.
    """

    def __init__(self, actions: Iterable[FaultAction] = ()):
        self.actions: List[FaultAction] = list(actions)

    # -- introspection ---------------------------------------------------------

    def __iter__(self) -> Iterator[FaultAction]:
        return iter(self.sorted_actions())

    def __len__(self) -> int:
        return len(self.actions)

    def __repr__(self) -> str:
        inner = "; ".join(f"{a.at_us:.0f}us {a.label}" for a in self.sorted_actions())
        return f"<FaultSchedule [{inner}]>"

    def sorted_actions(self) -> List[FaultAction]:
        """Actions in injection order (stable under equal timestamps)."""
        return sorted(self.actions, key=lambda a: a.at_us)

    @property
    def duration_us(self) -> float:
        """Time of the last action (0 for an empty schedule)."""
        return max((a.at_us for a in self.actions), default=0.0)

    def signature(self) -> Tuple:
        """A hashable identity used by replay traces and shrinking."""
        return tuple(a.identity() for a in self.sorted_actions())

    def without(self, index: int) -> "FaultSchedule":
        """A copy minus the *index*-th sorted action (for shrinking)."""
        kept = self.sorted_actions()
        del kept[index]
        return FaultSchedule(kept)

    # -- builder: process faults ----------------------------------------------

    def add(self, at_us: float, kind: str, *args) -> "FaultSchedule":
        self.actions.append(FaultAction(float(at_us), kind, tuple(args)))
        return self

    def crash_leader(self, at_us: float) -> "FaultSchedule":
        """Kill whoever leads at *at_us* (coordinator / Raft leader)."""
        return self.add(at_us, "crash_node", LEADER)

    def crash_follower(self, at_us: float) -> "FaultSchedule":
        """Kill the first live non-leader consensus node."""
        return self.add(at_us, "crash_node", FOLLOWER)

    def crash_node(self, at_us: float, index: int) -> "FaultSchedule":
        """Kill consensus node *index* (CPU node / replica)."""
        return self.add(at_us, "crash_node", int(index))

    def crash_coordinator(
        self,
        at_us: float,
        shard: Optional[str] = None,
        ring_version: Optional[int] = None,
    ) -> "FaultSchedule":
        """Kill the coordinator of *shard*'s key range (sharded service).

        Ring-version-aware: *shard* may name a shard under any installed
        ring version (pass *ring_version* to pin which one the name was
        written against); at injection time the fault lands on whichever
        group owns that key range under the *then-current* ring, so a
        schedule written before a split/merge still hits the intended
        range deterministically.  ``shard=None`` targets the first
        shard.  On non-sharded systems this degrades to crashing the
        leader.
        """
        return self.add(at_us, "crash_coordinator", shard, ring_version)

    def restart_node(self, at_us: float, index: int) -> "FaultSchedule":
        """Restart consensus node *index* with fresh soft state."""
        return self.add(at_us, "restart_node", int(index))

    def restart_crashed(self, at_us: float) -> "FaultSchedule":
        """Restart every consensus node that is currently down."""
        return self.add(at_us, "restart_crashed")

    def crash_memory_node(self, at_us: float, index: int) -> "FaultSchedule":
        """Kill memory node *index* (Sift only)."""
        return self.add(at_us, "crash_memory_node", int(index))

    def restart_memory_node(self, at_us: float, index: int) -> "FaultSchedule":
        """Restart memory node *index*; the coordinator re-copies it."""
        return self.add(at_us, "restart_memory_node", int(index))

    # -- builder: network faults ----------------------------------------------

    def partition(self, at_us: float, side_a, side_b=None) -> "FaultSchedule":
        """Symmetric split.  Sides are host names, node indices, or the
        symbolic ``LEADER``; *side_b* defaults to "everyone else"."""
        a = tuple(side_a) if isinstance(side_a, (tuple, list)) else (side_a,)
        b = (
            tuple(side_b)
            if isinstance(side_b, (tuple, list))
            else ((side_b,) if side_b is not None else ())
        )
        return self.add(at_us, "partition", a, b)

    def partition_oneway(self, at_us: float, src, dsts=None) -> "FaultSchedule":
        """Asymmetric partition: traffic *from* src is cut, replies flow."""
        d = (
            tuple(dsts)
            if isinstance(dsts, (tuple, list))
            else ((dsts,) if dsts is not None else ())
        )
        return self.add(at_us, "partition_oneway", src, d)

    def isolate(self, at_us: float, target) -> "FaultSchedule":
        """Cut one host (or symbolic target) off from everyone."""
        return self.add(at_us, "isolate", target)

    def heal(self, at_us: float) -> "FaultSchedule":
        """Remove every partition created so far."""
        return self.add(at_us, "heal")

    # -- builder: message faults ----------------------------------------------

    def drop_messages(
        self, at_us: float, fraction: float, streams: Optional[Tuple[str, ...]] = None
    ) -> "FaultSchedule":
        """Drop a seeded random *fraction* of matching messages."""
        return self.add(at_us, "drop_messages", float(fraction), streams)

    def delay_messages(
        self,
        at_us: float,
        extra_us: float,
        fraction: float = 1.0,
        streams: Optional[Tuple[str, ...]] = None,
    ) -> "FaultSchedule":
        """Add *extra_us* of latency to a fraction of matching messages.

        Note RC queue pairs never reorder (:meth:`Rnic.ordered_deliver`
        clamps arrivals); delaying the ``"rdma"`` stream would break that
        model invariant, so pass explicit *streams* that exclude it —
        the default targets RPC traffic only.
        """
        chosen = streams if streams is not None else ("net", "rpc")
        return self.add(at_us, "delay_messages", float(extra_us), float(fraction), chosen)

    def duplicate_messages(
        self, at_us: float, fraction: float, streams: Optional[Tuple[str, ...]] = None
    ) -> "FaultSchedule":
        """Deliver an extra copy of a fraction of matching messages.

        Duplicating the ``"rdma"`` stream is safe: WRITEs/READs are
        idempotent and a re-applied CAS fails its compare — exactly how
        a retransmitted one-sided verb behaves on real hardware.
        """
        return self.add(at_us, "duplicate_messages", float(fraction), streams)

    def clear_message_faults(self, at_us: float) -> "FaultSchedule":
        """Stop dropping/delaying/duplicating from *at_us* on."""
        return self.add(at_us, "clear_message_faults")

    # -- builder: device faults -----------------------------------------------

    def fail_nic(self, at_us: float, target) -> "FaultSchedule":
        """Push the target host's NIC queue pairs into the error state."""
        return self.add(at_us, "fail_nic", target)

    def restore_nic(self, at_us: float, target) -> "FaultSchedule":
        """Recover a previously failed NIC."""
        return self.add(at_us, "restore_nic", target)

    def stall_cpu(
        self, at_us: float, target, duration_us: float, cores: int = 1
    ) -> "FaultSchedule":
        """Steal *cores* of the target host's CPU for *duration_us*
        (models a noisy neighbour / GC pause, not a failure)."""
        return self.add(at_us, "stall_cpu", target, float(duration_us), int(cores))

    # -- builder: probes --------------------------------------------------------

    def probe(self, at_us: float, fn: Callable, label: str = "probe") -> "FaultSchedule":
        """Run ``fn(cluster)`` at *at_us* — measurement hooks, not faults.

        The callable makes the schedule unhashable for exact comparison;
        :meth:`signature` represents it by *label*, so name probes
        distinctly when traces must distinguish them.
        """
        self.actions.append(FaultAction(float(at_us), "probe", (label, fn)))
        return self

    # -- interop ----------------------------------------------------------------

    @classmethod
    def from_failure_trace(cls, events, machines_per_group: int = 4) -> "FaultSchedule":
        """Lift a :mod:`repro.cluster.trace` machine-failure trace into a
        schedule of ``crash_machine`` actions (times in seconds become
        microseconds).  The exact source timestamp rides along in the
        args — seconds->µs->seconds is lossy in floats, and the
        backup-pool replay must be bit-identical to the raw trace."""
        schedule = cls()
        for event in events:
            schedule.add(
                event.time_s * 1e6, "crash_machine", int(event.machine), event.time_s
            )
        return schedule

    def to_failure_trace(self):
        """Inverse of :meth:`from_failure_trace` (exact round trip)."""
        from repro.cluster.trace import FailureEvent

        return [
            FailureEvent(a.args[1] if len(a.args) > 1 else a.at_us / 1e6, a.args[0])
            for a in self.sorted_actions()
            if a.kind == "crash_machine"
        ]

    def to_timeline_events(self):
        """Render as ``(at_us, label, fn)`` triples for
        :func:`repro.bench.runner.run_timeline`.  A single controller is
        created lazily against whatever cluster the runner passes in, so
        benchmarks keep their driver unchanged."""
        from repro.chaos.adapters import ChaosController

        controllers = {}

        def apply(action: FaultAction):
            def fn(cluster):
                controller = controllers.get(id(cluster))
                if controller is None:
                    controller = ChaosController.for_cluster(cluster)
                    controllers[id(cluster)] = controller
                controller.apply(action)

            return fn

        return [(a.at_us, a.label, apply(a)) for a in self.sorted_actions()]
