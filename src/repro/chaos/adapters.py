"""Cluster adapters: one fault surface over Sift, Raft-R, and EPaxos.

The chaos layer never touches protocol internals directly.  Each system
exposes the same small surface — crash/restart by index or symbolic
role, who leads (and at what term), readiness — through a
:class:`ClusterAdapter`; a :class:`ChaosController` then applies
:class:`~repro.chaos.schedule.FaultAction` records to the adapter, the
fabric's partition machinery, the per-host NICs, and the message-chaos
interceptor.  Benchmarks, the matrix suite, and the random explorer all
inject through this one path.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.chaos.faults import MessageChaos
from repro.chaos.schedule import FOLLOWER, LEADER, FaultAction
from repro.net.partition import PartitionController
from repro.sim.units import MS

__all__ = [
    "UnsupportedFault",
    "ClusterAdapter",
    "SiftAdapter",
    "ShardedAdapter",
    "RaftAdapter",
    "EPaxosAdapter",
    "ChaosController",
    "adapter_for",
]


class UnsupportedFault(Exception):
    """The schedule asked this system for a fault it cannot model."""


class ClusterAdapter:
    """Uniform fault/observation surface over one running cluster."""

    kind = "generic"
    leader_based = True
    """False for leaderless protocols; leader-uniqueness checks skip them."""

    durable_across_crash = True
    """Whether an acked write survives any single tolerated crash.  EPaxos'
    asynchronous commit announcements make this False there (§6.3.2
    caveat): the runner downgrades linearizability to a no-phantom-value
    check for such systems under crash faults."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.fabric = cluster.fabric
        self.sim = cluster.fabric.sim

    # -- topology ---------------------------------------------------------------

    def nodes(self) -> List:
        """The consensus (client-facing) nodes, crashable by index."""
        raise NotImplementedError

    def node_host(self, index: int):
        return self.nodes()[index].host

    def server_host_names(self) -> List[str]:
        """Every host the cluster itself runs on (no clients)."""
        return [node.host.name for node in self.nodes()]

    # -- observation ------------------------------------------------------------

    def leaders(self) -> List[Tuple[str, int]]:
        """``(host_name, term)`` for every node that believes it leads."""
        return []

    def leader_index(self) -> Optional[int]:
        return None

    def follower_index(self) -> Optional[int]:
        """The first live node that is not the leader."""
        leader = self.leader_index()
        for index, node in enumerate(self.nodes()):
            if index != leader and node.host.alive:
                return index
        return None

    def is_serving(self) -> bool:
        raise NotImplementedError

    def wait_ready(self, timeout_us: Optional[float] = None):
        """Process: poll until the cluster serves requests."""
        deadline = None if timeout_us is None else self.sim.now + timeout_us
        while not self.is_serving():
            if deadline is not None and self.sim.now >= deadline:
                raise TimeoutError(
                    f"{self.kind} cluster not serving after {timeout_us}us"
                )
            yield self.sim.timeout(1 * MS)

    # -- faults -----------------------------------------------------------------

    def crash_node(self, index: int) -> None:
        raise NotImplementedError

    def restart_node(self, index: int) -> None:
        raise NotImplementedError

    def restart_crashed(self) -> None:
        for index, node in enumerate(self.nodes()):
            if not node.host.alive:
                self.restart_node(index)

    def crash_memory_node(self, index: int) -> None:
        raise UnsupportedFault(f"{self.kind} has no memory nodes")

    def restart_memory_node(self, index: int) -> None:
        raise UnsupportedFault(f"{self.kind} has no memory nodes")

    def crash_coordinator(self, shard=None, ring_version=None) -> None:
        """Kill the coordinator owning *shard*'s key range.

        Single-group systems ignore the shard name and crash the
        leader; the sharded adapter resolves it ring-version-aware.
        """
        index = self.leader_index()
        if index is None:
            raise UnsupportedFault("no live leader to target")
        self.crash_node(index)


class SiftAdapter(ClusterAdapter):
    """Sift: CPU nodes lead, memory nodes are passive remote memory."""

    kind = "sift"

    def nodes(self):
        return self.cluster.cpu_nodes

    def server_host_names(self):
        return [n.host.name for n in self.cluster.cpu_nodes] + [
            m.host.name for m in self.cluster.memory_nodes
        ]

    def leaders(self):
        return [
            (node.host.name, node.term)
            for node in self.cluster.cpu_nodes
            if node.is_coordinator and node.host.alive
        ]

    def leader_index(self):
        for index, node in enumerate(self.cluster.cpu_nodes):
            if node.is_coordinator and node.host.alive:
                return index
        return None

    def is_serving(self):
        return self.cluster.serving_coordinator() is not None

    def crash_node(self, index):
        self.cluster.crash_cpu_node(index)

    def restart_node(self, index):
        self.cluster.restart_cpu_node(index)

    def restart_crashed(self):
        for index, node in enumerate(self.cluster.cpu_nodes):
            if not node.host.alive:
                self.cluster.restart_cpu_node(index)
        for index, mem in enumerate(self.cluster.memory_nodes):
            if not mem.host.alive:
                self.cluster.restart_memory_node(index)

    def crash_memory_node(self, index):
        self.cluster.crash_memory_node(index)

    def restart_memory_node(self, index):
        self.cluster.restart_memory_node(index)


class ShardedAdapter(ClusterAdapter):
    """The sharded KV service: G groups, each with its own coordinator.

    G simultaneous coordinators are legitimate here, so the global
    leader-uniqueness invariant does not apply (``leader_based=False``);
    per-group uniqueness is enforced inside each group's election.
    Nodes are addressed by flattened index across shards (in shard
    order, promoted backups included), and readiness means *every*
    shard serves — after a coordinator crash, liveness therefore
    requires the shared backup pool to actually promote.
    """

    kind = "sharded"
    leader_based = False

    def nodes(self):
        return self.cluster.cpu_nodes

    def _memory_nodes(self):
        return [m for group in self.cluster.groups for m in group.memory_nodes]

    def server_host_names(self):
        return [n.host.name for n in self.cluster.cpu_nodes] + [
            m.host.name for m in self._memory_nodes()
        ]

    def leaders(self):
        return [
            (node.host.name, node.term)
            for node in self.cluster.cpu_nodes
            if node.is_coordinator and node.host.alive
        ]

    def leader_index(self):
        for index, node in enumerate(self.cluster.cpu_nodes):
            if node.is_coordinator and node.host.alive:
                return index
        return None

    def is_serving(self):
        return all(
            group.serving_coordinator() is not None for group in self.cluster.groups
        )

    def crash_node(self, index):
        self.nodes()[index].crash()

    def restart_node(self, index):
        self.nodes()[index].restart()

    def restart_crashed(self):
        for node in self.cluster.cpu_nodes:
            if not node.host.alive:
                node.restart()
        for mem in self._memory_nodes():
            if not mem.host.alive:
                mem.restart()

    def crash_memory_node(self, index):
        self._memory_nodes()[index].crash()

    def restart_memory_node(self, index):
        self._memory_nodes()[index].restart()

    def crash_coordinator(self, shard=None, ring_version=None):
        """Ring-version-aware coordinator kill for one key range.

        A fault scheduled against a shard name before a split/merge is
        resolved through :meth:`ShardedKvService.resolve_shard`, so it
        lands on whichever group owns the *intended key range* under
        the current ring — deterministically, whatever topology changes
        happened since the schedule was written.
        """
        self.cluster.crash_coordinator(shard=shard, ring_version=ring_version)


class RaftAdapter(ClusterAdapter):
    """Raft-R: 2F+1 identical replicas, any may lead."""

    kind = "raft"

    def nodes(self):
        return self.cluster.nodes

    def leaders(self):
        return [
            (node.host.name, node.term)
            for node in self.cluster.nodes
            if node.role == "leader" and node.host.alive
        ]

    def leader_index(self):
        for index, node in enumerate(self.cluster.nodes):
            if node.role == "leader" and node.host.alive:
                return index
        return None

    def is_serving(self):
        return self.cluster.leader() is not None

    def crash_node(self, index):
        self.cluster.nodes[index].crash()

    def restart_node(self, index):
        self.cluster.nodes[index].restart()


class EPaxosAdapter(ClusterAdapter):
    """EPaxos: leaderless; "leader" faults target the lowest live replica
    (the command leader most client traffic lands on)."""

    kind = "epaxos"
    leader_based = False
    durable_across_crash = False

    def nodes(self):
        return self.cluster.replicas

    def leader_index(self):
        for index, replica in enumerate(self.cluster.replicas):
            if replica.host.alive:
                return index
        return None

    def is_serving(self):
        # A fast-path quorum (F + floor((F+1)/2)) must be up to commit.
        live = sum(1 for r in self.cluster.replicas if r.host.alive)
        return live >= self.cluster.config.fast_quorum

    def crash_node(self, index):
        self.cluster.replicas[index].crash()

    def restart_node(self, index):
        self.cluster.replicas[index].restart()


def adapter_for(cluster) -> ClusterAdapter:
    """Pick the adapter for a built cluster (duck-typed, no isinstance
    on client code paths: benchmarks build clusters through SystemSpec)."""
    if hasattr(cluster, "groups") and hasattr(cluster, "pool"):
        return ShardedAdapter(cluster)
    if hasattr(cluster, "memory_nodes") and hasattr(cluster, "serving_coordinator"):
        return SiftAdapter(cluster)
    if hasattr(cluster, "replicas"):
        return EPaxosAdapter(cluster)
    if hasattr(cluster, "nodes") and hasattr(cluster, "leader"):
        return RaftAdapter(cluster)
    raise TypeError(f"no chaos adapter for {type(cluster).__name__}")


class ChaosController:
    """Applies :class:`FaultAction` records to one live cluster."""

    def __init__(self, adapter: ClusterAdapter):
        self.adapter = adapter
        self.fabric = adapter.fabric
        self.partitions = PartitionController(self.fabric)
        self.messages = MessageChaos(self.fabric)
        self.applied: List[Tuple[float, str]] = []

    @classmethod
    def for_cluster(cls, cluster) -> "ChaosController":
        return cls(adapter_for(cluster))

    # -- target resolution -------------------------------------------------------

    def _index(self, target) -> int:
        """Resolve a node target to an index, at injection time."""
        if target == LEADER:
            index = self.adapter.leader_index()
            if index is None:
                raise UnsupportedFault("no live leader to target")
            return index
        if target == FOLLOWER:
            index = self.adapter.follower_index()
            if index is None:
                raise UnsupportedFault("no live follower to target")
            return index
        return int(target)

    def _host_name(self, target) -> str:
        if isinstance(target, str) and target not in (LEADER, FOLLOWER):
            return target
        if isinstance(target, str):
            return self.adapter.node_host(self._index(target)).name
        return self.adapter.node_host(int(target)).name

    def _side(self, side) -> List[str]:
        return [self._host_name(member) for member in side]

    def _other_side(self, side: List[str]) -> List[str]:
        return [name for name in self.adapter.server_host_names() if name not in side]

    # -- application --------------------------------------------------------------

    def apply(self, action: FaultAction) -> None:
        """Inject one action now; records it in :attr:`applied`."""
        handler = getattr(self, f"_do_{action.kind}", None)
        if handler is None:
            raise UnsupportedFault(f"unknown fault kind: {action.kind}")
        handler(*action.args)
        self.applied.append((self.adapter.sim.now, action.label))

    def _do_crash_node(self, target):
        self.adapter.crash_node(self._index(target))

    def _do_crash_coordinator(self, shard, ring_version):
        self.adapter.crash_coordinator(shard=shard, ring_version=ring_version)

    def _do_restart_node(self, index):
        self.adapter.restart_node(int(index))

    def _do_restart_crashed(self):
        self.adapter.restart_crashed()

    def _do_crash_memory_node(self, index):
        self.adapter.crash_memory_node(int(index))

    def _do_restart_memory_node(self, index):
        self.adapter.restart_memory_node(int(index))

    def _do_partition(self, side_a, side_b):
        a = self._side(side_a)
        b = self._side(side_b) if side_b else self._other_side(a)
        self.partitions.split(a, b)

    def _do_partition_oneway(self, src, dsts):
        sources = self._side(src if isinstance(src, tuple) else (src,))
        destinations = self._side(dsts) if dsts else self._other_side(sources)
        self.partitions.split_oneway(sources, destinations)

    def _do_isolate(self, target):
        self.partitions.isolate(self._host_name(target))

    def _do_heal(self):
        self.partitions.heal()

    def _do_drop_messages(self, fraction, streams):
        self.messages.set_drop(fraction, streams)

    def _do_delay_messages(self, extra_us, fraction, streams):
        self.messages.set_delay(extra_us, fraction, streams)

    def _do_duplicate_messages(self, fraction, streams):
        self.messages.set_duplicate(fraction, streams)

    def _do_clear_message_faults(self):
        self.messages.clear()

    def _do_fail_nic(self, target):
        nic = self.fabric.host(self._host_name(target)).services.get("rnic")
        if nic is None:
            raise UnsupportedFault(f"host {target} has no RDMA NIC")
        nic.fail_queues()

    def _do_restore_nic(self, target):
        nic = self.fabric.host(self._host_name(target)).services.get("rnic")
        if nic is None:
            raise UnsupportedFault(f"host {target} has no RDMA NIC")
        nic.restore_queues()

    def _do_stall_cpu(self, target, duration_us, cores):
        host = self.fabric.host(self._host_name(target))
        for _core in range(int(cores)):
            # Occupy one core with an un-preemptable burst: every queued
            # protocol task behind it waits, exactly like a GC pause.
            host.cpu.execute(duration_us)

    def _do_probe(self, label, fn):
        fn(self.adapter.cluster)

    def heal_everything(self) -> None:
        """Clear partitions and message faults (crashed nodes stay down)."""
        self.partitions.heal()
        self.messages.clear()
