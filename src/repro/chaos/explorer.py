"""Random schedule exploration and shrinking.

``random_schedule(seed, space)`` expands one integer into a full
:class:`~repro.chaos.schedule.FaultSchedule` — same seed, same schedule,
no global state — so a CI failure is replayed by pasting the printed
seed back in.  ``shrink`` then greedily removes actions while the
failure persists, yielding a minimal reproducer (the Derecho
runtime-checking lesson: a 3-action trace is a bug report, a 40-action
one is noise).
"""

from __future__ import annotations

import random
import sys
from typing import Callable, List, NamedTuple, Optional

from repro.chaos.runner import ChaosError, ChaosRunner
from repro.chaos.schedule import FOLLOWER, LEADER, FaultSchedule
from repro.sim.units import MS

__all__ = ["ChaosSpace", "random_schedule", "shrink", "ScheduleExplorer", "Failure"]


class ChaosSpace(NamedTuple):
    """What the generator is allowed to break."""

    nodes: int
    """Consensus-node count (crash/restart indices are drawn below this)."""

    memory_nodes: int = 0
    """Sift memory-node count (0 disables memory-node faults)."""

    horizon_us: float = 1_000 * MS
    """Actions are placed in (0, horizon]."""

    min_actions: int = 2
    max_actions: int = 5

    allow_message_faults: bool = True
    allow_partitions: bool = True

    max_concurrent_crashes: int = 1
    """Never exceed the tolerated failure count mid-schedule."""


def random_schedule(seed: int, space: ChaosSpace) -> FaultSchedule:
    """Deterministically expand *seed* into a schedule.

    The generator tracks how many nodes are currently down and heals /
    restarts everything it broke before the horizon, so every generated
    schedule ends in a configuration the cluster can recover from —
    liveness failures then indicate protocol bugs, not impossible asks.
    """
    rng = random.Random(seed)
    schedule = FaultSchedule()
    count = rng.randint(space.min_actions, space.max_actions)
    down: List[object] = []  # node targets currently crashed
    mem_down: List[int] = []
    partitioned = False
    noisy = False

    kinds = ["crash"]
    if space.allow_partitions:
        kinds += ["partition", "partition_oneway", "isolate"]
    if space.allow_message_faults:
        kinds += ["drop", "duplicate", "delay"]
    if space.memory_nodes:
        kinds += ["crash_memory"]

    times = sorted(
        rng.uniform(0.05 * space.horizon_us, 0.75 * space.horizon_us)
        for _ in range(count)
    )
    for at_us in times:
        kind = rng.choice(kinds)
        if kind == "crash" and len(down) < space.max_concurrent_crashes:
            target = rng.choice([LEADER, FOLLOWER])
            schedule.add(at_us, "crash_node", target)
            down.append(target)
        elif kind == "crash_memory" and len(mem_down) < (space.memory_nodes - 1) // 2:
            index = rng.randrange(space.memory_nodes)
            if index not in mem_down:
                schedule.crash_memory_node(at_us, index)
                mem_down.append(index)
        elif kind == "partition" and not partitioned:
            schedule.partition(at_us, (rng.choice([LEADER, FOLLOWER]),))
            partitioned = True
        elif kind == "partition_oneway" and not partitioned:
            schedule.partition_oneway(at_us, rng.choice([LEADER, FOLLOWER]))
            partitioned = True
        elif kind == "isolate" and not partitioned:
            schedule.isolate(at_us, rng.choice([LEADER, FOLLOWER]))
            partitioned = True
        elif kind == "drop":
            schedule.drop_messages(at_us, rng.uniform(0.05, 0.3))
            noisy = True
        elif kind == "duplicate":
            schedule.duplicate_messages(at_us, rng.uniform(0.05, 0.3), ("rdma",))
            noisy = True
        elif kind == "delay":
            schedule.delay_messages(at_us, rng.uniform(100.0, 2_000.0), 0.5)
            noisy = True

    # Undo everything so recovery is always possible.
    cleanup_at = 0.8 * space.horizon_us
    if noisy:
        schedule.clear_message_faults(cleanup_at)
    if partitioned:
        schedule.heal(cleanup_at)
    if down or mem_down:
        schedule.restart_crashed(0.9 * space.horizon_us)
    return schedule


def shrink(
    schedule: FaultSchedule,
    still_fails: Callable[[FaultSchedule], bool],
    max_rounds: int = 10,
) -> FaultSchedule:
    """Greedily drop actions while *still_fails* keeps returning True.

    Deterministic: actions are tried back-to-front (later actions are
    likelier to be cleanup noise), restarting after each successful
    removal, until a fixpoint or *max_rounds*.
    """
    current = FaultSchedule(schedule.sorted_actions())
    for _round in range(max_rounds):
        removed = False
        for index in range(len(current) - 1, -1, -1):
            candidate = current.without(index)
            if still_fails(candidate):
                current = candidate
                removed = True
                break
        if not removed:
            break
    return current


class Failure(NamedTuple):
    """One reproducible failing interleaving."""

    seed: int
    schedule: FaultSchedule
    minimal: FaultSchedule
    error: str

    def replay_hint(self) -> str:
        return (
            f"replay with: random_schedule(seed={self.seed}, space=...) — "
            f"minimal reproducer: {self.minimal!r}"
        )


class ScheduleExplorer:
    """Run randomly generated schedules until one breaks an invariant."""

    def __init__(
        self,
        build: Callable,
        space: ChaosSpace,
        runner_kwargs: Optional[dict] = None,
    ):
        self.build = build
        self.space = space
        self.runner_kwargs = dict(runner_kwargs or {})

    def _error_for(self, schedule: FaultSchedule, seed: int) -> Optional[str]:
        runner = ChaosRunner(self.build, schedule, seed=seed, **self.runner_kwargs)
        try:
            runner.run()
        except ChaosError as exc:
            return str(exc)
        return None

    def run_seed(self, seed: int) -> Optional[Failure]:
        """Generate, run, and (on failure) shrink one seed's schedule."""
        schedule = random_schedule(seed, self.space)
        error = self._error_for(schedule, seed)
        if error is None:
            return None
        minimal = shrink(
            schedule, lambda candidate: self._error_for(candidate, seed) is not None
        )
        return Failure(seed=seed, schedule=schedule, minimal=minimal, error=error)

    def explore(self, seeds) -> Optional[Failure]:
        """Run each seed; return the first failure (printing its replay
        seed so CI logs always carry the reproducer) or None."""
        for seed in seeds:
            failure = self.run_seed(seed)
            if failure is not None:
                print(
                    f"CHAOS-EXPLORER-FAILURE seed={failure.seed}", file=sys.stderr
                )
                print(failure.replay_hint(), file=sys.stderr)
                return failure
        return None
