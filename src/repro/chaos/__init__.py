"""Deterministic fault injection (the repo's chaos layer).

Everything failure-related flows through here: declarative
:class:`FaultSchedule` plans, per-system :mod:`adapters
<repro.chaos.adapters>`, the invariant-checking :class:`ChaosRunner`,
and a seeded :mod:`random-schedule explorer <repro.chaos.explorer>`.
Benchmarks (Figs. 11–12), the fault-matrix regression suite, and the
backup-pool trace replay all inject through this one mechanism, so a
failure anywhere is replayable from a single seed.
"""

from repro.chaos.adapters import (
    ChaosController,
    ClusterAdapter,
    EPaxosAdapter,
    RaftAdapter,
    ShardedAdapter,
    SiftAdapter,
    UnsupportedFault,
    adapter_for,
)
from repro.chaos.explorer import ChaosSpace, Failure, ScheduleExplorer, random_schedule, shrink
from repro.chaos.faults import MessageChaos
from repro.chaos.invariants import (
    InvariantViolation,
    LeaderMonitor,
    check_linearizable,
    check_no_phantoms,
)
from repro.chaos.runner import ChaosError, ChaosResult, ChaosRunner
from repro.chaos.schedule import FOLLOWER, LEADER, FaultAction, FaultSchedule

__all__ = [
    "FaultAction",
    "FaultSchedule",
    "LEADER",
    "FOLLOWER",
    "ChaosController",
    "ClusterAdapter",
    "SiftAdapter",
    "ShardedAdapter",
    "RaftAdapter",
    "EPaxosAdapter",
    "UnsupportedFault",
    "adapter_for",
    "MessageChaos",
    "InvariantViolation",
    "LeaderMonitor",
    "check_linearizable",
    "check_no_phantoms",
    "ChaosError",
    "ChaosResult",
    "ChaosRunner",
    "ChaosSpace",
    "Failure",
    "ScheduleExplorer",
    "random_schedule",
    "shrink",
]
