"""Seeded message-level faults, installed as a fabric interceptor.

One :class:`MessageChaos` per fabric draws every probabilistic decision
from the dedicated ``"chaos:net"`` RNG stream, so

* enabling message chaos never perturbs the draws of any other stream
  (latency models, election back-offs, workload generators), and
* the same seed over the same message sequence makes identical
  drop/delay/duplicate decisions — failing runs replay exactly.

The interceptor is only registered while at least one effect is active;
a schedule that injects no message faults leaves the fabric's delivery
path bit-identical to the un-instrumented one.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.fabric import Fabric, PASS, Verdict

__all__ = ["MessageChaos"]


class MessageChaos:
    """Drops, delays, and duplicates messages with seeded randomness."""

    def __init__(self, fabric: Fabric):
        self.fabric = fabric
        self.rng = fabric.rng.stream("chaos:net")
        self.drop_fraction = 0.0
        self.drop_streams: Optional[Tuple[str, ...]] = None  # None: all streams
        self.delay_us = 0.0
        self.delay_fraction = 0.0
        self.delay_streams: Optional[Tuple[str, ...]] = None
        self.duplicate_fraction = 0.0
        self.duplicate_streams: Optional[Tuple[str, ...]] = None
        self._installed = False

    # -- configuration ---------------------------------------------------------

    def set_drop(self, fraction: float, streams: Optional[Tuple[str, ...]] = None) -> None:
        self.drop_fraction = fraction
        self.drop_streams = tuple(streams) if streams else None
        self._sync()

    def set_delay(
        self,
        extra_us: float,
        fraction: float = 1.0,
        streams: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self.delay_us = extra_us
        self.delay_fraction = fraction if extra_us > 0 else 0.0
        self.delay_streams = tuple(streams) if streams else None
        self._sync()

    def set_duplicate(
        self, fraction: float, streams: Optional[Tuple[str, ...]] = None
    ) -> None:
        self.duplicate_fraction = fraction
        self.duplicate_streams = tuple(streams) if streams else None
        self._sync()

    def clear(self) -> None:
        """Stop all message faults and uninstall the interceptor."""
        self.drop_fraction = 0.0
        self.delay_fraction = 0.0
        self.delay_us = 0.0
        self.duplicate_fraction = 0.0
        self._sync()

    @property
    def active(self) -> bool:
        return (
            self.drop_fraction > 0
            or (self.delay_fraction > 0 and self.delay_us > 0)
            or self.duplicate_fraction > 0
        )

    def _sync(self) -> None:
        """Install/uninstall so an idle MessageChaos costs nothing."""
        if self.active and not self._installed:
            self.fabric.add_interceptor(self)
            self._installed = True
        elif not self.active and self._installed:
            self.fabric.remove_interceptor(self)
            self._installed = False

    # -- the interceptor ---------------------------------------------------------

    @staticmethod
    def _matches(stream: str, streams: Optional[Tuple[str, ...]]) -> bool:
        return streams is None or stream in streams

    def __call__(self, src: str, dst: str, size_bytes: int, stream: str) -> Verdict:
        drop = False
        extra = 0.0
        duplicates = 0
        if self.drop_fraction > 0 and self._matches(stream, self.drop_streams):
            drop = self.rng.random() < self.drop_fraction
        if (
            self.delay_fraction > 0
            and self.delay_us > 0
            and self._matches(stream, self.delay_streams)
        ):
            if self.delay_fraction >= 1.0 or self.rng.random() < self.delay_fraction:
                extra = self.delay_us
        if self.duplicate_fraction > 0 and self._matches(stream, self.duplicate_streams):
            if self.rng.random() < self.duplicate_fraction:
                duplicates = 1
        if not (drop or extra or duplicates):
            return PASS
        return Verdict(drop=drop, extra_delay_us=extra, duplicates=duplicates)
