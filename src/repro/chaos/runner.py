"""ChaosRunner: compose a fault schedule with a workload and check it.

One run = one fresh simulator.  The runner

1. builds the cluster from a ``build(fabric)`` callable with RNG streams
   derived from *seed*,
2. starts a small closed-loop KV workload whose every operation is
   recorded as a :class:`~repro.bench.lincheck.Op`,
3. applies the :class:`~repro.chaos.schedule.FaultSchedule` action by
   action at its virtual times, re-checking leader uniqueness after
   every injection,
4. demands eventual liveness — after the schedule (plus residual
   partitions healed), the cluster must serve again within a deadline —
5. reads back every key and checks the full history: per-key
   linearizability for systems whose crash model preserves acked writes,
   a no-phantom-values check otherwise.

Failures raise :class:`ChaosError` whose message embeds the seed and
the injection trace, so any run replays from one integer.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional, Tuple

from repro.bench.lincheck import History, Op
from repro.chaos.adapters import ChaosController, adapter_for
from repro.chaos.invariants import (
    InvariantViolation,
    LeaderMonitor,
    check_linearizable,
    check_no_phantoms,
)
from repro.chaos.schedule import FaultSchedule
from repro.compat import resolve_us_kwargs
from repro.kv.client import KvClient, KvRequestFailed
from repro.net.fabric import Fabric
from repro.obs import state as obs_state
from repro.obs.flight import FlightRecorder, maybe_postmortem
from repro.obs.publish import publish_run
from repro.obs.trace import set_tracer
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS, SEC

__all__ = ["ChaosError", "ChaosResult", "ChaosRunner"]


class ChaosError(AssertionError):
    """An invariant failed; carries everything needed to replay."""

    def __init__(self, message: str, seed: int, trace: Tuple):
        super().__init__(
            f"{message}\n  replay: seed={seed}\n  injected: "
            + (" | ".join(f"{t / 1e3:.1f}ms {label}" for t, label in trace) or "(nothing)")
        )
        self.seed = seed
        self.trace = trace


class ChaosResult(NamedTuple):
    """What one chaos run observed (all fields deterministic in seed)."""

    seed: int
    trace: Tuple[Tuple[float, str], ...]  # (sim time us, action label)
    ops: int
    acked_puts: int
    failed_ops: int
    leader_terms: Tuple[Tuple[int, str], ...]  # (term, leader host) observed
    max_simultaneous_leaders: int

    def fingerprint(self) -> Tuple:
        """Identity for determinism tests: two same-seed runs must match."""
        return self


def _client_class(cluster):
    """KvClient for single-group systems, ShardRouter for the sharded
    service (a plain KvClient would ignore key ownership and write a
    key to whichever shard's coordinator answers first)."""
    if hasattr(cluster, "ring") and hasattr(cluster, "groups"):
        from repro.shard.router import ShardRouter

        return ShardRouter
    return KvClient


class _ChaosClient:
    """One closed-loop client owning a private key set.

    Single-writer-per-key keeps per-key histories small (the Wing-Gong
    checker is exponential) and makes "the acked value must survive"
    unambiguous.  Failed calls are recorded as pending ops — the checker
    treats them as "may have happened at any later point", which is
    exactly the semantics of a timed-out request still in flight.
    """

    def __init__(self, runner: "ChaosRunner", index: int):
        self.runner = runner
        self.index = index
        host = runner.fabric.add_host(f"chaos-c{index}", cores=2)
        self.kv = _client_class(runner.cluster)(
            host,
            runner.fabric,
            runner.cluster,
            request_timeout_us=10 * MS,
            max_rounds=6,
            retry_backoff_us=5 * MS,
        )
        self.rng = runner.fabric.rng.stream(f"chaos:client:{index}")
        self.keys = [
            b"c%d-k%d" % (index, k) for k in range(runner.keys_per_client)
        ]
        self.sequence = 0
        self.done = False

    def loop(self):
        runner = self.runner
        while not runner.stop_clients:
            key = self.keys[self.sequence % len(self.keys)]
            write = self.rng.random() < runner.write_fraction
            if write:
                self.sequence += 1
                value = b"c%d:%d" % (self.index, self.sequence)
                yield from self._record("put", key, value, self.kv.put(key, value))
            else:
                yield from self._record("get", key, None, self.kv.get(key))
            yield runner.sim.timeout(runner.op_gap_us)
        self.done = True

    def read_back(self):
        """Final verification reads with a patient client."""
        patient = _client_class(self.runner.cluster)(
            self.kv.host,
            self.runner.fabric,
            self.runner.cluster,
            request_timeout_us=10 * MS,
            max_rounds=200,
            retry_backoff_us=5 * MS,
        )
        for key in self.keys:
            yield from self._record("get", key, None, patient.get(key))

    def _record(self, kind: str, key: bytes, value, call):
        invoked = self.runner.sim.now
        try:
            result = yield from call
        except KvRequestFailed:
            self.runner.history.record(Op(key, kind, value, invoked, None))
            self.runner.failed_ops += 1
            return
        responded = self.runner.sim.now
        if kind == "get":
            value = result
        else:
            self.runner.acked_puts += 1
        self.runner.history.record(Op(key, kind, value, invoked, responded))


class ChaosRunner:
    """Run one schedule against one freshly built cluster and judge it."""

    def __init__(
        self,
        build: Callable[[Fabric], object],
        schedule: FaultSchedule,
        seed: int = 0,
        clients: int = 3,
        keys_per_client: int = 3,
        write_fraction: float = 0.5,
        op_gap_us: float = 40 * MS,
        settle_us: float = 300 * MS,
        ready_timeout_us: float = 5 * SEC,
        liveness_timeout_us: float = 5 * SEC,
        check_linearizability: Optional[bool] = None,
        **deprecated,
    ):
        if deprecated:
            durations = resolve_us_kwargs(
                "ChaosRunner",
                deprecated,
                {
                    "op_gap": "op_gap_us",
                    "settle": "settle_us",
                    "ready_timeout": "ready_timeout_us",
                    "liveness_timeout": "liveness_timeout_us",
                },
                {
                    "op_gap_us": op_gap_us,
                    "settle_us": settle_us,
                    "ready_timeout_us": ready_timeout_us,
                    "liveness_timeout_us": liveness_timeout_us,
                },
            )
            op_gap_us = durations["op_gap_us"]
            settle_us = durations["settle_us"]
            ready_timeout_us = durations["ready_timeout_us"]
            liveness_timeout_us = durations["liveness_timeout_us"]
        self.build = build
        self.schedule = schedule
        self.seed = seed
        self.n_clients = clients
        self.keys_per_client = keys_per_client
        self.write_fraction = write_fraction
        self.op_gap_us = op_gap_us
        self.settle_us = settle_us
        self.ready_timeout_us = ready_timeout_us
        self.liveness_timeout_us = liveness_timeout_us
        self.check_linearizability = check_linearizability

        # Per-run state, populated by run().
        self.sim: Simulator = None  # type: ignore[assignment]
        self.fabric: Fabric = None  # type: ignore[assignment]
        self.cluster = None
        self.history = History()
        self.acked_puts = 0
        self.failed_ops = 0
        self.stop_clients = False

    # -- internals ---------------------------------------------------------------

    def _fail(self, message: str, trace) -> None:
        path = maybe_postmortem(
            f"chaos {message}",
            extra={
                "seed": self.seed,
                "trace": [[t, label] for t, label in trace],
            },
        )
        if path is not None:
            message = f"{message}\n  postmortem: {path}"
        raise ChaosError(message, self.seed, tuple(trace))

    def _await(self, gen, deadline_us: float, what: str, trace) -> None:
        process = self.sim.spawn(gen, name=f"chaos-{what}")
        process.add_callback(lambda _ev: None)  # outcome inspected below
        self.sim.run_until_settled(process, deadline=self.sim.now + deadline_us)
        if not process.settled or process.failed:
            reason = process.exception if process.settled else "never settled"
            self._fail(f"{what} failed: {reason}", trace)

    def _check_monitor(self, monitor: LeaderMonitor, trace) -> None:
        monitor.observe()
        if monitor.violations:
            self._fail(
                "leader uniqueness violated: " + "; ".join(monitor.violations), trace
            )

    # -- the run -----------------------------------------------------------------

    def run(self) -> ChaosResult:
        """Run the schedule with a flight recorder installed.

        Unless the caller already traces, a bounded :class:`FlightRecorder`
        rides along for the whole run (zero schedule perturbation, O(ring)
        memory) so any invariant failure can dump its final moments via
        :func:`repro.obs.flight.maybe_postmortem`.
        """
        owns_recorder = obs_state.TRACER is None
        previous = set_tracer(FlightRecorder()) if owns_recorder else None
        try:
            return self._run()
        finally:
            if owns_recorder:
                set_tracer(previous)

    def _run(self) -> ChaosResult:
        self.sim = Simulator()
        self.fabric = Fabric(self.sim, rng=RngStreams(seed=self.seed))
        self.cluster = self.build(self.fabric)
        adapter = adapter_for(self.cluster)
        controller = ChaosController(adapter)
        self.history = History()
        self.acked_puts = 0
        self.failed_ops = 0
        self.stop_clients = False
        trace: List[Tuple[float, str]] = []

        self._await(
            adapter.wait_ready(self.ready_timeout_us),
            self.ready_timeout_us,
            "initial readiness",
            trace,
        )

        monitor = LeaderMonitor(adapter)
        monitor.start()
        clients = [_ChaosClient(self, index) for index in range(self.n_clients)]
        workers = [self.sim.spawn(c.loop(), name=f"chaos-client-{c.index}") for c in clients]

        base = self.sim.now
        for action in self.schedule.sorted_actions():
            self.sim.run(until=base + action.at_us)
            try:
                controller.apply(action)
            except InvariantViolation as exc:
                self._fail(str(exc), trace)
            trace.append((self.sim.now, action.label))
            self._check_monitor(monitor, trace)

        # Let the tail of the schedule play out, then require recovery.
        self.sim.run(until=base + self.schedule.duration_us + self.settle_us)
        self._check_monitor(monitor, trace)
        controller.heal_everything()
        self._await(
            adapter.wait_ready(self.liveness_timeout_us),
            self.liveness_timeout_us,
            "post-schedule liveness",
            trace,
        )

        # Stop the workload, then verify every key with fresh reads.
        self.stop_clients = True
        for worker in workers:
            self.sim.run_until_settled(worker, deadline=self.sim.now + 2 * SEC)
        for client in clients:
            self._await(
                client.read_back(), 10 * SEC, f"read-back (client {client.index})", trace
            )
        monitor.stop()
        self._check_monitor(monitor, trace)

        strict = (
            self.check_linearizability
            if self.check_linearizability is not None
            else adapter.durable_across_crash
        )
        try:
            if strict:
                check_linearizable(self.history)
            else:
                check_no_phantoms(self.history)
        except InvariantViolation as exc:
            self._fail(str(exc), trace)

        result = ChaosResult(
            seed=self.seed,
            trace=tuple(trace),
            ops=len(self.history.ops),
            acked_puts=self.acked_puts,
            failed_ops=self.failed_ops,
            leader_terms=tuple(sorted(monitor.by_term.items())),
            max_simultaneous_leaders=monitor.max_simultaneous,
        )
        if obs_state.REGISTRY is not None:
            registry = obs_state.REGISTRY
            registry.gauge("chaos.ops").set(result.ops)
            registry.gauge("chaos.acked_puts").set(result.acked_puts)
            registry.gauge("chaos.failed_ops").set(result.failed_ops)
            registry.gauge("chaos.injections").set(len(result.trace))
            registry.gauge("chaos.max_simultaneous_leaders").set(
                result.max_simultaneous_leaders
            )
            publish_run(registry, self.fabric, self.cluster)
        return result
