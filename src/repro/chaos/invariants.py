"""Safety invariants checked during and after fault injection.

Three families, matching the guarantees the paper argues for (§3.2):

* **leader uniqueness** — at most one node may lead *per term*.  An
  instantaneous two-leaders snapshot is legal in a lease protocol (the
  deposed coordinator believes it leads until its next heartbeat CAS
  fails); two nodes claiming the *same term* is never legal.
* **committed-prefix durability / linearizability** — recorded client
  histories (plus a final read-back of every key) must be linearizable
  per key (:mod:`repro.bench.lincheck`).  Losing an acked write makes
  the read-back return an older value after the ack responded — a
  real-time-order violation the checker flags.
* **no phantom values** — for systems whose crash model can lose acked
  writes (EPaxos' asynchronous commit announcements), the weaker check:
  every completed read returns a value some client actually wrote to
  that key (or "missing"), never a corrupt or cross-key value.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.bench.lincheck import History, check_key_history
from repro.sim.units import MS

__all__ = ["InvariantViolation", "LeaderMonitor", "check_linearizable", "check_no_phantoms"]


class InvariantViolation(AssertionError):
    """A safety invariant failed; the message carries replay context."""


class LeaderMonitor:
    """Continuously samples leadership; flags same-term splits.

    Runs as a plain simulator process (not bound to any host, so node
    crashes cannot kill the observer).  Sampling every *interval_us*
    bounds detection granularity; the per-term map catches a split even
    when the two reigns never overlap a sample.
    """

    def __init__(self, adapter, interval_us: float = 1 * MS):
        self.adapter = adapter
        self.interval_us = interval_us
        self.by_term: Dict[int, str] = {}
        self.violations: List[str] = []
        self.max_simultaneous = 0
        self._stopped = False

    def start(self) -> None:
        if self.adapter.leader_based:
            self.adapter.sim.spawn(self._watch(), name="chaos-leader-monitor")

    def stop(self) -> None:
        self._stopped = True

    def observe(self) -> None:
        """Take one sample now (also called after every injection)."""
        if not self.adapter.leader_based:
            return
        leaders = self.adapter.leaders()
        self.max_simultaneous = max(self.max_simultaneous, len(leaders))
        for name, term in leaders:
            holder = self.by_term.setdefault(term, name)
            if holder != name:
                self.violations.append(
                    f"term {term} led by both {holder} and {name} "
                    f"at t={self.adapter.sim.now:.0f}us"
                )

    def _watch(self):
        while not self._stopped:
            self.observe()
            yield self.adapter.sim.timeout(self.interval_us)


def check_linearizable(history: History) -> None:
    """Raise :class:`InvariantViolation` unless every key linearizes."""
    for key, ops in history.per_key().items():
        if not check_key_history(ops):
            lines = [
                f"  {op.kind}({op.value!r}) @ {op.invoked_at:.0f}"
                f"..{'-' if op.responded_at is None else f'{op.responded_at:.0f}'}"
                for op in sorted(ops, key=lambda o: o.invoked_at)
            ]
            raise InvariantViolation(
                f"history for key {key!r} is not linearizable:\n" + "\n".join(lines)
            )


def check_no_phantoms(history: History) -> None:
    """Every completed read must return a written value or None."""
    written: Dict[bytes, Set[Optional[bytes]]] = {}
    for op in history.ops:
        if op.kind == "put":
            written.setdefault(op.key, set()).add(op.value)
    for op in history.ops:
        if op.kind != "get" or op.responded_at is None or op.value is None:
            continue
        if op.value not in written.get(op.key, set()):
            raise InvariantViolation(
                f"phantom read: key {op.key!r} returned {op.value!r}, "
                f"which no client ever wrote there"
            )
