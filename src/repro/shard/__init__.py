"""Multi-group sharded KV service (§5.2 scaled out).

One Sift group is a unit of consensus, not of capacity: a deployment
runs many groups side by side on one fabric, partitions the key space
across them with consistent hashing, and — because CPU nodes are
stateless — lets *all* groups share one small pool of backup CPU VMs
(:class:`repro.core.backups.BackupPool`) instead of provisioning
``(F + 1)`` CPU nodes per group.

``ShardedKvService`` provisions the groups plus the live pool;
``ShardRouter`` is the client: it owns one :class:`repro.kv.KvClient`
per shard and routes each key through the :class:`HashRing`.
"""

from repro.shard.hashing import HashRing
from repro.shard.router import ShardRouter
from repro.shard.service import ShardedKvService

__all__ = ["HashRing", "ShardRouter", "ShardedKvService"]
