"""Client-side shard routing.

A router is one client host's view of the whole sharded service: one
:class:`~repro.kv.client.KvClient` per shard, each with its own
preferred-coordinator cache, with every operation dispatched through
the service's hash ring.  The router deliberately has the same
``put``/``get``/``delete`` generator surface (and ``prefer`` hook) as
``KvClient`` so :class:`repro.workloads.clients.ClientPool` and the
chaos runner drive either interchangeably.
"""

from __future__ import annotations

from typing import Dict

from repro.compat import resolve_us_kwargs
from repro.kv.client import KvClient
from repro.net.fabric import Fabric
from repro.net.host import Host
from repro.obs import state as obs_state
from repro.obs.stats import StatsSnapshot
from repro.shard.service import ShardedKvService
from repro.sim.units import MS

__all__ = ["ShardRouter"]


class ShardRouter:
    """Routes KV operations from one host to the owning shard."""

    def __init__(
        self,
        host: Host,
        fabric: Fabric,
        service: ShardedKvService,
        request_timeout_us: float = 10 * MS,
        max_rounds: int = 2_000,
        retry_backoff_us: float = 5 * MS,
        **deprecated,
    ):
        if deprecated:
            durations = resolve_us_kwargs(
                "ShardRouter",
                deprecated,
                {
                    "request_timeout": "request_timeout_us",
                    "retry_backoff": "retry_backoff_us",
                },
                {
                    "request_timeout_us": request_timeout_us,
                    "retry_backoff_us": retry_backoff_us,
                },
            )
            request_timeout_us = durations["request_timeout_us"]
            retry_backoff_us = durations["retry_backoff_us"]
        self.host = host
        self.service = service
        self._fabric = fabric
        self._client_kwargs = dict(
            request_timeout_us=request_timeout_us,
            max_rounds=max_rounds,
            retry_backoff_us=retry_backoff_us,
        )
        self.ring_version = service.ring.version
        self.cache_invalidations = 0
        self.clients: Dict[str, KvClient] = {
            group.name: KvClient(host, fabric, group, **self._client_kwargs)
            for group in service.groups
        }

    def _sync(self) -> None:
        """Invalidate the per-shard client cache on a ring version bump.

        Routers poll the version (one int compare on the hot path)
        instead of subscribing: the service installs a new ring at
        cutover and every router converges on its next operation.
        Clients for surviving shards keep their warmed coordinator
        caches; retired shards are dropped, new shards get fresh
        clients.
        """
        ring = self.service.ring
        if ring.version == self.ring_version:
            return
        alive = set(ring.shards)
        for name in [name for name in self.clients if name not in alive]:
            del self.clients[name]
        for name in ring.shards:
            if name not in self.clients:
                self.clients[name] = KvClient(
                    self.host,
                    self._fabric,
                    self.service._group(name),
                    **self._client_kwargs,
                )
        self.ring_version = ring.version
        self.cache_invalidations += 1

    def prefer(self, index: int) -> None:
        """Seed every per-shard client's preferred-coordinator cache."""
        self._sync()
        for client in self.clients.values():
            client.prefer(index)

    def client_for(self, key: bytes) -> KvClient:
        """The per-shard client owning *key*."""
        self._sync()
        return self.clients[self.service.shard_for(key)]

    # -- public API (all processes, same surface as KvClient) --------------------

    def put(self, key: bytes, value: bytes):
        """Process: store *value* under *key* on the owning shard."""
        self._sync()
        shard = self.service.shard_for(key)
        started = self.host.sim.now
        result = yield from self.clients[shard].put(key, value)
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.slo("shard.op_latency_us", op="put", shard=shard).observe(
                self.host.sim.now - started
            )
        return result

    def get(self, key: bytes):
        """Process: fetch *key* from the owning shard."""
        self._sync()
        shard = self.service.shard_for(key)
        started = self.host.sim.now
        result = yield from self.clients[shard].get(key)
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.slo("shard.op_latency_us", op="get", shard=shard).observe(
                self.host.sim.now - started
            )
        return result

    def delete(self, key: bytes):
        """Process: delete *key* on the owning shard."""
        self._sync()
        shard = self.service.shard_for(key)
        started = self.host.sim.now
        result = yield from self.clients[shard].delete(key)
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.slo(
                "shard.op_latency_us", op="delete", shard=shard
            ).observe(self.host.sim.now - started)
        return result

    # -- diagnostics --------------------------------------------------------------

    @property
    def stats(self) -> Dict[str, int]:
        """Aggregated per-shard client stats.

        Counters sum exactly; ``inflight`` is the router's live total,
        and ``inflight_peak`` sums per-shard peaks (an upper bound on
        the router-wide peak — the per-shard bound is what the dispatch
        windows actually enforce; see :meth:`inflight_peaks`).
        """
        totals: Dict[str, int] = {}
        for client in self.clients.values():
            for field, value in client.stats.items():
                totals[field] = totals.get(field, 0) + value
        return totals

    def inflight_peaks(self) -> Dict[str, int]:
        """Peak concurrently issued ops per shard (bounded-dispatch hook)."""
        return {
            shard: client.stats["inflight_peak"]
            for shard, client in self.clients.items()
        }

    def snapshot(self) -> StatsSnapshot:
        """Aggregated router counters under the shared stats protocol."""
        totals = self.stats
        return StatsSnapshot(
            kind="shard_router",
            name=self.host.name,
            counters={
                "requests": float(totals.get("requests", 0)),
                "retries": float(totals.get("retries", 0)),
                "failures": float(totals.get("failures", 0)),
                "cache_invalidations": float(self.cache_invalidations),
            },
            gauges={
                "inflight": float(totals.get("inflight", 0)),
                "inflight_peak": float(totals.get("inflight_peak", 0)),
                "ring_version": float(self.ring_version),
                "shards": float(len(self.clients)),
            },
        )

    def __repr__(self) -> str:
        return f"<ShardRouter {self.host.name} -> {len(self.clients)} shards>"
