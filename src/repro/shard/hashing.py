"""Consistent hashing for key-to-shard routing.

The ring must be stable across processes and across service restarts:
two routers built from the same shard names place every key
identically, and adding a shard moves only ``~1/G`` of the key space.
Hashing therefore uses :mod:`hashlib` (Python's builtin ``hash`` is
salted per process) and each shard contributes *virtual_nodes* points
so the arc lengths even out.

Rings are immutable but *versioned*: :meth:`HashRing.split` and
:meth:`HashRing.merge` return a new ring (version + 1) plus the exact
hash arcs whose ownership changed, which is everything the control
plane needs to migrate data and everything routers need to invalidate
their per-shard client caches.  Keys outside the returned arcs keep
their owner — the monotonicity property pinned by
``tests/test_control.py``.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["HashRing", "key_point", "ranges_contain"]


def _point(token: bytes) -> int:
    """A stable 64-bit ring position for *token*."""
    return int.from_bytes(hashlib.sha1(token).digest()[:8], "big")


def key_point(key: bytes) -> int:
    """The 64-bit ring position of a KV key (for range membership)."""
    return _point(bytes(key))


def ranges_contain(ranges: Sequence[Tuple[int, int]], point: int) -> bool:
    """Whether *point* falls in any wrap-aware arc ``(lo, hi]``.

    An arc with ``lo < hi`` covers ``lo < p <= hi``; an arc with
    ``lo >= hi`` wraps past zero and covers ``p > lo or p <= hi``.
    """
    for lo, hi in ranges:
        if lo < hi:
            if lo < point <= hi:
                return True
        elif point > lo or point <= hi:
            return True
    return False


class HashRing:
    """A consistent-hash ring over named shards."""

    def __init__(self, shards: Sequence[str], virtual_nodes: int = 64):
        if not shards:
            raise ValueError("a ring needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ValueError(f"duplicate shard names: {list(shards)}")
        self.shards: Tuple[str, ...] = tuple(shards)
        self.virtual_nodes = virtual_nodes
        self.version = 0
        points: List[Tuple[int, str]] = []
        for name in self.shards:
            for replica in range(virtual_nodes):
                points.append((_point(f"{name}#{replica}".encode()), name))
        points.sort()
        self._finalize([p for p, _ in points], [owner for _, owner in points])

    def _finalize(self, points: List[int], owners: List[str]) -> None:
        self._points = points
        self._owners = owners
        # Vectorized-lookup mirrors of the same sorted ring, with one
        # extra trailing slot so the wrap-around maps to owner 0's point.
        self._points_array = np.array(self._points, dtype=np.uint64)
        shard_index = {name: i for i, name in enumerate(self.shards)}
        self._owner_ids = np.array(
            [shard_index[owner] for owner in self._owners] + [shard_index[self._owners[0]]],
            dtype=np.int64,
        )

    @classmethod
    def _from_points(
        cls,
        shards: Tuple[str, ...],
        points: List[int],
        owners: List[str],
        virtual_nodes: int,
        version: int,
    ) -> "HashRing":
        ring = cls.__new__(cls)
        ring.shards = shards
        ring.virtual_nodes = virtual_nodes
        ring.version = version
        ring._finalize(points, owners)
        return ring

    # ------------------------------------------------------------------
    # Versioned mutation (split / merge)
    # ------------------------------------------------------------------

    def _arc_of(self, position: int) -> Tuple[int, int]:
        """The wrap-aware hash arc ``(prev_point, point]`` at *position*."""
        prev = self._points[position - 1] if position else self._points[-1]
        return (prev, self._points[position])

    def arcs_of(self, shard: str) -> List[Tuple[int, int]]:
        """Every hash arc *shard* currently owns (wrap-aware)."""
        if shard not in self.shards:
            raise ValueError(f"unknown shard {shard!r}")
        return [
            self._arc_of(i) for i, owner in enumerate(self._owners) if owner == shard
        ]

    def split(self, shard: str, new_shard: str) -> Tuple["HashRing", List[Tuple[int, int]]]:
        """A new ring (version + 1) splitting *shard*'s range in two.

        Every other of *shard*'s sorted vnode points is deterministically
        reassigned to *new_shard* (appended to :attr:`shards`, so
        existing shard indexes are stable).  Returns ``(new_ring,
        moved)`` where *moved* is the list of hash arcs now owned by
        *new_shard* — keys outside them keep their owner.
        """
        if shard not in self.shards:
            raise ValueError(f"unknown shard {shard!r}")
        if new_shard in self.shards:
            raise ValueError(f"shard {new_shard!r} already on the ring")
        positions = [i for i, owner in enumerate(self._owners) if owner == shard]
        moved_positions = positions[::2]  # ceil(n/2) points, deterministic
        owners = list(self._owners)
        for i in moved_positions:
            owners[i] = new_shard
        ring = HashRing._from_points(
            self.shards + (new_shard,),
            list(self._points),
            owners,
            self.virtual_nodes,
            self.version + 1,
        )
        return ring, [self._arc_of(i) for i in moved_positions]

    def merge(self, shard: str, into: str) -> Tuple["HashRing", List[Tuple[int, int]]]:
        """A new ring (version + 1) folding *shard*'s range into *into*.

        All of *shard*'s vnode points are reassigned to *into* and
        *shard* leaves :attr:`shards`.  Returns ``(new_ring, moved)``
        with the arcs that changed owner.
        """
        if shard not in self.shards or into not in self.shards:
            raise ValueError(f"both {shard!r} and {into!r} must be on the ring")
        if shard == into:
            raise ValueError("cannot merge a shard into itself")
        positions = [i for i, owner in enumerate(self._owners) if owner == shard]
        owners = list(self._owners)
        for i in positions:
            owners[i] = into
        ring = HashRing._from_points(
            tuple(name for name in self.shards if name != shard),
            list(self._points),
            owners,
            self.virtual_nodes,
            self.version + 1,
        )
        return ring, [self._arc_of(i) for i in positions]

    def shard_for(self, key: bytes) -> str:
        """The shard owning *key*: first ring point at or after its hash."""
        return self.owner_of_point(_point(bytes(key)))

    def owner_of_point(self, point: int) -> str:
        """The shard owning ring position *point* (wrap-aware)."""
        index = bisect.bisect_left(self._points, point)
        if index == len(self._points):
            index = 0  # wrap around
        return self._owners[index]

    def shard_index_batch(self, keys: Sequence[bytes]) -> np.ndarray:
        """Vectorized :meth:`shard_for` over many keys at once.

        Returns each key's owner as an index into :attr:`shards`.  The
        SHA-1 per key is irreducible (hashlib has no batch API), but the
        digests are folded into one buffer and the ring walk — the
        ``bisect`` plus two list lookups that dominate the scalar call —
        becomes a single ``np.searchsorted``.  Placement is identical to
        :meth:`shard_for` key for key (pinned by ``tests/test_shard.py``).
        """
        if not len(keys):
            return np.empty(0, dtype=np.int64)
        sha1 = hashlib.sha1
        raw = b"".join([sha1(key).digest() for key in keys])
        hashes = (
            np.frombuffer(raw, dtype=np.uint8)
            .reshape(-1, 20)[:, :8]
            .copy()
            .view(">u8")
            .ravel()
        )
        # bisect_left == searchsorted side="left"; the appended owner
        # slot makes index == len(points) resolve to the wrap-around.
        indexes = np.searchsorted(self._points_array, hashes, side="left")
        return self._owner_ids[indexes]

    def spread(self, keys: Sequence[bytes]) -> Dict[str, int]:
        """How many of *keys* each shard owns (diagnostics / tests)."""
        counts = {name: 0 for name in self.shards}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.shards)

    def __repr__(self) -> str:
        return f"<HashRing {len(self.shards)} shards x {self.virtual_nodes} vnodes>"
