"""Consistent hashing for key-to-shard routing.

The ring must be stable across processes and across service restarts:
two routers built from the same shard names place every key
identically, and adding a shard moves only ``~1/G`` of the key space.
Hashing therefore uses :mod:`hashlib` (Python's builtin ``hash`` is
salted per process) and each shard contributes *virtual_nodes* points
so the arc lengths even out.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["HashRing"]


def _point(token: bytes) -> int:
    """A stable 64-bit ring position for *token*."""
    return int.from_bytes(hashlib.sha1(token).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over named shards."""

    def __init__(self, shards: Sequence[str], virtual_nodes: int = 64):
        if not shards:
            raise ValueError("a ring needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ValueError(f"duplicate shard names: {list(shards)}")
        self.shards: Tuple[str, ...] = tuple(shards)
        self.virtual_nodes = virtual_nodes
        points: List[Tuple[int, str]] = []
        for name in self.shards:
            for replica in range(virtual_nodes):
                points.append((_point(f"{name}#{replica}".encode()), name))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [owner for _, owner in points]
        # Vectorized-lookup mirrors of the same sorted ring, with one
        # extra trailing slot so the wrap-around maps to owner 0's point.
        self._points_array = np.array(self._points, dtype=np.uint64)
        shard_index = {name: i for i, name in enumerate(self.shards)}
        self._owner_ids = np.array(
            [shard_index[owner] for owner in self._owners] + [shard_index[self._owners[0]]],
            dtype=np.int64,
        )

    def shard_for(self, key: bytes) -> str:
        """The shard owning *key*: first ring point at or after its hash."""
        index = bisect.bisect_left(self._points, _point(bytes(key)))
        if index == len(self._points):
            index = 0  # wrap around
        return self._owners[index]

    def shard_index_batch(self, keys: Sequence[bytes]) -> np.ndarray:
        """Vectorized :meth:`shard_for` over many keys at once.

        Returns each key's owner as an index into :attr:`shards`.  The
        SHA-1 per key is irreducible (hashlib has no batch API), but the
        digests are folded into one buffer and the ring walk — the
        ``bisect`` plus two list lookups that dominate the scalar call —
        becomes a single ``np.searchsorted``.  Placement is identical to
        :meth:`shard_for` key for key (pinned by ``tests/test_shard.py``).
        """
        if not len(keys):
            return np.empty(0, dtype=np.int64)
        sha1 = hashlib.sha1
        raw = b"".join([sha1(key).digest() for key in keys])
        hashes = (
            np.frombuffer(raw, dtype=np.uint8)
            .reshape(-1, 20)[:, :8]
            .copy()
            .view(">u8")
            .ravel()
        )
        # bisect_left == searchsorted side="left"; the appended owner
        # slot makes index == len(points) resolve to the wrap-around.
        indexes = np.searchsorted(self._points_array, hashes, side="left")
        return self._owner_ids[indexes]

    def spread(self, keys: Sequence[bytes]) -> Dict[str, int]:
        """How many of *keys* each shard owns (diagnostics / tests)."""
        counts = {name: 0 for name in self.shards}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.shards)

    def __repr__(self) -> str:
        return f"<HashRing {len(self.shards)} shards x {self.virtual_nodes} vnodes>"
