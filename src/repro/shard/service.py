"""The sharded KV service: G groups, one fabric, one shared backup pool.

The service owns provisioning only — groups do consensus, the
:class:`~repro.core.backups.BackupPool` does CPU-node recovery, the
:class:`~repro.shard.hashing.HashRing` does placement.  Clients go
through :class:`repro.shard.router.ShardRouter`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.backups import BackupPool
from repro.core.group import SiftGroup
from repro.kv import KvConfig, kv_app_factory
from repro.net.fabric import Fabric
from repro.obs import state as obs_state
from repro.sim.units import MS, SEC
from repro.shard.hashing import HashRing

__all__ = ["ShardedKvService"]


class ShardedKvService:
    """G Sift groups sharing a fabric and a live pool of backup CPU VMs.

    With per-group provisioning, G groups tolerating ``Fc`` coordinator
    faults each need ``G x (Fc + 1)`` CPU nodes.  Because CPU nodes are
    stateless (§5.2), this service instead provisions *one* CPU node per
    group (``fc=0``) by default and a pool of *backups* spares shared by
    every group; the pool's watchdog promotes a spare into whichever
    group loses its coordinator.  ``G + B`` CPU VMs replace
    ``G x (Fc + 1)``.
    """

    def __init__(
        self,
        fabric: Fabric,
        shards: int = 2,
        backups: int = 1,
        kv_config: Optional[KvConfig] = None,
        fm: int = 1,
        fc: int = 0,
        erasure_coding: bool = False,
        provisioning_delay_us: float = 100 * SEC,
        virtual_nodes: int = 64,
        name: str = "shard",
        **sift_overrides,
    ):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.fabric = fabric
        self.name = name
        self.n_shards = shards
        self.kv_config = kv_config or KvConfig(
            max_keys=4096, wal_entries=256, watermark_interval=64
        )
        overrides = dict(wal_entries=256, memnode_poll_interval_us=30 * MS)
        overrides.update(sift_overrides)
        sift_config = self.kv_config.sift_config(
            fm=fm, fc=fc, erasure_coding=erasure_coding, **overrides
        )
        self.groups: List[SiftGroup] = [
            SiftGroup(
                fabric,
                sift_config,
                name=f"{name}{index}",
                app_factory=kv_app_factory(self.kv_config),
            )
            for index in range(shards)
        ]
        self._by_name: Dict[str, SiftGroup] = {g.name: g for g in self.groups}
        self.ring = HashRing([g.name for g in self.groups], virtual_nodes=virtual_nodes)
        self.pool = BackupPool(
            fabric,
            self.groups,
            size=backups,
            provisioning_delay_us=provisioning_delay_us,
            name=f"{name}-pool",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start every group, then the pool's watchdog monitors."""
        for group in self.groups:
            group.start()
        self.pool.start()
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.gauge("shard.groups", service=self.name).set(
                len(self.groups)
            )

    def stop(self) -> None:
        """Stop promoting backups (groups keep serving)."""
        self.pool.stop()

    def wait_until_serving(self, timeout_us: Optional[float] = None):
        """Process: wait until *every* shard has a serving coordinator.

        The per-group deadline is the one absolute deadline, so a slow
        first shard does not extend the budget of the rest.
        """
        deadline = None if timeout_us is None else self.fabric.sim.now + timeout_us
        for group in self.groups:
            remaining = None if deadline is None else deadline - self.fabric.sim.now
            yield from group.wait_until_serving(remaining)
        return self

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def shard_for(self, key: bytes) -> str:
        """The shard name owning *key*."""
        return self.ring.shard_for(key)

    def group_for(self, key: bytes) -> SiftGroup:
        """The group owning *key*."""
        return self._by_name[self.ring.shard_for(key)]

    def group(self, name: str) -> SiftGroup:
        """Look up a group by shard name."""
        return self._by_name[name]

    # ------------------------------------------------------------------
    # Introspection and fault injection (chaos / bench hooks)
    # ------------------------------------------------------------------

    @property
    def cpu_nodes(self):
        """Every CPU node across all shards (includes promoted backups)."""
        return [cpu for group in self.groups for cpu in group.cpu_nodes]

    def coordinators(self) -> Dict[str, Optional[str]]:
        """Shard name -> serving coordinator host name (None while down)."""
        out: Dict[str, Optional[str]] = {}
        for group in self.groups:
            coordinator = group.serving_coordinator()
            out[group.name] = None if coordinator is None else coordinator.host.name
        return out

    def crash_coordinator(self, shard: Optional[str] = None):
        """Kill one shard's coordinator (the first shard by default)."""
        group = self.groups[0] if shard is None else self._by_name[shard]
        return group.crash_coordinator()

    def __repr__(self) -> str:
        return (
            f"<ShardedKvService {self.name} shards={len(self.groups)} "
            f"pool={self.pool.idle_backups}/{self.pool.capacity}>"
        )
