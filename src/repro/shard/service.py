"""The sharded KV service: G groups, one fabric, one shared backup pool.

The service owns provisioning only — groups do consensus, the
:class:`~repro.core.backups.BackupPool` does CPU-node recovery, the
:class:`~repro.shard.hashing.HashRing` does placement.  Clients go
through :class:`repro.shard.router.ShardRouter`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.compat import warn_deprecated
from repro.core.backups import BackupPool
from repro.core.group import SiftGroup
from repro.kv import KvConfig, kv_app_factory
from repro.net.fabric import Fabric
from repro.obs import state as obs_state
from repro.sim.units import MS, SEC
from repro.shard.hashing import HashRing

__all__ = ["ShardedKvService"]


class ShardedKvService:
    """G Sift groups sharing a fabric and a live pool of backup CPU VMs.

    With per-group provisioning, G groups tolerating ``Fc`` coordinator
    faults each need ``G x (Fc + 1)`` CPU nodes.  Because CPU nodes are
    stateless (§5.2), this service instead provisions *one* CPU node per
    group (``fc=0``) by default and a pool of *backups* spares shared by
    every group; the pool's watchdog promotes a spare into whichever
    group loses its coordinator.  ``G + B`` CPU VMs replace
    ``G x (Fc + 1)``.
    """

    def __init__(
        self,
        fabric: Fabric,
        shards: int = 2,
        backups: int = 1,
        kv_config: Optional[KvConfig] = None,
        fm: int = 1,
        fc: int = 0,
        erasure_coding: bool = False,
        provisioning_delay_us: float = 100 * SEC,
        virtual_nodes: int = 64,
        name: str = "shard",
        **sift_overrides,
    ):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.fabric = fabric
        self.name = name
        self.n_shards = shards
        self.kv_config = kv_config or KvConfig(
            max_keys=4096, wal_entries=256, watermark_interval=64
        )
        overrides = dict(wal_entries=256, memnode_poll_interval_us=30 * MS)
        overrides.update(sift_overrides)
        self._sift_config = self.kv_config.sift_config(
            fm=fm, fc=fc, erasure_coding=erasure_coding, **overrides
        )
        self.groups: List[SiftGroup] = [
            SiftGroup(
                fabric,
                self._sift_config,
                name=f"{name}{index}",
                app_factory=kv_app_factory(self.kv_config),
            )
            for index in range(shards)
        ]
        self._by_name: Dict[str, SiftGroup] = {g.name: g for g in self.groups}
        self._next_group_index = shards
        self.ring = HashRing([g.name for g in self.groups], virtual_nodes=virtual_nodes)
        #: Every ring version ever installed, for ring-version-aware
        #: fault targeting (a fault scheduled before a split still finds
        #: the group that owns the intended key range today).
        self.ring_history: Dict[int, HashRing] = {self.ring.version: self.ring}
        self.pool = BackupPool(
            fabric,
            self.groups,
            size=backups,
            provisioning_delay_us=provisioning_delay_us,
            name=f"{name}-pool",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start every group, then the pool's watchdog monitors."""
        for group in self.groups:
            group.start()
        self.pool.start()
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.gauge("shard.groups", service=self.name).set(
                len(self.groups)
            )

    def stop(self) -> None:
        """Stop promoting backups (groups keep serving)."""
        self.pool.stop()

    def wait_until_serving(self, timeout_us: Optional[float] = None):
        """Process: wait until *every* shard has a serving coordinator.

        The per-group deadline is the one absolute deadline, so a slow
        first shard does not extend the budget of the rest.
        """
        deadline = None if timeout_us is None else self.fabric.sim.now + timeout_us
        for group in self.groups:
            remaining = None if deadline is None else deadline - self.fabric.sim.now
            yield from group.wait_until_serving(remaining)
        return self

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def shard_for(self, key: bytes) -> str:
        """The shard name owning *key* (under the current ring)."""
        return self.ring.shard_for(key)

    def group_for(self, key: bytes) -> SiftGroup:
        """Deprecated: reach through ``Cluster.topology()`` instead."""
        warn_deprecated(
            "ShardedKvService", "group_for", "Cluster.topology() / ShardRouter"
        )
        return self._group_for(key)

    def group(self, name: str) -> SiftGroup:
        """Deprecated: reach through ``Cluster.topology()`` instead."""
        warn_deprecated("ShardedKvService", "group", "Cluster.topology()")
        return self._group(name)

    def _group_for(self, key: bytes) -> SiftGroup:
        """Internal: the group owning *key*."""
        return self._by_name[self.ring.shard_for(key)]

    def _group(self, name: str) -> SiftGroup:
        """Internal: look up a group by shard name."""
        return self._by_name[name]

    # ------------------------------------------------------------------
    # Topology mutation (driven by repro.control only)
    # ------------------------------------------------------------------

    def install_ring(self, ring: HashRing) -> None:
        """Adopt a new ring version (the migration cutover instant).

        Routers notice the version bump on their next operation and
        rebuild their per-shard client caches; the instant is stamped in
        virtual time for the migration protocol's cutover rule.
        """
        if ring.version <= self.ring.version:
            raise ValueError(
                f"ring version must advance: {ring.version} <= {self.ring.version}"
            )
        missing = [name for name in ring.shards if name not in self._by_name]
        if missing:
            raise ValueError(f"ring names unknown groups: {missing}")
        self.ring = ring
        self.ring_history[ring.version] = ring
        if obs_state.TRACER is not None:
            obs_state.TRACER.instant(
                "shard.ring_install",
                self.fabric.sim.now,
                service=self.name,
                version=ring.version,
                shards=len(ring.shards),
            )
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.gauge("shard.ring_version", service=self.name).set(
                ring.version
            )

    def add_group(self, name: Optional[str] = None) -> SiftGroup:
        """Provision and start a new group on the shared fabric.

        The group joins the backup pool's watch list immediately; it
        owns no keys until a ring naming it is installed.
        """
        if name is None:
            name = f"{self.name}{self._next_group_index}"
            while name in self._by_name:
                self._next_group_index += 1
                name = f"{self.name}{self._next_group_index}"
            self._next_group_index += 1
        elif name in self._by_name:
            raise ValueError(f"group {name!r} already exists")
        group = SiftGroup(
            self.fabric,
            self._sift_config,
            name=name,
            app_factory=kv_app_factory(self.kv_config),
        )
        group.start()
        self.groups.append(group)
        self._by_name[name] = group
        self.pool.watch(group)
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.gauge("shard.groups", service=self.name).set(
                len(self.groups)
            )
        return group

    def retire_group(self, name: str) -> SiftGroup:
        """Decommission a merged-away group (must be off the ring)."""
        if name in self.ring.shards:
            raise ValueError(f"group {name!r} still owns ring ranges")
        group = self._by_name.pop(name)
        self.groups = [g for g in self.groups if g.name != name]
        self.pool.unwatch(group)
        for cpu in group.cpu_nodes:
            if cpu.host.alive:
                cpu.crash()
        for mem in group.memory_nodes:
            if mem.host.alive:
                mem.crash()
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.gauge("shard.groups", service=self.name).set(
                len(self.groups)
            )
        return group

    def resolve_shard(self, shard: str, ring_version: Optional[int] = None) -> str:
        """The current owner of the key range *shard* named at *ring_version*.

        A fault (or any plan) scheduled against a shard name before a
        split/merge still targets the intended *key range*: the name is
        resolved under the ring it was scheduled against, and the
        range's representative point is mapped through the current ring.
        Deterministic — pure ring arithmetic.
        """
        if shard in self.ring.shards and ring_version in (None, self.ring.version):
            return shard
        ring = None
        if ring_version is not None:
            ring = self.ring_history.get(ring_version)
            if ring is None:
                raise KeyError(f"unknown ring version {ring_version}")
            if shard not in ring.shards:
                raise KeyError(f"shard {shard!r} not on ring v{ring_version}")
        else:
            for version in sorted(self.ring_history, reverse=True):
                if shard in self.ring_history[version].shards:
                    ring = self.ring_history[version]
                    break
            if ring is None:
                raise KeyError(f"shard {shard!r} never existed on any ring")
        # The shard's first owned vnode point is in its own arc, so the
        # current ring's owner of that point owns the intended range.
        point = ring.arcs_of(shard)[0][1]
        return self.ring.owner_of_point(point)

    # ------------------------------------------------------------------
    # Introspection and fault injection (chaos / bench hooks)
    # ------------------------------------------------------------------

    @property
    def cpu_nodes(self):
        """Every CPU node across all shards (includes promoted backups)."""
        return [cpu for group in self.groups for cpu in group.cpu_nodes]

    def coordinators(self) -> Dict[str, Optional[str]]:
        """Shard name -> serving coordinator host name (None while down)."""
        out: Dict[str, Optional[str]] = {}
        for group in self.groups:
            coordinator = group.serving_coordinator()
            out[group.name] = None if coordinator is None else coordinator.host.name
        return out

    def group_op_totals(self) -> Dict[str, int]:
        """Per-shard cumulative op totals from each serving coordinator.

        The reconciler's offered-load signal.  A shard whose coordinator
        is mid-failover (or freshly elected, with reset stats) reports
        what its current server has seen; observers must treat deltas as
        ``max(0, delta)``.
        """
        out: Dict[str, int] = {}
        for group in self.groups:
            coordinator = group.serving_coordinator()
            stats = getattr(getattr(coordinator, "app", None), "stats", None) or {}
            out[group.name] = (
                stats.get("puts", 0) + stats.get("gets", 0) + stats.get("deletes", 0)
            )
        return out

    def crash_coordinator(
        self, shard: Optional[str] = None, ring_version: Optional[int] = None
    ):
        """Kill one shard's coordinator (the first shard by default).

        Ring-version-aware: *shard* may name a shard from any installed
        ring version (pass *ring_version* to pin it); the fault lands on
        the group owning that key range under the *current* ring, so a
        schedule written before a split still hits its intended target.
        """
        if shard is None:
            group = self.groups[0]
        else:
            group = self._by_name[self.resolve_shard(shard, ring_version)]
        return group.crash_coordinator()

    def __repr__(self) -> str:
        return (
            f"<ShardedKvService {self.name} shards={len(self.groups)} "
            f"pool={self.pool.idle_backups}/{self.pool.capacity}>"
        )
