"""Event loop, events, and generator-based processes.

The engine is deliberately small: an event is a one-shot waitable, a
process is a generator that yields events, and the simulator is a heap of
``(time, seq, callback)`` entries.  Determinism is guaranteed by the
monotonically increasing sequence number used as a tie-breaker, plus the
seeded RNG streams in :mod:`repro.sim.rng` — two runs with the same seed
replay the same schedule exactly.

Fast paths (all preserve the schedule bit-for-bit; the reference
implementation lives in :mod:`repro.sim.reference` and the equivalence
is pinned by ``tests/test_sim_fastpath.py``):

* zero-delay entries go to a FIFO *ready deque* instead of the heap —
  sequence numbers are still allocated from the shared counter, and the
  run loop merges the deque and the heap by ``(time, seq)``, so the
  execution order is identical to an all-heap schedule;
* an event carries a single-callback slot and only allocates the
  overflow list when a second waiter appears (the dominant case is one
  waiter: a process resuming, or a combinator child);
* settling dispatches inline rather than through a
  ``try_trigger -> trigger -> _dispatch`` call chain;
* delayed entries live in a hierarchical *timer wheel* (three levels of
  256 one-microsecond/256-microsecond/65536-microsecond slots plus an
  overflow heap) instead of a single heap: scheduling is an O(1) bucket
  append, and the run loop drains one slot at a time as a sorted batch
  in a tight loop — one C-level sort per slot instead of one
  heappush/heappop pair per event;
* a :class:`Timeout` can be *lazily cancelled*: its wheel entry is
  nulled in place and skipped on dispatch, and all containers are
  compacted when dead entries pile up — heartbeat/election timers that
  lost their race no longer churn the dispatch machinery;
* ``AnyOf``/``AllOf``/``QuorumEvent`` drop their child-event references
  once settled, so a long-lived combinator does not pin every child
  (and its buffers) for the rest of the run.
"""

from __future__ import annotations

import heapq
from bisect import insort
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.obs import state as obs_state

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "ProcessKilled",
    "SimulationError",
    "Simulator",
    "AnyOf",
    "AllOf",
    "QuorumEvent",
    "all_of",
    "any_of",
    "quorum",
]


class SimulationError(RuntimeError):
    """Raised when the simulation itself is misused (not a modelled fault)."""


class ProcessKilled(Exception):
    """Thrown into a process generator when :meth:`Process.kill` is called."""


class Event:
    """A one-shot waitable condition.

    An event starts *pending* and settles exactly once, either by
    :meth:`trigger` (with a value) or :meth:`fail` (with an exception).
    Processes wait on an event by ``yield``-ing it; other code can attach
    callbacks directly with :meth:`add_callback`.
    """

    __slots__ = ("sim", "_callback", "_callbacks", "_settled", "_ok", "_value", "_exc")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callback: Optional[Callable[["Event"], None]] = None
        self._callbacks: Optional[List[Callable[["Event"], None]]] = None
        self._settled = False
        self._ok = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None

    # -- state -----------------------------------------------------------

    @property
    def settled(self) -> bool:
        """True once the event has triggered or failed."""
        return self._settled

    @property
    def ok(self) -> bool:
        """True if the event settled successfully."""
        return self._settled and self._ok

    @property
    def failed(self) -> bool:
        """True if the event settled with an exception."""
        return self._settled and not self._ok

    @property
    def value(self) -> Any:
        """The success value (only meaningful when :attr:`ok`)."""
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception (only meaningful when :attr:`failed`)."""
        return self._exc

    # -- settling --------------------------------------------------------
    # The dispatch body is inlined into each settling method: events are
    # settled millions of times per benchmark run and the three-deep
    # try_trigger -> trigger -> _dispatch call chain showed up in every
    # profile.  Callback order is single slot first, then the overflow
    # list, which is exactly registration order.

    def trigger(self, value: Any = None) -> "Event":
        """Settle the event successfully with *value*."""
        if self._settled:
            raise SimulationError("event already settled")
        self._settled = True
        self._ok = True
        self._value = value
        cb = self._callback
        if cb is not None:
            self._callback = None
            cb(self)
        cbs = self._callbacks
        if cbs is not None:
            self._callbacks = None
            for fn in cbs:
                fn(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Settle the event with an exception; waiters will have it raised."""
        if self._settled:
            raise SimulationError("event already settled")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._settled = True
        self._ok = False
        self._exc = exc
        cb = self._callback
        if cb is not None:
            self._callback = None
            cb(self)
        cbs = self._callbacks
        if cbs is not None:
            self._callbacks = None
            for fn in cbs:
                fn(self)
        return self

    def try_trigger(self, value: Any = None) -> bool:
        """Trigger unless already settled; returns whether it took effect."""
        if self._settled:
            return False
        self._settled = True
        self._ok = True
        self._value = value
        cb = self._callback
        if cb is not None:
            self._callback = None
            cb(self)
        cbs = self._callbacks
        if cbs is not None:
            self._callbacks = None
            for fn in cbs:
                fn(self)
        return True

    def try_fail(self, exc: BaseException) -> bool:
        """Fail unless already settled; returns whether it took effect."""
        if self._settled:
            return False
        self.fail(exc)
        return True

    # -- waiting ---------------------------------------------------------

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Invoke *fn(event)* when the event settles (immediately if it has)."""
        if self._settled:
            fn(self)
        elif self._callback is None:
            self._callback = fn
        elif self._callbacks is None:
            self._callbacks = [fn]
        else:
            self._callbacks.append(fn)

    def _dispatch(self) -> None:
        # Cold-path dispatch used by Process (kill/crash); the hot settle
        # paths above inline this.
        cb = self._callback
        if cb is not None:
            self._callback = None
            cb(self)
        cbs = self._callbacks
        if cbs is not None:
            self._callbacks = None
            for fn in cbs:
                fn(self)


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ("delay", "_entry")

    #: Shared marker exception for cancelled timers (never raised into a
    #: waiter — cancellation detaches all callbacks — so one instance is
    #: safe and avoids an allocation per cancel).
    _CANCELLED = SimulationError("timeout cancelled")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(sim)
        self.delay = delay
        # The scheduled callable is try_trigger itself: a timeout that
        # raced with explicit settling (cancellation, an ack arriving
        # first) fires as a no-op.
        self._entry = sim.schedule(delay, self.try_trigger, value)

    def cancel(self) -> bool:
        """Lazily cancel a pending timeout; returns whether it was pending.

        The heap entry is nulled in place (skipped on pop) instead of
        being removed, so cancelling is O(1).  Only the *owner* of a
        timeout may cancel it: waiters attached to a cancelled timeout
        are never woken.  Cancelling a settled timeout is a no-op.
        """
        if self._settled:
            return False
        entry = self._entry
        self._entry = None
        if not self.sim.cancel(entry):
            return False
        # Mark settled so a later explicit trigger/fail raises loudly and
        # `settled` reads as "this timer will never fire".
        self._settled = True
        self._ok = False
        self._exc = self._CANCELLED
        self._callback = None
        self._callbacks = None
        return True


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running process: a generator that yields :class:`Event` objects.

    The process itself is an event — it triggers with the generator's
    return value, or fails with the generator's uncaught exception.  A
    process whose failure nobody observes (no callbacks attached when it
    dies) aborts the simulation; this turns silent protocol bugs into
    loud test failures.
    """

    __slots__ = ("_gen", "name", "_waiting_on", "span")

    def __init__(self, sim: "Simulator", gen: ProcessGenerator, name: str = ""):
        super().__init__(sim)
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        #: Span context the process runs under on traced runs; inherited
        #: from the spawner's ambient context, None when tracing is off.
        self.span = None
        # Start the process asynchronously at the current time.
        sim.schedule(0.0, self._step_ctx, None, None)

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._settled

    def kill(self, reason: str = "killed") -> None:
        """Throw :class:`ProcessKilled` into the process.

        Used for crash injection.  Killing an already-finished process is a
        no-op.  The process event *fails* with :class:`ProcessKilled`, which
        joiners must be prepared to handle; a killed process that nobody is
        joined on is cleaned up silently.
        """
        if self._settled:
            return
        self._waiting_on = None
        try:
            self._gen.throw(ProcessKilled(reason))
        except (ProcessKilled, StopIteration):
            pass
        except BaseException:
            # The generator used the kill for cleanup and raised something
            # else; treat as terminated regardless (a crashed node's
            # processes cannot signal anyone).
            pass
        finally:
            self._gen.close()
        if not self._settled:
            self._settled = True
            self._ok = False
            self._exc = ProcessKilled(reason)
            self._dispatch()

    # -- generator driving -------------------------------------------------

    def _step(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        if self._settled:  # killed while a resume was already scheduled
            return
        # Iterative stepping: a chain of already-settled targets (cache
        # hits, zero-cost CPU charges) resumes in a loop instead of
        # recursing through add_callback -> _resume -> _step frames.
        gen_send = self._gen.send
        gen_throw = self._gen.throw
        while True:
            self._waiting_on = None
            try:
                if throw_exc is not None:
                    target = gen_throw(throw_exc)
                else:
                    target = gen_send(send_value)
            except StopIteration as stop:
                self.try_trigger(stop.value)
                return
            except ProcessKilled:
                if not self._settled:
                    self._settled = True
                    self._ok = False
                    self._exc = ProcessKilled("killed")
                    self._dispatch()
                return
            except BaseException as exc:
                self._on_crash(exc)
                return
            if not isinstance(target, Event):
                self._on_crash(
                    SimulationError(
                        f"process {self.name!r} yielded {target!r}; "
                        "processes may only yield Event instances"
                    )
                )
                return
            if target._settled:
                if target._ok:
                    send_value, throw_exc = target._value, None
                else:
                    send_value, throw_exc = None, target._exc
                continue
            self._waiting_on = target
            if target._callback is None:
                target._callback = self._resume
            elif target._callbacks is None:
                target._callbacks = [self._resume]
            else:
                target._callbacks.append(self._resume)
            return

    def _step_ctx(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        """Step the generator under this process's span context.

        On traced runs the tracer's ambient :attr:`Tracer.current` is
        swapped to :attr:`span` around the step (and restored, so inline
        settle chains that resume other processes re-establish their own
        context).  With tracing off this is a single ``is None`` check
        in front of :meth:`_step`.
        """
        tracer = obs_state.TRACER
        if tracer is None:
            self._step(send_value, throw_exc)
            return
        prev = tracer.current
        tracer.current = self.span
        try:
            self._step(send_value, throw_exc)
        finally:
            tracer.current = prev

    def _resume(self, event: Event) -> None:
        if self._settled:
            return
        if event is not self._waiting_on:
            return  # stale callback from an event we no longer wait on
        if obs_state.TRACER is not None:
            if event._ok:
                self._step_ctx(event._value, None)
            else:
                self._step_ctx(None, event._exc)
        elif event._ok:
            self._step(event._value, None)
        else:
            self._step(None, event._exc)

    def _on_crash(self, exc: BaseException) -> None:
        self._settled = True
        self._ok = False
        self._exc = exc
        if obs_state.TRACER is not None:
            obs_state.TRACER.instant(
                "proc.crash", self.sim.now, process=self.name, error=type(exc).__name__
            )
        had_waiters = self._callback is not None or bool(self._callbacks)
        self._dispatch()
        if not had_waiters:
            self.sim._report_unhandled(self, exc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else ("ok" if self.ok else "failed")
        return f"<Process {self.name} {state}>"


class AnyOf(Event):
    """Triggers when the first child event settles (success or failure)."""

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            raise SimulationError("any_of() requires at least one event")
        for index, event in enumerate(self.events):
            event.add_callback(lambda ev, i=index: self._child_settled(i, ev))

    def _child_settled(self, index: int, event: Event) -> None:
        if self._settled:
            return
        if event._ok:
            self.try_trigger((index, event._value))
        else:
            self.try_fail(event._exc)
        self.events = ()  # drop child references once settled


class AllOf(Event):
    """Triggers when every child succeeded; fails on the first child failure."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.trigger([])
            return
        for event in self.events:
            event.add_callback(self._child_settled)

    def _child_settled(self, event: Event) -> None:
        if self._settled:
            return
        if not event._ok:
            self.try_fail(event._exc)
            self.events = ()
            return
        self._remaining -= 1
        if self._remaining == 0:
            values = [ev._value for ev in self.events]
            self.events = ()
            self.trigger(values)


class QuorumError(Exception):
    """Raised when a quorum can no longer be reached."""

    def __init__(self, needed: int, failures: List[BaseException]):
        self.needed = needed
        self.failures = failures
        super().__init__(
            f"quorum of {needed} unreachable ({len(failures)} child failures)"
        )


class QuorumEvent(Event):
    """Triggers when *k* of the child events have succeeded.

    This models "wait for a majority of RDMA acknowledgements": late
    completions are ignored, and the event fails only when more than
    ``n - k`` children have failed, making the quorum impossible.
    The success value is a list of ``(index, value)`` pairs for the first
    *k* successes in settle order.
    """

    __slots__ = ("events", "needed", "_total", "_successes", "_failures")

    def __init__(self, sim: "Simulator", events: Iterable[Event], needed: int):
        super().__init__(sim)
        self.events = list(events)
        self.needed = needed
        self._total = len(self.events)
        self._successes: List[Tuple[int, Any]] = []
        self._failures: List[BaseException] = []
        if needed <= 0:
            self.trigger([])
            return
        if needed > self._total:
            raise SimulationError(
                f"quorum of {needed} impossible with {self._total} events"
            )
        for index, event in enumerate(self.events):
            event.add_callback(lambda ev, i=index: self._child_settled(i, ev))

    def _child_settled(self, index: int, event: Event) -> None:
        if self._settled:
            return
        if event._ok:
            self._successes.append((index, event._value))
            if len(self._successes) >= self.needed:
                self.events = ()  # late completions only see the settled check
                self.trigger(list(self._successes))
        else:
            self._failures.append(event._exc)
            if len(self._failures) > self._total - self.needed:
                self.events = ()
                self.fail(QuorumError(self.needed, list(self._failures)))


class Simulator:
    """The event loop: a hierarchical timer wheel of timestamped callbacks.

    Three pools back the queue, all holding ``[time, seq, fn, args]``
    entries and all drawing sequence numbers from one counter:

    * a FIFO *ready deque* for zero-delay work;
    * a three-level *timer wheel* for delayed work: level 0 has 256
      one-microsecond slots, level 1 has 256 slots of 256 us, level 2
      has 256 slots of 65536 us (2^24 us ~ 16.7 s of simulated horizon),
      each level carrying a bitmask of non-empty slots so the next slot
      is found with bit tricks rather than a scan.  Scheduling is an
      O(1) append to the slot bucket keyed by ``int(time)``;
    * an *overflow heap* for entries beyond the wheel horizon.

    The run loop drains one slot at a time: the bucket is sorted (one
    C-level sort amortised over its entries) into the current *batch*
    and consumed through an index, merging with the ready deque by
    ``(time, seq)``.  When a level-0 page empties, the next level-1
    bucket cascades down (and so on), and callbacks that schedule work
    at or behind the loaded batch's slot are insorted into the batch —
    so the observable execution order is exactly that of a single heap
    (the reference implementation in :mod:`repro.sim.reference`).
    """

    #: Compact the containers when at least this many cancelled entries
    #: are pending *and* they outnumber the live ones.
    _COMPACT_MIN = 512

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._ready: "deque[list]" = deque()
        # Timer wheel state.  _pageN is the absolute page (time >> shift)
        # the level currently covers; entries are classified against the
        # pages at schedule time and re-classified on cascade.
        self._wheel0: List[list] = [[] for _ in range(256)]
        self._wheel1: List[list] = [[] for _ in range(256)]
        self._wheel2: List[list] = [[] for _ in range(256)]
        self._m0 = 0
        self._m1 = 0
        self._m2 = 0
        self._page0 = 0
        self._page1 = 0
        self._page2 = 0
        self._overflow: List[list] = []
        # The batch is the sorted contents of the most recently drained
        # slot; _bi is the consume pointer, _batch_slot the slot's
        # integer time (-1 until the first slot loads).
        self._batch: List[list] = []
        self._bi = 0
        self._batch_slot = -1
        self._cancelled = 0
        self._unhandled: List[Tuple[Process, BaseException]] = []

    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self._now

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> list:
        """Run ``fn(*args)`` after *delay* microseconds of virtual time.

        Returns the (mutable) queue entry; :class:`Timeout` keeps it for
        lazy cancellation.  Zero-delay entries bypass the wheel entirely.
        """
        self._seq = seq = self._seq + 1
        if delay == 0.0:
            entry = [self._now, seq, fn, args]
            self._ready.append(entry)
            return entry
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self._now + delay
        entry = [time, seq, fn, args]
        try:
            ti = int(time)
        except (OverflowError, ValueError):  # inf: beyond any horizon
            heapq.heappush(self._overflow, entry)
            return entry
        if ti <= self._batch_slot:
            # At or behind the loaded batch's slot (the wheel may have
            # been refilled ahead of the clock): insort into the batch.
            # time >= now puts the insertion point at or after the
            # consume pointer, so the entry still dispatches in order.
            insort(self._batch, entry)
            return entry
        page = ti >> 8
        if page == self._page0:
            slot = ti & 255
            self._wheel0[slot].append(entry)
            self._m0 |= 1 << slot
        elif (page >> 8) == self._page1:
            slot = page & 255
            self._wheel1[slot].append(entry)
            self._m1 |= 1 << slot
        elif (page >> 16) == self._page2:
            slot = (page >> 8) & 255
            self._wheel2[slot].append(entry)
            self._m2 |= 1 << slot
        else:
            heapq.heappush(self._overflow, entry)
        return entry

    def cancel(self, entry: Optional[list]) -> bool:
        """Lazily cancel a queue entry returned by :meth:`schedule`.

        For guard timers (RPC / verb timeouts) that lost their race: the
        callback must already be a provable no-op.  O(1); the entry is
        skipped when dispatched, and the containers compact when dead
        entries dominate.  Accepts ``None`` (the reference engine's
        schedule returns nothing) so callers can stay engine-agnostic.
        """
        if entry is None or entry[2] is None:
            return False
        entry[2] = None
        entry[3] = ()
        self._note_cancelled()
        return True

    def _note_cancelled(self) -> None:
        """Count one lazily-cancelled entry; compact when dead entries
        dominate (dispatch order of live entries is unaffected — every
        container keeps its ``(time, seq)`` order through compaction).

        The pending-entry census walks every container, so it only runs
        on every 256th cancellation past the threshold — keeping both
        the cancel path and the dispatch loops free of bookkeeping."""
        self._cancelled = cancelled = self._cancelled + 1
        if (
            cancelled >= self._COMPACT_MIN
            and not (cancelled & 255)
            and cancelled * 2 > self._pending_timers()
        ):
            self._compact()

    def _pending_timers(self) -> int:
        """Entries (live + dead) across the batch tail, wheels and
        overflow heap — the denominator for the compaction trigger."""
        total = len(self._batch) - self._bi + len(self._overflow)
        for wheel in (self._wheel0, self._wheel1, self._wheel2):
            for bucket in wheel:
                total += len(bucket)
        return total

    def _compact(self) -> None:
        """Drop dead entries from every container, in place.

        ``run()`` holds local references to the ready deque and the
        current batch (including its consumed prefix, which the consume
        pointer indexes into), so both must keep their identity and the
        batch its prefix length; wheel buckets and the overflow heap are
        only ever reached through ``self`` and may be rebuilt."""
        bi = self._bi
        batch = self._batch
        batch[bi:] = [e for e in batch[bi:] if e[2] is not None]
        for wheel, mask_name in (
            (self._wheel0, "_m0"),
            (self._wheel1, "_m1"),
            (self._wheel2, "_m2"),
        ):
            old = getattr(self, mask_name)
            mask = 0
            while old:
                low = old & -old
                slot = low.bit_length() - 1
                old ^= low
                bucket = [e for e in wheel[slot] if e[2] is not None]
                wheel[slot] = bucket
                if bucket:
                    mask |= low
            setattr(self, mask_name, mask)
        overflow = self._overflow
        overflow[:] = [e for e in overflow if e[2] is not None]
        heapq.heapify(overflow)
        live = [e for e in self._ready if e[2] is not None]
        self._ready.clear()
        self._ready.extend(live)
        self._cancelled = 0

    def _refill(self) -> bool:
        """Load the next non-empty slot into the batch; False when idle.

        Cascades level 1 / level 2 buckets (and the overflow heap) down
        as pages roll over.  Pure container motion: the clock does not
        move and no callback runs, so there is no observable effect
        until the batch entries dispatch in ``(time, seq)`` order.
        """
        heappop = heapq.heappop
        while True:
            m0 = self._m0
            if m0:
                low = m0 & -m0
                slot = low.bit_length() - 1
                m0 ^= low
                wheel0 = self._wheel0
                bucket = wheel0[slot]
                wheel0[slot] = []
                # Sparse-page amortization: µs-spaced singleton timers
                # (verb guards, serialise completions) would otherwise
                # pay one refill each, so keep absorbing slots while the
                # batch stays small.  Dense slots skip this entirely,
                # and correctness is unchanged: the batch is sorted and
                # later arrivals at or behind ``_batch_slot`` insort.
                while m0 and len(bucket) < 16:
                    low = m0 & -m0
                    slot = low.bit_length() - 1
                    m0 ^= low
                    bucket.extend(wheel0[slot])
                    wheel0[slot] = []
                self._m0 = m0
                bucket.sort()
                self._batch = bucket
                self._bi = 0
                self._batch_slot = (self._page0 << 8) | slot
                return True
            m1 = self._m1
            if m1:
                low = m1 & -m1
                slot = low.bit_length() - 1
                self._m1 = m1 ^ low
                bucket = self._wheel1[slot]
                self._wheel1[slot] = []
                self._page0 = (self._page1 << 8) | slot
                wheel0 = self._wheel0
                m0 = 0
                for entry in bucket:
                    s = int(entry[0]) & 255
                    wheel0[s].append(entry)
                    m0 |= 1 << s
                self._m0 = m0
                continue
            m2 = self._m2
            if m2:
                low = m2 & -m2
                slot = low.bit_length() - 1
                self._m2 = m2 ^ low
                bucket = self._wheel2[slot]
                self._wheel2[slot] = []
                self._page1 = (self._page2 << 8) | slot
                wheel1 = self._wheel1
                m1 = 0
                for entry in bucket:
                    s = (int(entry[0]) >> 8) & 255
                    wheel1[s].append(entry)
                    m1 |= 1 << s
                self._m1 = m1
                continue
            overflow = self._overflow
            while overflow and overflow[0][2] is None:
                heappop(overflow)
                self._cancelled -= 1
            if not overflow:
                return False
            head = overflow[0][0]
            try:
                self._page2 = page2 = int(head) >> 24
            except (OverflowError, ValueError):
                return False  # only inf entries remain: nothing can fire
            horizon = float((page2 + 1) << 24)
            wheel2 = self._wheel2
            m2 = 0
            while overflow and overflow[0][0] < horizon:
                entry = heappop(overflow)
                if entry[2] is None:
                    self._cancelled -= 1
                    continue
                s = (int(entry[0]) >> 16) & 255
                wheel2[s].append(entry)
                m2 |= 1 << s
            self._m2 = m2

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after *delay* microseconds."""
        return Timeout(self, delay, value)

    def spawn(self, gen: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from a generator."""
        process = Process(self, gen, name)
        tracer = obs_state.TRACER
        if tracer is not None:
            process.span = tracer.current
            tracer.instant("proc.spawn", self._now, process=process.name)
        return process

    # -- introspection -----------------------------------------------------

    def next_event_time(self) -> Optional[float]:
        """Virtual time of the earliest pending entry, or None when idle.

        Lazily-cancelled entries at the ready/overflow heads are
        discarded on the way; wheel buckets are scanned without moving.
        """
        ready = self._ready
        while ready and ready[0][2] is None:
            ready.popleft()
            self._cancelled -= 1
        timer = self._next_timer_time()
        if ready:
            if timer is None or ready[0][0] <= timer:
                return ready[0][0]
        return timer

    def _next_timer_time(self) -> Optional[float]:
        """Earliest live delayed entry across batch, wheel and overflow.

        The containers are ordered (batch <= level-0 slots <= level-1
        slots <= level-2 slots <= overflow), so the first live entry
        found walking them in that order is the earliest.
        """
        batch = self._batch
        for i in range(self._bi, len(batch)):
            if batch[i][2] is not None:
                return batch[i][0]
        for wheel, mask in (
            (self._wheel0, self._m0),
            (self._wheel1, self._m1),
            (self._wheel2, self._m2),
        ):
            while mask:
                low = mask & -mask
                mask ^= low
                best = None
                for entry in wheel[low.bit_length() - 1]:
                    if entry[2] is not None and (best is None or entry[0] < best):
                        best = entry[0]
                if best is not None:
                    return best
        overflow = self._overflow
        while overflow and overflow[0][2] is None:
            heapq.heappop(overflow)
            self._cancelled -= 1
        if overflow:
            return overflow[0][0]
        return None

    # -- running -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock reaches *until*.

        Returns the clock value at exit.  Raises :class:`SimulationError`
        if any process died of an unobserved exception.
        """
        ready = self._ready
        unhandled = self._unhandled  # only ever appended to, never rebound
        limit = float("inf") if until is None else until
        # Local aliases are safe across callbacks: compaction mutates the
        # ready deque and the batch in place (preserving the consumed
        # prefix), insort grows the batch at or after the consume pointer
        # (len() is re-read), and only _refill() rebinds self._batch —
        # which happens nowhere but right here.
        batch = self._batch
        bi = self._bi
        while True:
            if bi >= len(batch):
                if self._refill():
                    batch = self._batch
                    bi = 0
                    continue
                # No delayed work anywhere: drain the ready deque alone.
                if not ready:
                    break
                entry = ready[0]
                time = entry[0]
                if time > limit:
                    self._now = until
                    return until
                ready.popleft()
                fn = entry[2]
                if fn is None:  # lazily cancelled
                    self._cancelled -= 1
                    continue
                entry[2] = None  # consumed: a late cancel() no-ops
                self._now = time
                fn(*entry[3])
                if unhandled:
                    self._raise_unhandled()
                continue
            if not ready:
                # Vectorized slot dispatch: consume the sorted batch in a
                # tight loop.  Callbacks may append zero-delay work (break
                # to the merge path), insort earlier-than-slot work into
                # the batch, or trigger compaction, so the consume pointer
                # is published before every callback.
                while bi < len(batch):
                    entry = batch[bi]
                    time = entry[0]
                    if time > limit:
                        self._bi = bi
                        self._now = until
                        return until
                    bi += 1
                    self._bi = bi
                    fn = entry[2]
                    if fn is None:  # lazily cancelled
                        self._cancelled -= 1
                        continue
                    entry[2] = None
                    self._now = time
                    fn(*entry[3])
                    if unhandled:
                        self._raise_unhandled()
                    if ready:
                        break
                continue
            # Merge path: pick the earlier of the deque head and the
            # batch head by (time, seq).  The deque is FIFO-sorted by
            # construction: zero-delay entries carry the (non-decreasing)
            # clock value at their scheduling instant plus an increasing
            # seq; the batch is kept sorted.
            entry = batch[bi]
            head = ready[0]
            if head[0] < entry[0] or (head[0] == entry[0] and head[1] < entry[1]):
                time = head[0]
                if time > limit:
                    self._now = until
                    return until
                ready.popleft()
                fn = head[2]
                if fn is None:  # lazily cancelled
                    self._cancelled -= 1
                    continue
                head[2] = None
                self._now = time
                fn(*head[3])
            else:
                time = entry[0]
                if time > limit:
                    self._now = until
                    return until
                bi += 1
                self._bi = bi
                fn = entry[2]
                if fn is None:  # lazily cancelled
                    self._cancelled -= 1
                    continue
                entry[2] = None
                self._now = time
                fn(*entry[3])
            if unhandled:
                self._raise_unhandled()
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _raise_unhandled(self) -> None:
        process, exc = self._unhandled[0]
        raise SimulationError(
            f"process {process.name!r} died of an unhandled exception"
        ) from exc

    def run_until_settled(
        self, event: Event, deadline: float, step: float = 1_000.0
    ) -> bool:
        """Advance time until *event* settles or *deadline* passes.

        Unlike ``run(until=deadline)`` this stops as soon as the event
        settles, which matters when perpetual background activity
        (heartbeats) would otherwise keep the clock running to the
        deadline.  Returns whether the event settled.

        When the next queued entry is far away the loop skips straight
        to it in one ``run()`` call instead of stepping the clock *step*
        microseconds at a time.  The skip target is still quantised to
        the same ``now + k*step`` ladder the stepped loop would have
        walked (reproducing its float arithmetic exactly), so the clock
        value observed by callers when the event settles is bit-identical
        to the reference behaviour.
        """
        while not event._settled and self._now < deadline:
            target = min(self._now + step, deadline)
            nxt = self.next_event_time()
            if nxt is None:
                # Nothing queued: no callback can ever settle the event,
                # so jump straight to the deadline.
                self.run(until=deadline)
                break
            if nxt > target and step > 0:
                # Walk the boundary ladder in pure floats (identical to
                # the stepped loop's arithmetic), then run once.
                while target < nxt and target < deadline:
                    target = min(target + step, deadline)
            self.run(until=target)
        return event._settled

    def run_process(self, gen: ProcessGenerator, name: str = "") -> Any:
        """Spawn *gen*, run the simulation, and return the process result."""
        process = self.spawn(gen, name)
        self.run()
        if not process.settled:
            raise SimulationError(
                f"process {name or 'process'} never finished (deadlock?)"
            )
        if process.failed:
            raise process.exception
        return process.value

    def _report_unhandled(self, process: Process, exc: BaseException) -> None:
        self._unhandled.append((process, exc))


def any_of(sim: Simulator, events: Iterable[Event]) -> AnyOf:
    """Wait for the first of *events* to settle."""
    return AnyOf(sim, events)


def all_of(sim: Simulator, events: Iterable[Event]) -> AllOf:
    """Wait for all of *events* to succeed."""
    return AllOf(sim, events)


def quorum(sim: Simulator, events: Iterable[Event], needed: int) -> QuorumEvent:
    """Wait for *needed* of *events* to succeed (majority-ack primitive)."""
    return QuorumEvent(sim, events, needed)
