"""Reference (pre-fast-path) engine, kept verbatim for A/B validation.

This is the straightforward all-heap implementation of the simulator
that :mod:`repro.sim.engine` optimises: one ``(time, seq, fn, args)``
heap, list-of-callbacks events, recursive process stepping, and a
1 ms-stepped ``run_until_settled``.  It is retained for two reasons:

* **equivalence tests** (``tests/test_sim_fastpath.py``) drive identical
  schedules through both engines and assert the traces match exactly —
  this is the executable definition of "the fast paths are
  byte-identical";
* **perfbench** (:mod:`repro.bench.perfbench`) uses it as the wall-clock
  baseline when recording the engine speedup.

Do not optimise this module; its value is being obviously correct.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.obs import state as obs_state
from repro.sim import engine as _fast

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "ProcessKilled",
    "SimulationError",
    "Simulator",
    "AnyOf",
    "AllOf",
    "QuorumEvent",
    "all_of",
    "any_of",
    "quorum",
]


class SimulationError(RuntimeError):
    """Raised when the simulation itself is misused (not a modelled fault)."""


class ProcessKilled(Exception):
    """Thrown into a process generator when :meth:`Process.kill` is called."""


class Event:
    """A one-shot waitable condition.

    An event starts *pending* and settles exactly once, either by
    :meth:`trigger` (with a value) or :meth:`fail` (with an exception).
    Processes wait on an event by ``yield``-ing it; other code can attach
    callbacks directly with :meth:`add_callback`.
    """

    __slots__ = ("sim", "_callbacks", "_settled", "_ok", "_value", "_exc")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: List[Callable[["Event"], None]] = []
        self._settled = False
        self._ok = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None

    # -- state -----------------------------------------------------------

    @property
    def settled(self) -> bool:
        """True once the event has triggered or failed."""
        return self._settled

    @property
    def ok(self) -> bool:
        """True if the event settled successfully."""
        return self._settled and self._ok

    @property
    def failed(self) -> bool:
        """True if the event settled with an exception."""
        return self._settled and not self._ok

    @property
    def value(self) -> Any:
        """The success value (only meaningful when :attr:`ok`)."""
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception (only meaningful when :attr:`failed`)."""
        return self._exc

    # -- settling --------------------------------------------------------

    def trigger(self, value: Any = None) -> "Event":
        """Settle the event successfully with *value*."""
        if self._settled:
            raise SimulationError("event already settled")
        self._settled = True
        self._ok = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Settle the event with an exception; waiters will have it raised."""
        if self._settled:
            raise SimulationError("event already settled")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._settled = True
        self._ok = False
        self._exc = exc
        self._dispatch()
        return self

    def try_trigger(self, value: Any = None) -> bool:
        """Trigger unless already settled; returns whether it took effect."""
        if self._settled:
            return False
        self.trigger(value)
        return True

    def try_fail(self, exc: BaseException) -> bool:
        """Fail unless already settled; returns whether it took effect."""
        if self._settled:
            return False
        self.fail(exc)
        return True

    # -- waiting ---------------------------------------------------------

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Invoke *fn(event)* when the event settles (immediately if it has)."""
        if self._settled:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(sim)
        self.delay = delay
        sim.schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        # A timeout can race with explicit settling (e.g. cancellation).
        self.try_trigger(value)

    def cancel(self) -> bool:
        # Pre-fast-path behaviour: timers cannot be cancelled; the owner
        # just drops its reference and _fire later no-ops via try_trigger.
        return False


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running process: a generator that yields :class:`Event` objects.

    The process itself is an event — it triggers with the generator's
    return value, or fails with the generator's uncaught exception.  A
    process whose failure nobody observes (no callbacks attached when it
    dies) aborts the simulation; this turns silent protocol bugs into
    loud test failures.
    """

    __slots__ = ("_gen", "name", "_waiting_on", "span")

    def __init__(self, sim: "Simulator", gen: ProcessGenerator, name: str = ""):
        super().__init__(sim)
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        #: Span context the process runs under on traced runs; inherited
        #: from the spawner's ambient context, None when tracing is off.
        self.span = None
        # Start the process asynchronously at the current time.
        sim.schedule(0.0, self._step_ctx, None, None)

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._settled

    def kill(self, reason: str = "killed") -> None:
        """Throw :class:`ProcessKilled` into the process.

        Used for crash injection.  Killing an already-finished process is a
        no-op.  The process event *fails* with :class:`ProcessKilled`, which
        joiners must be prepared to handle; a killed process that nobody is
        joined on is cleaned up silently.
        """
        if self._settled:
            return
        self._waiting_on = None
        try:
            self._gen.throw(ProcessKilled(reason))
        except (ProcessKilled, StopIteration):
            pass
        except BaseException:
            # The generator used the kill for cleanup and raised something
            # else; treat as terminated regardless (a crashed node's
            # processes cannot signal anyone).
            pass
        finally:
            self._gen.close()
        if not self._settled:
            self._settled = True
            self._ok = False
            self._exc = ProcessKilled(reason)
            self._dispatch()

    # -- generator driving -------------------------------------------------

    def _step(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        if self._settled:  # killed while a resume was already scheduled
            return
        self._waiting_on = None
        try:
            if throw_exc is not None:
                target = self._gen.throw(throw_exc)
            else:
                target = self._gen.send(send_value)
        except StopIteration as stop:
            self.try_trigger(stop.value)
            return
        except ProcessKilled:
            if not self._settled:
                self._settled = True
                self._ok = False
                self._exc = ProcessKilled("killed")
                self._dispatch()
            return
        except BaseException as exc:
            self._on_crash(exc)
            return
        # Model code builds events via `from repro.sim.engine import Event`,
        # so when this reference loop drives it the yielded objects are
        # fast-engine events (they are self-contained and engine-agnostic).
        if not isinstance(target, (Event, _fast.Event)):
            self._on_crash(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes may only yield Event instances"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def _step_ctx(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        """Step the generator under this process's span context.

        Mirrors the fast engine: on traced runs the tracer's ambient
        :attr:`Tracer.current` is swapped to :attr:`span` around the
        step and restored afterwards; with tracing off this is a single
        ``is None`` check in front of :meth:`_step`.
        """
        tracer = obs_state.TRACER
        if tracer is None:
            self._step(send_value, throw_exc)
            return
        prev = tracer.current
        tracer.current = self.span
        try:
            self._step(send_value, throw_exc)
        finally:
            tracer.current = prev

    def _resume(self, event: Event) -> None:
        if self._settled:
            return
        if event is not self._waiting_on:
            return  # stale callback from an event we no longer wait on
        if obs_state.TRACER is not None:
            if event.ok:
                self._step_ctx(event.value, None)
            else:
                self._step_ctx(None, event.exception)
        elif event.ok:
            self._step(event.value, None)
        else:
            self._step(None, event.exception)

    def _on_crash(self, exc: BaseException) -> None:
        self._settled = True
        self._ok = False
        self._exc = exc
        if obs_state.TRACER is not None:
            obs_state.TRACER.instant(
                "proc.crash", self.sim.now, process=self.name, error=type(exc).__name__
            )
        had_waiters = bool(self._callbacks)
        self._dispatch()
        if not had_waiters:
            self.sim._report_unhandled(self, exc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else ("ok" if self.ok else "failed")
        return f"<Process {self.name} {state}>"


class AnyOf(Event):
    """Triggers when the first child event settles (success or failure)."""

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            raise SimulationError("any_of() requires at least one event")
        for index, event in enumerate(self.events):
            event.add_callback(lambda ev, i=index: self._child_settled(i, ev))

    def _child_settled(self, index: int, event: Event) -> None:
        if event.ok:
            self.try_trigger((index, event.value))
        else:
            self.try_fail(event.exception)


class AllOf(Event):
    """Triggers when every child succeeded; fails on the first child failure."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.trigger([])
            return
        for event in self.events:
            event.add_callback(self._child_settled)

    def _child_settled(self, event: Event) -> None:
        if self._settled:
            return
        if event.failed:
            self.try_fail(event.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.trigger([ev.value for ev in self.events])


class QuorumError(Exception):
    """Raised when a quorum can no longer be reached."""

    def __init__(self, needed: int, failures: List[BaseException]):
        self.needed = needed
        self.failures = failures
        super().__init__(
            f"quorum of {needed} unreachable ({len(failures)} child failures)"
        )


class QuorumEvent(Event):
    """Triggers when *k* of the child events have succeeded.

    This models "wait for a majority of RDMA acknowledgements": late
    completions are ignored, and the event fails only when more than
    ``n - k`` children have failed, making the quorum impossible.
    The success value is a list of ``(index, value)`` pairs for the first
    *k* successes in settle order.
    """

    __slots__ = ("events", "needed", "_successes", "_failures")

    def __init__(self, sim: "Simulator", events: Iterable[Event], needed: int):
        super().__init__(sim)
        self.events = list(events)
        self.needed = needed
        self._successes: List[Tuple[int, Any]] = []
        self._failures: List[BaseException] = []
        if needed <= 0:
            self.trigger([])
            return
        if needed > len(self.events):
            raise SimulationError(
                f"quorum of {needed} impossible with {len(self.events)} events"
            )
        for index, event in enumerate(self.events):
            event.add_callback(lambda ev, i=index: self._child_settled(i, ev))

    def _child_settled(self, index: int, event: Event) -> None:
        if self._settled:
            return
        if event.ok:
            self._successes.append((index, event.value))
            if len(self._successes) >= self.needed:
                self.trigger(list(self._successes))
        else:
            self._failures.append(event.exception)
            if len(self._failures) > len(self.events) - self.needed:
                self.fail(QuorumError(self.needed, list(self._failures)))


class Simulator:
    """The event loop: a priority queue of timestamped callbacks."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[Tuple[float, int, Callable, tuple]] = []
        self._unhandled: List[Tuple[Process, BaseException]] = []

    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self._now

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after *delay* microseconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, fn, args))

    def cancel(self, entry: Any) -> bool:
        # Pre-fast-path behaviour: entries cannot be cancelled (schedule
        # returns None); the guard fires later as a no-op.
        return False

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after *delay* microseconds."""
        return Timeout(self, delay, value)

    def spawn(self, gen: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from a generator."""
        process = Process(self, gen, name)
        tracer = obs_state.TRACER
        if tracer is not None:
            process.span = tracer.current
            tracer.instant("proc.spawn", self._now, process=process.name)
        return process

    # -- running -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock reaches *until*.

        Returns the clock value at exit.  Raises :class:`SimulationError`
        if any process died of an unobserved exception.
        """
        while self._queue:
            time, _seq, fn, args = self._queue[0]
            if until is not None and time > until:
                self._now = until
                break
            heapq.heappop(self._queue)
            self._now = time
            fn(*args)
            if self._unhandled:
                process, exc = self._unhandled[0]
                raise SimulationError(
                    f"process {process.name!r} died of an unhandled exception"
                ) from exc
        else:
            if until is not None and until > self._now:
                self._now = until
        return self._now

    def run_until_settled(
        self, event: Event, deadline: float, step: float = 1_000.0
    ) -> bool:
        """Advance time until *event* settles or *deadline* passes.

        Unlike ``run(until=deadline)`` this stops as soon as the event
        settles, which matters when perpetual background activity
        (heartbeats) would otherwise keep the clock running to the
        deadline.  Returns whether the event settled.
        """
        while not event.settled and self._now < deadline:
            self.run(until=min(self._now + step, deadline))
        return event.settled

    def run_process(self, gen: ProcessGenerator, name: str = "") -> Any:
        """Spawn *gen*, run the simulation, and return the process result."""
        process = self.spawn(gen, name)
        self.run()
        if not process.settled:
            raise SimulationError(
                f"process {name or 'process'} never finished (deadlock?)"
            )
        if process.failed:
            raise process.exception
        return process.value

    def _report_unhandled(self, process: Process, exc: BaseException) -> None:
        self._unhandled.append((process, exc))


def any_of(sim: Simulator, events: Iterable[Event]) -> AnyOf:
    """Wait for the first of *events* to settle."""
    return AnyOf(sim, events)


def all_of(sim: Simulator, events: Iterable[Event]) -> AllOf:
    """Wait for all of *events* to succeed."""
    return AllOf(sim, events)


def quorum(sim: Simulator, events: Iterable[Event], needed: int) -> QuorumEvent:
    """Wait for *needed* of *events* to succeed (majority-ack primitive)."""
    return QuorumEvent(sim, events, needed)
