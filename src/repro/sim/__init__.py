"""Discrete-event simulation engine.

All Sift experiments run in *virtual time*.  The engine is a classic
event-queue simulator with generator-based processes, closely following the
structure of SimPy but implemented from scratch and trimmed to what the
networking substrate needs:

* :class:`~repro.sim.engine.Simulator` — the event loop and clock.
* :class:`~repro.sim.engine.Event` / :class:`~repro.sim.engine.Timeout` —
  one-shot waitable conditions.
* :class:`~repro.sim.engine.Process` — a generator that yields events.
* :func:`~repro.sim.engine.all_of` / :func:`~repro.sim.engine.any_of` /
  :func:`~repro.sim.engine.quorum` — combinators, the last of which is the
  primitive behind "wait for a majority of RDMA acks".
* :class:`~repro.sim.cpu.CpuPool` — a multi-core FIFO service queue used to
  charge protocol steps with core-microseconds.

The canonical time unit is the **microsecond** (``1.0``); helpers ``MS``
and ``SEC`` are provided for readability.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Process,
    ProcessKilled,
    QuorumEvent,
    SimulationError,
    Simulator,
    Timeout,
    all_of,
    any_of,
    quorum,
)
from repro.sim.cpu import CpuPool
from repro.sim.rng import RngStreams
from repro.sim.units import MS, SEC, US

__all__ = [
    "AllOf",
    "AnyOf",
    "CpuPool",
    "Event",
    "MS",
    "Process",
    "ProcessKilled",
    "QuorumEvent",
    "RngStreams",
    "SEC",
    "SimulationError",
    "Simulator",
    "Timeout",
    "US",
    "all_of",
    "any_of",
    "quorum",
]
