"""Multi-core CPU modelled as a FIFO service queue.

Every protocol step that costs CPU (request parsing, hashing, erasure
encoding, applying log entries) is charged through :meth:`CpuPool.execute`.
With ``c`` cores the pool behaves as an M/G/c queue: up to ``c`` tasks are
in service simultaneously, the rest wait in FIFO order.  This is the
mechanism behind Figure 7 of the paper (throughput vs. provisioned cores)
and the normalized-performance provisioning in Table 2.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.obs import state as obs_state
from repro.sim.engine import Event, SimulationError, Simulator

__all__ = ["CpuPool"]


class CpuPool:
    """A fixed pool of identical cores with a shared FIFO run queue."""

    def __init__(self, sim: Simulator, cores: int, name: str = "cpu"):
        if cores < 1:
            raise SimulationError(f"CPU pool needs at least one core, got {cores}")
        self.sim = sim
        self.cores = cores
        self.name = name
        self._busy = 0
        self._waiting: Deque[Tuple[float, Event]] = deque()
        self._busy_time = 0.0  # accumulated core-microseconds of service

    def execute(self, cost: float) -> Event:
        """Charge *cost* core-microseconds; the event triggers on completion.

        Zero-cost work completes immediately (without a queue round trip) so
        callers can charge optional costs unconditionally.
        """
        done = Event(self.sim)
        if obs_state.REGISTRY is not None and cost > 0.0:
            obs_state.REGISTRY.counter("cpu.core_us", pool=self.name).inc(cost)
        if obs_state.TRACER is not None and cost > 0.0:
            obs_state.TRACER.instant(
                "cpu.execute",
                self.sim.now,
                pool=self.name,
                cost_us=cost,
                queued=len(self._waiting),
            )
        if cost <= 0.0:
            done.trigger(None)
            return done
        if self._busy < self.cores:
            self._start(cost, done)
        else:
            self._waiting.append((cost, done))
        return done

    def _start(self, cost: float, done: Event) -> None:
        self._busy += 1
        self._busy_time += cost
        self.sim.schedule(cost, self._finish, done)

    def _finish(self, done: Event) -> None:
        self._busy -= 1
        if self._waiting:
            cost, next_done = self._waiting.popleft()
            self._start(cost, next_done)
        done.try_trigger(None)

    # -- introspection -----------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Number of tasks waiting for a core right now."""
        return len(self._waiting)

    @property
    def busy_cores(self) -> int:
        """Number of cores currently in service."""
        return self._busy

    def utilisation(self, elapsed: float) -> float:
        """Mean core utilisation over *elapsed* microseconds of virtual time."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_time / (self.cores * elapsed))

    def drain(self) -> None:
        """Discard all queued work (crash injection)."""
        self._waiting.clear()
