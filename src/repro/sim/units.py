"""Time-unit constants.

The simulator clock counts **microseconds** as floats.  Microseconds were
chosen over seconds so that the calibration constants for RDMA verbs
(single-digit values) remain readable at a glance.
"""

US: float = 1.0
"""One microsecond — the base unit of simulated time."""

MS: float = 1_000.0
"""One millisecond in simulator units."""

SEC: float = 1_000_000.0
"""One second in simulator units."""
