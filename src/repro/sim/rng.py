"""Named, independently seeded random streams.

Every stochastic component (latency jitter, election back-off, workload
key choice, trace generation) draws from its own named stream, so adding a
consumer never perturbs the draws seen by the others — a standard
variance-reduction discipline for discrete-event simulations.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict

__all__ = ["RngStreams"]


class RngStreams:
    """A factory of :class:`random.Random` instances keyed by stream name."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (memoised) stream for *name*."""
        rng = self._streams.get(name)
        if rng is None:
            # Derive a per-stream seed that is stable across processes and
            # Python versions (hash() is salted; crc32 is not).
            derived = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode())) & 0xFFFFFFFF
            rng = random.Random(derived)
            self._streams[name] = rng
        return rng
