"""Counters, gauges, and histograms with a labelled registry.

The registry is the machine-readable side of a run: verbs issued by
type, bytes on the wire, core-microseconds burned per node, RPC vs
one-sided ratios, cache hit rates.  Both the benchmark harness
(:mod:`repro.bench`) and the chaos runner (:mod:`repro.chaos.runner`)
publish into it, and :mod:`repro.obs.artifact` embeds a snapshot in
every ``BENCH_*.json``.

Like tracing, collection is off by default and costs one ``is not
None`` check per instrumented site when disabled.  All values derive
from virtual time and seeded RNG, so a snapshot is deterministic in
the experiment seed.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs import state

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "SloHistogram",
    "MetricsRegistry",
    "percentile_labels",
    "current_registry",
    "set_registry",
    "collecting",
]


def percentile_labels(percentiles: Sequence[float]) -> Dict[str, float]:
    """Ordered ``label -> p`` map with ``p{p:g}`` collisions deduped.

    ``99.9`` and ``99.90`` both format to ``p99.9``; the first
    occurrence wins so a summary never emits the same key twice.
    """
    out: Dict[str, float] = {}
    for p in percentiles:
        label = f"p{p:g}"
        if label not in out:
            out[label] = p
    return out


def _key(name: str, labels: Dict[str, Any]) -> str:
    """Canonical series key: ``name{k=v,...}`` with sorted label names."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("key", "value")

    def __init__(self, key: str):
        self.key = key
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.key} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("key", "value")

    def __init__(self, key: str):
        self.key = key
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """A sample distribution summarised as count/sum/min/max/percentiles.

    Samples are kept exactly (benchmark runs are bounded); the summary
    computes percentiles by the same linear interpolation as
    :func:`repro.bench.metrics.percentile`.
    """

    __slots__ = ("key", "samples")

    PERCENTILES = (50.0, 95.0, 99.0, 99.9)

    def __init__(self, key: str):
        self.key = key
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    def percentile(self, p: float) -> float:
        """The *p*-th percentile, 0.0 when no samples were recorded."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def summary(self) -> Dict[str, float]:
        """The JSON-friendly digest embedded in artifacts."""
        out: Dict[str, float] = {"count": float(self.count), "sum": self.total}
        if self.samples:
            out["min"] = min(self.samples)
            out["max"] = max(self.samples)
        for label, p in percentile_labels(self.PERCENTILES).items():
            out[label] = self.percentile(p)
        return out


def _slo_edges() -> Tuple[float, ...]:
    """The shared fixed bucket edges: 1 µs .. ~2^31.5 µs, √2 growth.

    ``math.sqrt`` is correctly rounded by IEEE 754 and float multiply
    is exact-rounded, so repeated multiplication yields bit-identical
    edges on every platform — a requirement for byte-stable artifacts.
    """
    growth = math.sqrt(2.0)
    edges = [1.0]
    for _ in range(63):
        edges.append(edges[-1] * growth)
    return tuple(edges)


class SloHistogram:
    """A fixed-bucket log-scale latency histogram for SLO reporting.

    Unlike :class:`Histogram` (exact samples, bounded runs), this keeps
    only per-bucket counts plus exact count/sum/min/max — O(1) memory
    for the million-client workloads of ROADMAP item 5 — and merges
    across ``--jobs`` workers exactly: bucket counts are integers, so
    elementwise addition loses nothing, and the float sum is folded in
    the same declared point order a serial run would use.

    Percentiles (p50/p99/p999) are estimated by linear interpolation
    inside the covering bucket, clamped to the observed min/max.
    """

    __slots__ = ("key", "counts", "total", "vmin", "vmax")

    EDGES = _slo_edges()
    PERCENTILES = (50.0, 99.0, 99.9)

    def __init__(self, key: str):
        self.key = key
        self.counts = [0] * (len(self.EDGES) + 1)
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample (a latency in virtual microseconds)."""
        value = float(value)
        self.counts[bisect_right(self.EDGES, value)] += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    @property
    def count(self) -> int:
        return sum(self.counts)

    def percentile(self, p: float) -> float:
        """Bucket-interpolated *p*-th percentile, 0.0 with no samples."""
        n = self.count
        if n == 0:
            return 0.0
        target = (p / 100.0) * n
        edges = self.EDGES
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = 0.0 if i == 0 else edges[i - 1]
                upper = edges[i] if i < len(edges) else self.vmax
                frac = (target - cumulative) / bucket_count
                estimate = lower + frac * (upper - lower)
                return min(max(estimate, self.vmin), self.vmax)
            cumulative += bucket_count
        return self.vmax  # pragma: no cover - target <= n always lands above

    def summary(self) -> Dict[str, float]:
        """The JSON-friendly digest embedded in artifact slo sections."""
        n = self.count
        out: Dict[str, float] = {"count": float(n), "sum": self.total}
        if n:
            out["min"] = self.vmin
            out["max"] = self.vmax
        for label, p in percentile_labels(self.PERCENTILES).items():
            out[label] = self.percentile(p)
        return out

    def state(self) -> Dict[str, Any]:
        """Lossless state for :meth:`MetricsRegistry.dump`."""
        return {
            "counts": list(self.counts),
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
        }

    def merge_state(self, other: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`state` into this one exactly."""
        counts = other["counts"]
        if len(counts) != len(self.counts):
            raise ValueError(
                f"slo histogram {self.key}: bucket layout mismatch "
                f"({len(counts)} vs {len(self.counts)})"
            )
        for i, c in enumerate(counts):
            self.counts[i] += int(c)
        self.total += float(other["sum"])
        incoming_min, incoming_max = other["min"], other["max"]
        if incoming_min is not None and (self.vmin is None or incoming_min < self.vmin):
            self.vmin = float(incoming_min)
        if incoming_max is not None and (self.vmax is None or incoming_max > self.vmax):
            self.vmax = float(incoming_max)


class MetricsRegistry:
    """Get-or-create registry of labelled counters, gauges, histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._slos: Dict[str, SloHistogram] = {}

    # -- series access ---------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for (name, labels), created on first use."""
        key = _key(name, labels)
        series = self._counters.get(key)
        if series is None:
            series = self._counters[key] = Counter(key)
        return series

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for (name, labels), created on first use."""
        key = _key(name, labels)
        series = self._gauges.get(key)
        if series is None:
            series = self._gauges[key] = Gauge(key)
        return series

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram for (name, labels), created on first use."""
        key = _key(name, labels)
        series = self._histograms.get(key)
        if series is None:
            series = self._histograms[key] = Histogram(key)
        return series

    def slo(self, name: str, **labels: Any) -> SloHistogram:
        """The SLO histogram for (name, labels), created on first use."""
        key = _key(name, labels)
        series = self._slos.get(key)
        if series is None:
            series = self._slos[key] = SloHistogram(key)
        return series

    # -- queries ---------------------------------------------------------

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """The current value of a counter or gauge, or None if absent."""
        key = _key(name, labels)
        if key in self._counters:
            return self._counters[key].value
        if key in self._gauges:
            return self._gauges[key].value
        return None

    def sum_counters(self, prefix: str) -> float:
        """Total across every counter whose key starts with *prefix*."""
        return sum(c.value for k, c in self._counters.items() if k.startswith(prefix))

    def items(self) -> List[Tuple[str, float]]:
        """(key, value) for every counter and gauge, sorted by key."""
        pairs = [(k, c.value) for k, c in self._counters.items()]
        pairs += [(k, g.value) for k, g in self._gauges.items()]
        return sorted(pairs)

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic JSON-friendly dump of every series."""
        snapshot = {
            "counters": {k: self._counters[k].value for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].summary() for k in sorted(self._histograms)
            },
        }
        if self._slos:
            snapshot["slo"] = {k: self._slos[k].summary() for k in sorted(self._slos)}
        return snapshot

    # -- cross-process merging -------------------------------------------

    def dump(self) -> Dict[str, Any]:
        """Raw, lossless state for shipping across process boundaries.

        Unlike :meth:`snapshot`, histograms keep their full sample lists
        so :meth:`merge_dump` can reproduce exact percentiles and
        float-addition order on the receiving side.
        """
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": {k: list(h.samples) for k, h in self._histograms.items()},
            "slo": {k: s.state() for k, s in self._slos.items()},
        }

    def merge_dump(self, dump: Dict[str, Any]) -> None:
        """Fold a :meth:`dump` from another registry into this one.

        Counters add, gauges take the incoming value (last write wins —
        callers must merge in the same order a serial run would have
        published), and histograms extend with the raw samples, so the
        merged registry is byte-identical to one that collected every
        series itself in that order.
        """
        for key, value in dump.get("counters", {}).items():
            series = self._counters.get(key)
            if series is None:
                series = self._counters[key] = Counter(key)
            series.value += value
        for key, value in dump.get("gauges", {}).items():
            series = self._gauges.get(key)
            if series is None:
                series = self._gauges[key] = Gauge(key)
            series.value = float(value)
        for key, samples in dump.get("histograms", {}).items():
            series = self._histograms.get(key)
            if series is None:
                series = self._histograms[key] = Histogram(key)
            series.samples.extend(float(s) for s in samples)
        for key, slo_state in dump.get("slo", {}).items():
            series = self._slos.get(key)
            if series is None:
                series = self._slos[key] = SloHistogram(key)
            series.merge_state(slo_state)


# -- installation ---------------------------------------------------------


def current_registry() -> Optional[MetricsRegistry]:
    """The globally installed registry, or None when collection is off."""
    return state.REGISTRY


def set_registry(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Install (or, with None, remove) the global registry; returns the old one."""
    previous = state.REGISTRY
    state.REGISTRY = registry
    return previous


@contextmanager
def collecting(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Enable metric collection for a ``with`` block; restores the previous."""
    active = registry if registry is not None else MetricsRegistry()
    previous = set_registry(active)
    try:
        yield active
    finally:
        set_registry(previous)
