"""Counters, gauges, and histograms with a labelled registry.

The registry is the machine-readable side of a run: verbs issued by
type, bytes on the wire, core-microseconds burned per node, RPC vs
one-sided ratios, cache hit rates.  Both the benchmark harness
(:mod:`repro.bench`) and the chaos runner (:mod:`repro.chaos.runner`)
publish into it, and :mod:`repro.obs.artifact` embeds a snapshot in
every ``BENCH_*.json``.

Like tracing, collection is off by default and costs one ``is not
None`` check per instrumented site when disabled.  All values derive
from virtual time and seeded RNG, so a snapshot is deterministic in
the experiment seed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs import state

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_registry",
    "set_registry",
    "collecting",
]


def _key(name: str, labels: Dict[str, Any]) -> str:
    """Canonical series key: ``name{k=v,...}`` with sorted label names."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("key", "value")

    def __init__(self, key: str):
        self.key = key
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.key} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("key", "value")

    def __init__(self, key: str):
        self.key = key
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """A sample distribution summarised as count/sum/min/max/percentiles.

    Samples are kept exactly (benchmark runs are bounded); the summary
    computes percentiles by the same linear interpolation as
    :func:`repro.bench.metrics.percentile`.
    """

    __slots__ = ("key", "samples")

    PERCENTILES = (50.0, 95.0, 99.0)

    def __init__(self, key: str):
        self.key = key
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    def percentile(self, p: float) -> float:
        """The *p*-th percentile, 0.0 when no samples were recorded."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def summary(self) -> Dict[str, float]:
        """The JSON-friendly digest embedded in artifacts."""
        out: Dict[str, float] = {"count": float(self.count), "sum": self.total}
        if self.samples:
            out["min"] = min(self.samples)
            out["max"] = max(self.samples)
        for p in self.PERCENTILES:
            out[f"p{p:g}"] = self.percentile(p)
        return out


class MetricsRegistry:
    """Get-or-create registry of labelled counters, gauges, histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- series access ---------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for (name, labels), created on first use."""
        key = _key(name, labels)
        series = self._counters.get(key)
        if series is None:
            series = self._counters[key] = Counter(key)
        return series

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for (name, labels), created on first use."""
        key = _key(name, labels)
        series = self._gauges.get(key)
        if series is None:
            series = self._gauges[key] = Gauge(key)
        return series

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram for (name, labels), created on first use."""
        key = _key(name, labels)
        series = self._histograms.get(key)
        if series is None:
            series = self._histograms[key] = Histogram(key)
        return series

    # -- queries ---------------------------------------------------------

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """The current value of a counter or gauge, or None if absent."""
        key = _key(name, labels)
        if key in self._counters:
            return self._counters[key].value
        if key in self._gauges:
            return self._gauges[key].value
        return None

    def sum_counters(self, prefix: str) -> float:
        """Total across every counter whose key starts with *prefix*."""
        return sum(c.value for k, c in self._counters.items() if k.startswith(prefix))

    def items(self) -> List[Tuple[str, float]]:
        """(key, value) for every counter and gauge, sorted by key."""
        pairs = [(k, c.value) for k, c in self._counters.items()]
        pairs += [(k, g.value) for k, g in self._gauges.items()]
        return sorted(pairs)

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic JSON-friendly dump of every series."""
        return {
            "counters": {k: self._counters[k].value for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].summary() for k in sorted(self._histograms)
            },
        }

    # -- cross-process merging -------------------------------------------

    def dump(self) -> Dict[str, Any]:
        """Raw, lossless state for shipping across process boundaries.

        Unlike :meth:`snapshot`, histograms keep their full sample lists
        so :meth:`merge_dump` can reproduce exact percentiles and
        float-addition order on the receiving side.
        """
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": {k: list(h.samples) for k, h in self._histograms.items()},
        }

    def merge_dump(self, dump: Dict[str, Any]) -> None:
        """Fold a :meth:`dump` from another registry into this one.

        Counters add, gauges take the incoming value (last write wins —
        callers must merge in the same order a serial run would have
        published), and histograms extend with the raw samples, so the
        merged registry is byte-identical to one that collected every
        series itself in that order.
        """
        for key, value in dump.get("counters", {}).items():
            series = self._counters.get(key)
            if series is None:
                series = self._counters[key] = Counter(key)
            series.value += value
        for key, value in dump.get("gauges", {}).items():
            series = self._gauges.get(key)
            if series is None:
                series = self._gauges[key] = Gauge(key)
            series.value = float(value)
        for key, samples in dump.get("histograms", {}).items():
            series = self._histograms.get(key)
            if series is None:
                series = self._histograms[key] = Histogram(key)
            series.samples.extend(float(s) for s in samples)


# -- installation ---------------------------------------------------------


def current_registry() -> Optional[MetricsRegistry]:
    """The globally installed registry, or None when collection is off."""
    return state.REGISTRY


def set_registry(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Install (or, with None, remove) the global registry; returns the old one."""
    previous = state.REGISTRY
    state.REGISTRY = registry
    return previous


@contextmanager
def collecting(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Enable metric collection for a ``with`` block; restores the previous."""
    active = registry if registry is not None else MetricsRegistry()
    previous = set_registry(active)
    try:
        yield active
    finally:
        set_registry(previous)
