"""End-of-run publication of substrate state into the registry.

Live counters (verbs by type, wire bytes, RPC calls) accumulate on the
hot path while a registry is installed; everything that is cheaper to
read once at the end of a run — per-host core-microseconds, NIC verb
totals, fabric message counts, cache hit rates, derived ratios — is
collected here by walking the fabric and cluster.  The publisher only
*reads* simulation state, so calling it never perturbs a run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - avoids an import cycle at runtime
    from repro.net.fabric import Fabric

__all__ = ["publish_run"]


def publish_run(
    registry: MetricsRegistry, fabric: "Fabric", cluster: Optional[object] = None
) -> None:
    """Snapshot fabric/host/cluster state into *registry* gauges.

    *cluster* may be any of the harness's systems (SiftGroup,
    RaftCluster, EPaxosCluster, ...); recognisable sub-objects are
    probed with getattr so one publisher serves them all.
    """
    registry.gauge("fabric.messages_sent").set(fabric.messages_sent)
    registry.gauge("fabric.bytes_sent").set(fabric.bytes_sent)
    registry.gauge("fabric.messages_dropped").set(fabric.messages_dropped)
    registry.gauge("fabric.messages_duplicated").set(fabric.messages_duplicated)

    total_core_us = 0.0
    total_verbs = 0
    for name in sorted(fabric.hosts):
        host = fabric.hosts[name]
        busy_us = host.cpu._busy_time
        total_core_us += busy_us
        registry.gauge("host.core_us", host=name).set(busy_us)
        rnic = host.services.get("rnic")
        if rnic is not None:
            total_verbs += rnic.verbs_issued
            registry.gauge("host.verbs_issued", host=name).set(rnic.verbs_issued)
    registry.gauge("cluster.core_us_total").set(total_core_us)
    registry.gauge("cluster.verbs_issued_total").set(total_verbs)

    # RPC vs one-sided ratio: how much of the traffic bypassed remote CPUs.
    rpc_calls = registry.sum_counters("rpc.calls")
    one_sided = registry.sum_counters("rdma.verbs")
    registry.gauge("cluster.rpc_calls_total").set(rpc_calls)
    registry.gauge("cluster.one_sided_verbs_total").set(one_sided)
    if rpc_calls + one_sided > 0:
        registry.gauge("cluster.one_sided_fraction").set(
            one_sided / (rpc_calls + one_sided)
        )

    if cluster is not None:
        _publish_cluster(registry, cluster)


def _publish_cluster(registry: MetricsRegistry, cluster: object) -> None:
    # Sharded service: per-shard gauges plus the backup pool's state.
    groups = getattr(cluster, "groups", None)
    pool = getattr(cluster, "pool", None)
    if groups is not None and pool is not None:
        for group in groups:
            coordinator = group.serving_coordinator()
            registry.gauge("shard.cpu_nodes", shard=group.name).set(
                len(group.cpu_nodes)
            )
            registry.gauge("shard.serving", shard=group.name).set(
                0 if coordinator is None else 1
            )
            _publish_cache(registry, coordinator, shard=group.name)
        registry.gauge("backup_pool.idle", pool=pool.name).set(pool.idle_backups)
        registry.gauge("backup_pool.promotions_total", pool=pool.name).set(
            pool.promotions
        )
        registry.gauge("backup_pool.waits_total", pool=pool.name).set(pool.waits)
        registry.gauge("backup_pool.recovery_wait_us_total", pool=pool.name).set(
            pool.recovery_wait_us_total
        )
        return
    # Sift: the serving coordinator's KV app carries the value cache.
    serving = getattr(cluster, "serving_coordinator", None)
    coordinator = serving() if callable(serving) else None
    _publish_cache(registry, coordinator)


def _publish_cache(
    registry: MetricsRegistry, coordinator: object, **labels: str
) -> None:
    app = getattr(coordinator, "app", None)
    cache = getattr(app, "cache", None)
    if cache is not None and hasattr(cache, "hit_rate"):
        registry.gauge("kv.cache.hits", **labels).set(cache.hits)
        registry.gauge("kv.cache.misses", **labels).set(cache.misses)
        registry.gauge("kv.cache.hit_rate", **labels).set(cache.hit_rate)
        registry.gauge("kv.cache.entries", **labels).set(len(cache))
