"""End-of-run publication of substrate state into the registry.

Live counters (verbs by type, wire bytes, RPC calls) accumulate on the
hot path while a registry is installed; everything that is cheaper to
read once at the end of a run — per-host core-microseconds, NIC verb
totals, fabric message counts, cache hit rates, derived ratios — is
collected here by walking the fabric and cluster.  The publisher only
*reads* simulation state, so calling it never perturbs a run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - avoids an import cycle at runtime
    from repro.net.fabric import Fabric

__all__ = ["publish_run"]


def publish_run(
    registry: MetricsRegistry, fabric: "Fabric", cluster: Optional[object] = None
) -> None:
    """Snapshot fabric/host/cluster state into *registry* gauges.

    *cluster* may be any of the harness's systems (SiftGroup,
    RaftCluster, EPaxosCluster, ...); recognisable sub-objects are
    probed with getattr so one publisher serves them all.
    """
    registry.gauge("fabric.messages_sent").set(fabric.messages_sent)
    registry.gauge("fabric.bytes_sent").set(fabric.bytes_sent)
    registry.gauge("fabric.messages_dropped").set(fabric.messages_dropped)
    registry.gauge("fabric.messages_duplicated").set(fabric.messages_duplicated)

    total_core_us = 0.0
    total_verbs = 0
    for name in sorted(fabric.hosts):
        host = fabric.hosts[name]
        busy_us = host.cpu._busy_time
        total_core_us += busy_us
        registry.gauge("host.core_us", host=name).set(busy_us)
        rnic = host.services.get("rnic")
        if rnic is not None:
            total_verbs += rnic.verbs_issued
            registry.gauge("host.verbs_issued", host=name).set(rnic.verbs_issued)
    registry.gauge("cluster.core_us_total").set(total_core_us)
    registry.gauge("cluster.verbs_issued_total").set(total_verbs)

    # RPC vs one-sided ratio: how much of the traffic bypassed remote CPUs.
    rpc_calls = registry.sum_counters("rpc.calls")
    one_sided = registry.sum_counters("rdma.verbs")
    registry.gauge("cluster.rpc_calls_total").set(rpc_calls)
    registry.gauge("cluster.one_sided_verbs_total").set(one_sided)
    if rpc_calls + one_sided > 0:
        registry.gauge("cluster.one_sided_fraction").set(
            one_sided / (rpc_calls + one_sided)
        )

    if cluster is not None:
        _publish_cluster(registry, cluster)


def _publish_cluster(registry: MetricsRegistry, cluster: object) -> None:
    # Sift: the serving coordinator's KV app carries the value cache.
    serving = getattr(cluster, "serving_coordinator", None)
    coordinator = serving() if callable(serving) else None
    app = getattr(coordinator, "app", None)
    cache = getattr(app, "cache", None)
    if cache is not None and hasattr(cache, "hit_rate"):
        registry.gauge("kv.cache.hits").set(cache.hits)
        registry.gauge("kv.cache.misses").set(cache.misses)
        registry.gauge("kv.cache.hit_rate").set(cache.hit_rate)
        registry.gauge("kv.cache.entries").set(len(cache))
