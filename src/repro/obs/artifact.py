"""Versioned ``BENCH_<figure>.json`` benchmark artifacts.

Every figure driver emits one artifact per run: the simulated series
(throughput / latency / cost numbers — deterministic in the seed), a
metrics-registry snapshot, the seeds, the experiment parameters, the
git SHA, and the host wall clock.  Artifacts are the repo's bench
trajectory: CI regenerates them at smoke scale and diffs them against
committed baselines with :mod:`repro.obs.compare` (zero tolerance on
the simulated sections — determinism is a correctness property here).

The JSON encoding is canonical (sorted keys, fixed indent, NaN
rejected) so identical runs produce byte-identical files.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, Iterable, Optional

from repro._version import __version__
from repro.obs.registry import MetricsRegistry

__all__ = [
    "ARTIFACT_KIND",
    "ARTIFACT_SCHEMA_VERSION",
    "PERF_KIND",
    "ArtifactError",
    "artifact_filename",
    "perf_filename",
    "make_artifact",
    "write_artifact",
    "load_artifact",
    "validate_artifact",
    "make_perf_artifact",
    "write_perf_artifact",
    "load_perf_artifact",
    "validate_perf_artifact",
]

ARTIFACT_KIND = "repro.obs.bench-artifact"
PERF_KIND = "repro.obs.perf-artifact"
ARTIFACT_SCHEMA_VERSION = 1

#: Keys every artifact must carry, checked by :func:`validate_artifact`.
_REQUIRED = (
    "kind",
    "schema_version",
    "figure",
    "seeds",
    "params",
    "simulated",
    "registry",
    "git_sha",
    "created_unix",
    "host",
)

#: Sections whose contents are deterministic in the seeds (compared with
#: zero tolerance by :mod:`repro.obs.compare`).
DETERMINISTIC_SECTIONS = ("figure", "seeds", "params", "simulated", "registry")

#: Sections that vary between hosts/runs (never strictly compared).
VOLATILE_SECTIONS = ("git_sha", "created_unix", "host")


class ArtifactError(ValueError):
    """A document is not a valid benchmark artifact."""


def artifact_filename(figure: str) -> str:
    """Canonical file name for one figure's artifact."""
    if not figure or any(c in figure for c in "/\\ "):
        raise ArtifactError(f"bad figure name: {figure!r}")
    return f"BENCH_{figure}.json"


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def make_artifact(
    figure: str,
    simulated: Dict[str, Any],
    *,
    seeds: Iterable[int],
    params: Optional[Dict[str, Any]] = None,
    registry: Optional[MetricsRegistry] = None,
    wall_clock_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Assemble one artifact document (not yet written to disk).

    *simulated* holds every virtual-time-derived number of the figure;
    anything in it must be reproducible bit-for-bit from *seeds*.
    """
    if not isinstance(simulated, dict):
        raise ArtifactError("simulated section must be a dict")
    return {
        "kind": ARTIFACT_KIND,
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "figure": figure,
        "seeds": sorted(set(int(s) for s in seeds)),
        "params": dict(params or {}),
        "simulated": simulated,
        "registry": registry.snapshot() if registry is not None else None,
        "git_sha": _git_sha(),
        "created_unix": time.time(),
        "host": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "repro_version": __version__,
            "wall_clock_s": wall_clock_s,
        },
    }


def write_artifact(
    out_dir: str,
    figure: str,
    simulated: Dict[str, Any],
    *,
    seeds: Iterable[int],
    params: Optional[Dict[str, Any]] = None,
    registry: Optional[MetricsRegistry] = None,
    wall_clock_s: Optional[float] = None,
) -> str:
    """Build, validate and write ``<out_dir>/BENCH_<figure>.json``.

    Returns the path written.  The directory is created if missing.
    """
    doc = make_artifact(
        figure,
        simulated,
        seeds=seeds,
        params=params,
        registry=registry,
        wall_clock_s=wall_clock_s,
    )
    validate_artifact(doc)
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, artifact_filename(figure))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")
    return path


def load_artifact(path: str) -> Dict[str, Any]:
    """Read and validate one artifact; raises :class:`ArtifactError`."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"artifact {path} is not valid JSON: {exc}") from exc
    validate_artifact(doc)
    return doc


def perf_filename(name: str) -> str:
    """Canonical file name for one perf-harness artifact."""
    if not name or any(c in name for c in "/\\ "):
        raise ArtifactError(f"bad perf artifact name: {name!r}")
    return f"PERF_{name}.json"


def make_perf_artifact(
    name: str,
    results: Dict[str, Any],
    *,
    params: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one wall-clock perf artifact (``PERF_<name>.json``).

    Unlike bench artifacts, *everything* here is host-dependent — the
    results are wall-clock measurements — so perf artifacts are never
    strictly compared; they record a machine's measured numbers next to
    the host description needed to interpret them.
    """
    if not isinstance(results, dict):
        raise ArtifactError("results section must be a dict")
    return {
        "kind": PERF_KIND,
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "name": name,
        "params": dict(params or {}),
        "results": results,
        "git_sha": _git_sha(),
        "created_unix": time.time(),
        "host": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
            "repro_version": __version__,
        },
    }


def write_perf_artifact(
    out_dir: str,
    name: str,
    results: Dict[str, Any],
    *,
    params: Optional[Dict[str, Any]] = None,
) -> str:
    """Build, validate and write ``<out_dir>/PERF_<name>.json``."""
    doc = make_perf_artifact(name, results, params=params)
    validate_perf_artifact(doc)
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, perf_filename(name))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")
    return path


def load_perf_artifact(path: str) -> Dict[str, Any]:
    """Read and validate one perf artifact; raises :class:`ArtifactError`."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"artifact {path} is not valid JSON: {exc}") from exc
    validate_perf_artifact(doc)
    return doc


def validate_perf_artifact(doc: Any) -> None:
    """Check the perf-artifact schema; raises :class:`ArtifactError`."""
    if not isinstance(doc, dict):
        raise ArtifactError("artifact must be a JSON object")
    missing = [
        k
        for k in ("kind", "schema_version", "name", "params", "results", "host")
        if k not in doc
    ]
    if missing:
        raise ArtifactError(f"perf artifact missing keys: {', '.join(missing)}")
    if doc["kind"] != PERF_KIND:
        raise ArtifactError(f"not a perf artifact (kind={doc['kind']!r})")
    if doc["schema_version"] != ARTIFACT_SCHEMA_VERSION:
        raise ArtifactError(
            f"unsupported schema version {doc['schema_version']!r} "
            f"(this build reads {ARTIFACT_SCHEMA_VERSION})"
        )
    if not isinstance(doc["name"], str) or not doc["name"]:
        raise ArtifactError("name must be a non-empty string")
    if not isinstance(doc["params"], dict):
        raise ArtifactError("params must be an object")
    if not isinstance(doc["results"], dict):
        raise ArtifactError("results must be an object")
    if not isinstance(doc["host"], dict):
        raise ArtifactError("host must be an object")


def validate_artifact(doc: Any) -> None:
    """Check the artifact schema; raises :class:`ArtifactError` on violation."""
    if not isinstance(doc, dict):
        raise ArtifactError("artifact must be a JSON object")
    missing = [k for k in _REQUIRED if k not in doc]
    if missing:
        raise ArtifactError(f"artifact missing keys: {', '.join(missing)}")
    if doc["kind"] != ARTIFACT_KIND:
        raise ArtifactError(f"not a bench artifact (kind={doc['kind']!r})")
    if doc["schema_version"] != ARTIFACT_SCHEMA_VERSION:
        raise ArtifactError(
            f"unsupported schema version {doc['schema_version']!r} "
            f"(this build reads {ARTIFACT_SCHEMA_VERSION})"
        )
    if not isinstance(doc["figure"], str) or not doc["figure"]:
        raise ArtifactError("figure must be a non-empty string")
    if not isinstance(doc["seeds"], list) or not all(
        isinstance(s, int) for s in doc["seeds"]
    ):
        raise ArtifactError("seeds must be a list of integers")
    if not isinstance(doc["params"], dict):
        raise ArtifactError("params must be an object")
    if not isinstance(doc["simulated"], dict):
        raise ArtifactError("simulated must be an object")
    if doc["registry"] is not None and not isinstance(doc["registry"], dict):
        raise ArtifactError("registry must be an object or null")
    if not isinstance(doc["host"], dict):
        raise ArtifactError("host must be an object")
