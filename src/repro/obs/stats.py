"""One shape for every "how is this component doing?" surface.

Before the control plane existed, observed state lived in four ad-hoc
shapes: ``KvClient.stats`` (a plain dict), ``ShardRouter.stats`` (a
summed dict plus ``inflight_peaks()``), the ``BackupPool`` occupancy
gauges, and the open-loop engine's ``counts``/``shed``/``ops``
accounting.  The reconciler needs to read all of them; so do the
figures.  :class:`StatsSnapshot` is the single protocol: any component
with a ``snapshot()`` method returns one — monotonic event totals in
``counters``, instantaneous levels in ``gauges`` — and
:func:`snapshot_of` collects from anything that conforms.

Snapshots are plain frozen data: diffing two of them (the reconciler's
observe step) is dictionary arithmetic, publishing one into a
:class:`~repro.obs.registry.MetricsRegistry` is a loop.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

__all__ = ["StatsSnapshot", "snapshot_of"]


class StatsSnapshot(NamedTuple):
    """A point-in-time reading of one component.

    *kind* names the component type (``"kv_client"``, ``"router"``,
    ``"backup_pool"``, ``"openloop"``, ...); *name* the instance.
    ``counters`` hold monotonically non-decreasing totals (requests,
    promotions, sheds); ``gauges`` hold instantaneous levels (idle
    spares, inflight ops, achieved rate).
    """

    kind: str
    name: str
    counters: Dict[str, float]
    gauges: Dict[str, float]

    def counter(self, key: str, default: float = 0.0) -> float:
        return self.counters.get(key, default)

    def gauge(self, key: str, default: float = 0.0) -> float:
        return self.gauges.get(key, default)

    def delta(self, earlier: "StatsSnapshot") -> Dict[str, float]:
        """Counter increments since *earlier* (missing keys count as 0)."""
        return {
            key: value - earlier.counters.get(key, 0.0)
            for key, value in self.counters.items()
        }


def snapshot_of(component) -> StatsSnapshot:
    """The :class:`StatsSnapshot` of any conforming component.

    Raises :class:`TypeError` for objects without a ``snapshot()``
    method — the protocol is deliberately explicit, not duck-typed off
    a ``stats`` dict, so every surface migrates to one shape.
    """
    method = getattr(component, "snapshot", None)
    if method is None:
        raise TypeError(
            f"{type(component).__name__} does not implement the StatsSnapshot "
            "protocol (no snapshot() method)"
        )
    found = method()
    if not isinstance(found, StatsSnapshot):
        raise TypeError(
            f"{type(component).__name__}.snapshot() returned "
            f"{type(found).__name__}, expected StatsSnapshot"
        )
    return found
