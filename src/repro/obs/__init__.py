"""repro.obs — structured observability for the whole stack.

Three pieces, all off by default and ~free when disabled:

* **Tracing** (:mod:`repro.obs.trace`): spans and point events keyed to
  the simulator's virtual clock, reconstructing one client operation as
  a causal tree (queue-pair post -> NIC service -> fabric delivery ->
  remote apply -> ack).
* **Metrics** (:mod:`repro.obs.registry`): labelled counters, gauges
  and histograms — verbs by type, wire bytes, core-microseconds per
  node, RPC vs one-sided ratio, cache hit rate — published by the
  bench harness and the chaos runner.
* **Artifacts** (:mod:`repro.obs.artifact`, :mod:`repro.obs.compare`):
  every figure driver writes a versioned ``BENCH_<figure>.json``
  (simulated series + registry snapshot + seeds + git SHA + wall
  clock); the compare CLI diffs two artifacts with zero tolerance on
  the seed-deterministic sections.

Enable everything for one experiment::

    from repro import obs

    with obs.observe() as (tracer, registry):
        result = run_throughput(spec, mix)
    print(tracer.render_tree())
    print(registry.snapshot())

Instrumentation sites gate on :data:`repro.obs.state.TRACER` /
:data:`repro.obs.state.REGISTRY` being non-None, so disabled runs keep
the exact seed schedule (pinned by ``tests/test_obs_determinism.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.obs import state
from repro.obs.artifact import (
    ARTIFACT_KIND,
    ARTIFACT_SCHEMA_VERSION,
    ArtifactError,
    artifact_filename,
    load_artifact,
    make_artifact,
    validate_artifact,
    write_artifact,
)
from repro.obs.flight import FlightRecorder, maybe_postmortem, write_postmortem
from repro.obs.publish import publish_run
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SloHistogram,
    collecting,
    current_registry,
    set_registry,
)
from repro.obs.stats import StatsSnapshot, snapshot_of
from repro.obs.trace import (
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    span_sort_key,
    tracing,
)

__all__ = [
    "ARTIFACT_KIND",
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactError",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SloHistogram",
    "Span",
    "StatsSnapshot",
    "Tracer",
    "artifact_filename",
    "collecting",
    "compare_artifacts",
    "current_registry",
    "current_tracer",
    "enabled",
    "load_artifact",
    "make_artifact",
    "maybe_postmortem",
    "observe",
    "publish_run",
    "set_registry",
    "set_tracer",
    "snapshot_of",
    "span_sort_key",
    "state",
    "tracing",
    "validate_artifact",
    "write_artifact",
    "write_postmortem",
]

enabled = state.enabled


def __getattr__(name):
    # Lazy so `python -m repro.obs.compare` does not re-import the
    # module it is about to execute (runpy would warn).
    if name == "compare_artifacts":
        from repro.obs.compare import compare_artifacts

        return compare_artifacts
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@contextmanager
def observe(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[Tuple[Tracer, MetricsRegistry]]:
    """Enable tracing *and* metric collection for a ``with`` block."""
    with tracing(tracer) as active_tracer:
        with collecting(registry) as active_registry:
            yield active_tracer, active_registry
