"""Span/event tracing keyed to the simulator's virtual clock.

A :class:`Span` is a named interval of virtual time with attributes and
a parent, so one client operation can be reconstructed as a causal tree
(queue-pair post -> NIC serialisation -> fabric delivery -> remote
apply -> ack).  An *instant* is a zero-duration span (a point event).

Timestamps are whatever clock the instrumentation site passes in —
always ``sim.now`` in this codebase — so traces are deterministic:
same seed, same trace, byte for byte.

Tracing is **off by default**.  Install a tracer for a region of code
with::

    with tracing() as tracer:
        ...run the experiment...
    print(tracer.render_tree())

Instrumented modules consult :data:`repro.obs.state.TRACER` and do
nothing (one ``is not None`` check) when it is unset.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs import state

__all__ = [
    "Span",
    "Tracer",
    "current_tracer",
    "set_tracer",
    "span_sort_key",
    "tracing",
]


def span_sort_key(span: "Span") -> tuple:
    """Deterministic ordering: start time, then recording id.

    The id tie-break keeps instants stamped at the same virtual
    timestamp in a stable order across renders and exports.
    """
    return (span.start_us, span.span_id)


class Span:
    """A named interval of virtual time in a causal tree."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "start_us", "end_us", "attrs")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start_us: float,
        attrs: Dict[str, Any],
    ):
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_us = start_us
        self.end_us: Optional[float] = None
        self.attrs = attrs

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has stamped an end time."""
        return self.end_us is not None

    @property
    def duration_us(self) -> Optional[float]:
        """Span length in virtual microseconds (None while open)."""
        if self.end_us is None:
            return None
        return self.end_us - self.start_us

    def annotate(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes on the span."""
        self.attrs.update(attrs)
        return self

    def finish(self, now: float) -> "Span":
        """Close the span at virtual time *now* (idempotent)."""
        if self.end_us is None:
            self.end_us = now
        return self

    def child(self, name: str, now: float, **attrs: Any) -> "Span":
        """Open a child span under this one."""
        return self.tracer.span(name, now, parent=self, **attrs)

    def event(self, name: str, now: float, **attrs: Any) -> "Span":
        """Record a zero-duration child (a point event)."""
        return self.tracer.instant(name, now, parent=self, **attrs)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly rendering of the span."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        dur = "open" if self.end_us is None else f"{self.duration_us:.2f}us"
        return f"<Span #{self.span_id} {self.name} @{self.start_us:.2f} {dur}>"


class Tracer:
    """Collects spans and instants; reconstructs causal trees.

    The tracer performs no I/O and consults no clock of its own: every
    record costs one object append, and all timestamps come from the
    caller, so enabling it never perturbs the simulated schedule.
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._ids = itertools.count(1)
        #: The ambient span context.  The simulator engine saves/restores
        #: this around each process step so spans opened by a resumed
        #: process parent under the operation that spawned it; recording
        #: sites may also read it directly for implicit parenting.
        self.current: Optional[Span] = None

    # -- recording -------------------------------------------------------

    def span(
        self, name: str, now: float, parent: Optional[Span] = None, **attrs: Any
    ) -> Span:
        """Open a span starting at virtual time *now*.

        With no explicit *parent* the span attaches to the ambient
        context (:attr:`current`), falling back to a root span.  A
        parent recorded by a *different* tracer is ignored — the span
        becomes a root here rather than pointing at a foreign id.
        """
        if parent is None:
            parent = self.current
        if parent is not None and parent.tracer is not self:
            parent = None
        span = Span(
            self,
            next(self._ids),
            parent.span_id if parent is not None else None,
            name,
            now,
            attrs,
        )
        self.spans.append(span)
        return span

    def instant(
        self, name: str, now: float, parent: Optional[Span] = None, **attrs: Any
    ) -> Span:
        """Record a point event (a span with zero duration)."""
        return self.span(name, now, parent=parent, **attrs).finish(now)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def named(self, name: str) -> List[Span]:
        """All spans with exactly this name."""
        return [s for s in self.spans if s.name == name]

    def roots(self) -> List[Span]:
        """Top-level spans, in recording order.

        Includes true roots (no parent) and *orphans*: spans whose
        parent id is not present in this tracer — e.g. the parent was
        recorded before a flight-recorder ring evicted it, or closed
        before the tracer was installed.  Orphans used to vanish from
        :meth:`render_tree`; they now render as top-level trees.
        """
        known = {s.span_id for s in self.spans}
        return [
            s
            for s in self.spans
            if s.parent_id is None or s.parent_id not in known
        ]

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of *span*, ordered by (start time, span id).

        The span-id tie-break gives instants recorded at the same
        virtual timestamp a stable, deterministic order.
        """
        kids = [s for s in self.spans if s.parent_id == span.span_id]
        kids.sort(key=span_sort_key)
        return kids

    def subtree(self, span: Span) -> List[Span]:
        """*span* plus every descendant, depth-first."""
        out = [span]
        for child in self.children_of(span):
            out.extend(self.subtree(child))
        return out

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Every span as a JSON-friendly dict, in recording order."""
        return [s.to_dict() for s in self.spans]

    def render_tree(self, root: Optional[Span] = None, indent: str = "") -> str:
        """ASCII rendering of the causal tree (for humans and tests)."""
        lines: List[str] = []
        tops = [root] if root is not None else self.roots()
        for top in tops:
            self._render(top, indent, lines)
        return "\n".join(lines)

    def _render(self, span: Span, indent: str, lines: List[str]) -> None:
        dur = "…" if span.end_us is None else f"{span.duration_us:.2f}us"
        attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        lines.append(
            f"{indent}{span.name} [{span.start_us:.2f} +{dur}]"
            + (f" {attrs}" if attrs else "")
        )
        for child in self.children_of(span):
            self._render(child, indent + "  ", lines)


# -- installation ---------------------------------------------------------


def current_tracer() -> Optional[Tracer]:
    """The globally installed tracer, or None when tracing is off."""
    return state.TRACER


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or, with None, remove) the global tracer; returns the old one."""
    previous = state.TRACER
    state.TRACER = tracer
    return previous


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Enable tracing for a ``with`` block; restores the previous tracer."""
    active = tracer if tracer is not None else Tracer()
    previous = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)
