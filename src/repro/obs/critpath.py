"""Critical-path latency attribution over traced operation trees.

Walks a committed operation's span tree (a finished ``rpc.kv.*`` root
recorded by :class:`repro.obs.Tracer`) and splits its end-to-end
virtual-time latency into **exclusive, exhaustive** per-stage segments:

``rpc_in``
    client → leader RPC: request on the wire plus server receive
    queueing, up to the ``rpc.recv`` milestone.
``wal_write``
    leader-side admission, sequencing, and WAL record encoding, up to
    the ``repmem.fanout`` milestone (the moment replication begins).
``fanout``
    replication fan-out — per-replica posts or the coalesced doorbell
    flush wait — up to the last ``nic.serialised`` event before the
    quorum milestone.
``quorum``
    waiting for ``Fm + 1`` replica acks (``repmem.quorum``).
``apply``
    post-quorum leader work until the reply leaves the server
    (``rpc.reply``).
``serve``
    replaces ``wal_write``/``fanout``/``quorum``/``apply`` for
    operations with no replication milestones in their tree (cache-hit
    reads, baseline systems whose replication happens behind their own
    nested RPCs): everything between ``rpc.recv`` and ``rpc.reply``.
``ack``
    reply on the wire back to the client, closing the root span.

The segments telescope: their left-to-right sum equals the root span's
``duration_us`` **exactly** (bit-for-bit, enforced with a remainder
fix-up), so a stacked plot of the stages reconstructs the end-to-end
latency with zero residue.  Everything derives from virtual time, so
breakdowns are deterministic in the experiment seed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.trace import Span, Tracer, span_sort_key

__all__ = [
    "STAGES",
    "attribute",
    "attribute_all",
    "aggregate",
    "critical_path_section",
]

#: Canonical stage order (stacked-bar order in the fig6path figure).
STAGES = ("rpc_in", "wal_write", "fanout", "quorum", "apply", "serve", "ack")

#: Root spans this module understands: client-observed KV operations.
_OP_PREFIX = "rpc.kv."


def _percentile(ordered: Sequence[float], p: float) -> float:
    """Linear-interpolation percentile over pre-sorted samples.

    Mirrors :meth:`repro.obs.registry.Histogram.percentile` so figure
    sections and registry summaries agree digit for digit.
    """
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def _children_index(tracer: Tracer) -> Dict[int, List[Span]]:
    """parent_id -> children, built once so tree walks stay linear."""
    index: Dict[int, List[Span]] = {}
    for span in tracer.spans:
        if span.parent_id is not None:
            index.setdefault(span.parent_id, []).append(span)
    for kids in index.values():
        kids.sort(key=span_sort_key)
    return index


def _iter_subtree(root: Span, index: Dict[int, List[Span]]):
    stack = [root]
    while stack:
        span = stack.pop()
        yield span
        stack.extend(index.get(span.span_id, ()))


def _milestones(root: Span, index: Dict[int, List[Span]]) -> Dict[str, float]:
    """Extract boundary timestamps from *root*'s subtree.

    Nested RPCs (baseline replication traffic) carry their own
    ``rpc.recv``/``rpc.reply`` instants, so those two are filtered to
    the root's own method before taking min/max.
    """
    method = root.name[len("rpc.") :]
    recv: Optional[float] = None
    reply: Optional[float] = None
    fanout: Optional[float] = None
    quorum_t: Optional[float] = None
    serialised: List[float] = []
    for span in _iter_subtree(root, index):
        name = span.name
        if name == "rpc.recv" and span.attrs.get("method") == method:
            if recv is None or span.start_us < recv:
                recv = span.start_us
        elif name == "rpc.reply" and span.attrs.get("method") == method:
            if reply is None or span.start_us > reply:
                reply = span.start_us
        elif name == "repmem.fanout":
            if fanout is None or span.start_us < fanout:
                fanout = span.start_us
        elif name == "repmem.quorum":
            if quorum_t is None or span.start_us < quorum_t:
                quorum_t = span.start_us
        elif name == "nic.serialised":
            serialised.append(span.start_us)
    out: Dict[str, float] = {}
    if recv is not None:
        out["recv"] = recv
    if fanout is not None:
        out["fanout"] = fanout
    if quorum_t is not None:
        out["quorum"] = quorum_t
        flushed = [t for t in serialised if t <= quorum_t]
        if flushed:
            out["serialised"] = max(flushed)
    if reply is not None:
        out["reply"] = reply
    return out


def attribute(
    tracer: Tracer, root: Span, _index: Optional[Dict[int, List[Span]]] = None
) -> Dict[str, Any]:
    """Per-operation breakdown for a finished ``rpc.kv.*`` root span.

    Returns ``{"op", "start_us", "duration_us", "segments"}`` where
    ``segments`` is an ordered list of ``[stage, microseconds]`` pairs
    whose left-to-right sum equals ``duration_us`` exactly.
    """
    if root.end_us is None:
        raise ValueError(f"span {root!r} is not finished")
    start, end = root.start_us, root.end_us
    duration = root.duration_us
    marks = _milestones(root, _index if _index is not None else _children_index(tracer))

    replicated = "fanout" in marks or "quorum" in marks
    boundary_plan: List[Tuple[str, Optional[float]]] = [
        ("rpc_in", marks.get("recv")),
        ("wal_write", marks.get("fanout")),
        ("fanout", marks.get("serialised")),
        ("quorum", marks.get("quorum")),
        ("apply" if replicated else "serve", marks.get("reply")),
    ]
    boundaries: List[Tuple[str, float]] = []
    floor = start
    for stage, at in boundary_plan:
        if at is None:
            continue
        at = min(max(at, floor), end)  # clamp monotonic within the root
        boundaries.append((stage, at))
        floor = at

    segments: List[List[Any]] = []
    prev = start
    for stage, at in boundaries:
        segments.append([stage, at - prev])
        prev = at
    segments.append(["ack", end - prev])

    # Enforce the exact-sum invariant: nudge the final segment until the
    # left-to-right float sum telescopes to the root duration bit for bit.
    for _ in range(4):
        total = 0.0
        for _stage, us in segments:
            total += us
        if total == duration:
            break
        segments[-1][1] += duration - total

    return {
        "op": root.name,
        "start_us": start,
        "duration_us": duration,
        "segments": segments,
    }


def attribute_all(tracer: Tracer, prefix: str = _OP_PREFIX) -> List[Dict[str, Any]]:
    """Breakdowns for every finished, successful *prefix* root span.

    Roots still open when the tracer was removed (operations in flight
    at the measurement boundary) and failed operations are skipped.
    """
    index = _children_index(tracer)
    out = []
    for root in tracer.roots():
        if not root.name.startswith(prefix):
            continue
        if root.end_us is None or root.attrs.get("ok") is False:
            continue
        out.append(attribute(tracer, root, _index=index))
    return out


def aggregate(breakdowns: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Deterministic per-stage statistics over many breakdowns.

    ``share`` is each stage's fraction of total attributed time, so the
    shares of the stages present always sum to ~1.0 and a stacked-mean
    bar of ``mean_us`` reconstructs the mean end-to-end latency.
    """
    durations: List[float] = []
    stage_samples: Dict[str, List[float]] = {}
    for breakdown in breakdowns:
        durations.append(breakdown["duration_us"])
        for stage, us in breakdown["segments"]:
            stage_samples.setdefault(stage, []).append(us)
    total_all = 0.0
    for duration in durations:
        total_all += duration
    stages: Dict[str, Any] = {}
    for stage in STAGES:
        samples = stage_samples.get(stage)
        if not samples:
            continue
        stage_sum = 0.0
        for sample in samples:
            stage_sum += sample
        ordered = sorted(samples)
        stages[stage] = {
            "count": len(samples),
            "mean_us": stage_sum / len(samples),
            "p99_us": _percentile(ordered, 99.0),
            "share": (stage_sum / total_all) if total_all else 0.0,
        }
    ordered_durations = sorted(durations)
    duration_sum = 0.0
    for duration in durations:
        duration_sum += duration
    return {
        "count": len(durations),
        "duration_us": {
            "mean": (duration_sum / len(durations)) if durations else 0.0,
            "p50": _percentile(ordered_durations, 50.0),
            "p99": _percentile(ordered_durations, 99.0),
        },
        "stages": stages,
    }


def critical_path_section(
    tracer: Tracer, sample_ops: int = 8, prefix: str = _OP_PREFIX
) -> Dict[str, Any]:
    """The figure-ready digest of one traced run.

    Aggregates every finished operation and embeds the first
    *sample_ops* raw breakdowns so the committed artifact itself
    witnesses the exact-sum invariant.
    """
    by_op: Dict[str, List[Dict[str, Any]]] = {}
    for breakdown in attribute_all(tracer, prefix):
        by_op.setdefault(breakdown["op"], []).append(breakdown)
    return {
        op: {
            "aggregate": aggregate(breakdowns),
            "sampled_ops": breakdowns[:sample_ops],
        }
        for op, breakdowns in sorted(by_op.items())
    }
