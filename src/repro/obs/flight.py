"""Flight recorder: a bounded ring of recent spans, dumped on failure.

A :class:`FlightRecorder` is a :class:`~repro.obs.trace.Tracer` whose
span store is a fixed-capacity ring — recording stays O(1) and memory
stays bounded no matter how long the run, so chaos schedules keep it
installed for the whole experiment at negligible cost (tracing remains
zero-perturbation: no RNG, no scheduling, caller-provided timestamps).

When something trips — a chaos invariant violation, a
:class:`~repro.core.recovery.RecoveryIntegrityError` — call
:func:`maybe_postmortem` from the failure path: it snapshots the ring
plus the active metrics registry into a ``POSTMORTEM_*.json`` file and
returns the path (or None when no tracer is installed), so the raised
error can point at the evidence.  Postmortem files feed straight into
``python -m repro.obs.export`` for a Perfetto view of the final
moments before the failure.

The dump directory defaults to ``postmortems/`` under the working
directory; set ``REPRO_POSTMORTEM_DIR`` to redirect it (tests point it
at a tmpdir, CI uploads it on failure).
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Any, Dict, Optional

from repro.obs import state
from repro.obs.trace import Tracer

__all__ = [
    "POSTMORTEM_KIND",
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "postmortem_doc",
    "write_postmortem",
    "maybe_postmortem",
]

POSTMORTEM_KIND = "repro.obs.postmortem"
_POSTMORTEM_SCHEMA_VERSION = 1

#: Default ring capacity: recent-history window, not a full trace.
DEFAULT_CAPACITY = 4096

_ENV_DIR = "REPRO_POSTMORTEM_DIR"
_DEFAULT_DIR = "postmortems"


class FlightRecorder(Tracer):
    """A tracer whose span store is a bounded ring (oldest evicted first).

    Spans evicted from the ring simply disappear; children whose parent
    was evicted render as top-level trees (see ``Tracer.roots``).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        super().__init__()
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        # deque(maxlen=...) turns every append into append+evict once
        # full; all Tracer queries only iterate, so the swap is safe.
        self.spans = deque(maxlen=capacity)  # type: ignore[assignment]


def postmortem_doc(
    reason: str,
    tracer: Optional[Tracer] = None,
    registry: Optional[Any] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the postmortem document (not yet written)."""
    return {
        "kind": POSTMORTEM_KIND,
        "schema_version": _POSTMORTEM_SCHEMA_VERSION,
        "reason": reason,
        "spans": tracer.to_dicts() if tracer is not None else [],
        "ring_capacity": getattr(tracer, "capacity", None),
        "registry": registry.snapshot() if registry is not None else None,
        "extra": dict(extra or {}),
        "created_unix": time.time(),
    }


def _slug(reason: str, limit: int = 48) -> str:
    out = []
    for ch in reason.lower():
        if ch.isalnum():
            out.append(ch)
        elif out and out[-1] != "-":
            out.append("-")
    return "".join(out).strip("-")[:limit] or "failure"


def write_postmortem(
    reason: str,
    tracer: Optional[Tracer] = None,
    registry: Optional[Any] = None,
    out_dir: Optional[str] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Write a postmortem JSON file and return its path.

    Filenames are ``POSTMORTEM_<slug>.json`` with a numeric suffix when
    the name is already taken, so repeated failures never overwrite
    each other's evidence.
    """
    doc = postmortem_doc(reason, tracer=tracer, registry=registry, extra=extra)
    directory = out_dir or os.environ.get(_ENV_DIR) or _DEFAULT_DIR
    os.makedirs(directory, exist_ok=True)
    base = _slug(reason)
    path = os.path.join(directory, f"POSTMORTEM_{base}.json")
    suffix = 1
    while os.path.exists(path) and suffix < 1000:
        path = os.path.join(directory, f"POSTMORTEM_{base}-{suffix}.json")
        suffix += 1
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")
    return path


def maybe_postmortem(
    reason: str,
    registry: Optional[Any] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Optional[str]:
    """Dump a postmortem from the *installed* tracer, if there is one.

    The error-raising call sites use this: it never raises (a failed
    dump must not mask the original failure) and returns None when no
    tracer is active, so un-instrumented runs lose nothing.
    """
    tracer = state.TRACER
    if tracer is None:
        return None
    if registry is None:
        registry = state.REGISTRY
    try:
        return write_postmortem(reason, tracer=tracer, registry=registry, extra=extra)
    except (OSError, ValueError):  # pragma: no cover - disk-full style failures
        return None
