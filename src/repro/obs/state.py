"""Process-global observability state.

Instrumentation points across the stack gate on the two module
attributes below with a single ``is not None`` check, so a run with
observability disabled pays one attribute load per instrumented site
and draws no RNG, allocates nothing, and schedules nothing — the
simulated schedule (and therefore every benchmark number) is identical
to an un-instrumented build.  ``tests/test_obs_determinism.py`` pins
this property against golden seed numbers.

The attributes are mutated only through :func:`repro.obs.set_tracer` /
:func:`repro.obs.set_registry` (or the ``observe()`` context manager),
never written by instrumented modules.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.registry import MetricsRegistry
    from repro.obs.trace import Tracer

__all__ = ["TRACER", "REGISTRY", "enabled"]

TRACER: Optional["Tracer"] = None
"""The active span/event tracer, or None when tracing is off (default)."""

REGISTRY: Optional["MetricsRegistry"] = None
"""The active metrics registry, or None when collection is off (default)."""


def enabled() -> bool:
    """Whether any observability sink is currently installed."""
    return TRACER is not None or REGISTRY is not None
