"""Perfetto / Chrome trace-event export for tracer sessions.

Converts the span dicts recorded by :class:`repro.obs.Tracer` (or
dumped by the flight recorder) into the Chrome trace-event JSON object
format, loadable in `ui.perfetto.dev <https://ui.perfetto.dev>`_ or
``chrome://tracing``:

* finished spans become complete events (``ph: "X"``) with their
  virtual-time start and duration in microseconds (the trace-event
  native unit, so the timeline reads directly in simulated µs);
* instants become thread-scoped instant events (``ph: "i"``);
* spans still open at capture time become ``X`` events of zero
  duration flagged with ``unfinished: true``;
* each source entity (node, NIC, shard — whatever the instrumentation
  put in a span's ``host``/``src``/``node``/``process`` attribute)
  gets its own named track via ``thread_name`` metadata records.

The output is canonical (sorted keys, stable ``(ts, span id)`` event
order, NaN rejected), so the same tracer session always exports to
byte-identical JSON — CI diffs exported traces like any other
artifact.

CLI::

    python -m repro.obs.export SESSION.json -o TRACE.json

where ``SESSION.json`` is a saved tracer session, a flight-recorder
postmortem, or a bare JSON list of span dicts.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.trace import Tracer

__all__ = [
    "SESSION_KIND",
    "ExportError",
    "session_doc",
    "write_session",
    "load_spans",
    "chrome_trace",
    "chrome_trace_bytes",
    "write_chrome_trace",
    "validate_chrome_trace",
    "main",
]

SESSION_KIND = "repro.obs.trace-session"
_SESSION_SCHEMA_VERSION = 1

#: Span attributes tried, in order, to pick the event's track.
_TRACK_ATTRS = ("host", "src", "node", "process")


class ExportError(ValueError):
    """The input is not an exportable trace document."""


# ---------------------------------------------------------------------------
# Session files (tracer -> JSON and back)
# ---------------------------------------------------------------------------


def session_doc(tracer: Tracer, label: str = "") -> Dict[str, Any]:
    """A JSON-friendly capture of every span in *tracer*."""
    return {
        "kind": SESSION_KIND,
        "schema_version": _SESSION_SCHEMA_VERSION,
        "label": label,
        "spans": tracer.to_dicts(),
    }


def write_session(path: str, tracer: Tracer, label: str = "") -> str:
    """Save *tracer* to *path* as a canonical session file."""
    doc = session_doc(tracer, label=label)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")
    return path


def load_spans(path: str) -> List[Dict[str, Any]]:
    """Span dicts from a session file, a postmortem, or a bare list."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ExportError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ExportError(f"{path} is not valid JSON: {exc}") from exc
    if isinstance(doc, list):
        spans = doc
    elif isinstance(doc, dict) and isinstance(doc.get("spans"), list):
        spans = doc["spans"]
    else:
        raise ExportError(f"{path} holds no span list (kind={type(doc).__name__})")
    for span in spans:
        if not isinstance(span, dict) or "span_id" not in span or "name" not in span:
            raise ExportError(f"{path}: malformed span entry {span!r}")
    return spans


# ---------------------------------------------------------------------------
# Chrome trace-event conversion
# ---------------------------------------------------------------------------


def _track_of(span: Dict[str, Any]) -> str:
    attrs = span.get("attrs") or {}
    for key in _TRACK_ATTRS:
        value = attrs.get(key)
        if value:
            return str(value)
    return "trace"


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else repr(value)
    return repr(value)


def chrome_trace(
    spans: Sequence[Dict[str, Any]], process_name: str = "repro-sim"
) -> Dict[str, Any]:
    """Build the Chrome trace-event document for *spans*.

    Deterministic: tracks are numbered in sorted name order and events
    sorted by ``(ts, span_id)``, so equal inputs yield equal documents.
    """
    tracks = sorted({_track_of(span) for span in spans})
    tids = {name: i + 1 for i, name in enumerate(tracks)}
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for name in tracks:
        events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tids[name],
                "name": "thread_name",
                "args": {"name": name},
            }
        )
    body: List[Dict[str, Any]] = []
    for span in spans:
        attrs = span.get("attrs") or {}
        args = {k: _json_safe(v) for k, v in sorted(attrs.items())}
        args["span_id"] = span["span_id"]
        if span.get("parent_id") is not None:
            args["parent_id"] = span["parent_id"]
        start = float(span["start_us"])
        end = span.get("end_us")
        event: Dict[str, Any] = {
            "pid": 1,
            "tid": tids[_track_of(span)],
            "ts": start,
            "name": span["name"],
            "args": args,
        }
        if end is not None and end > start:
            event["ph"] = "X"
            event["dur"] = float(end) - start
        elif end is not None:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = 0.0
            args["unfinished"] = True
        body.append(event)
    body.sort(key=lambda e: (e["ts"], e["args"]["span_id"]))
    events.extend(body)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_bytes(
    spans: Sequence[Dict[str, Any]], process_name: str = "repro-sim"
) -> bytes:
    """Canonical UTF-8 encoding of :func:`chrome_trace` (byte-stable)."""
    doc = chrome_trace(spans, process_name=process_name)
    text = json.dumps(doc, indent=2, sort_keys=True, allow_nan=False)
    return (text + "\n").encode("utf-8")


def write_chrome_trace(
    path: str, spans: Sequence[Dict[str, Any]], process_name: str = "repro-sim"
) -> str:
    """Write the canonical Chrome trace for *spans* to *path*."""
    payload = chrome_trace_bytes(spans, process_name=process_name)
    with open(path, "wb") as fh:
        fh.write(payload)
    return path


def validate_chrome_trace(doc: Any) -> None:
    """Check trace-event schema invariants; raises :class:`ExportError`."""
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ExportError("document must be an object with a traceEvents list")
    for event in doc["traceEvents"]:
        if not isinstance(event, dict):
            raise ExportError(f"event is not an object: {event!r}")
        ph = event.get("ph")
        if ph not in ("X", "i", "M"):
            raise ExportError(f"unsupported event phase {ph!r}")
        for key in ("pid", "tid", "name"):
            if key not in event:
                raise ExportError(f"event missing {key!r}: {event!r}")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            raise ExportError(f"event missing numeric ts: {event!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ExportError(f"X event needs non-negative dur: {event!r}")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            raise ExportError(f"instant needs scope t/p/g: {event!r}")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Convert a tracer session or postmortem to Perfetto/"
        "Chrome trace-event JSON.",
    )
    parser.add_argument(
        "session", help="trace session, postmortem, or bare span-list JSON"
    )
    parser.add_argument(
        "-o",
        "--out",
        default=None,
        help="output path (default: stdout)",
    )
    parser.add_argument(
        "--process-name",
        default="repro-sim",
        help="top-level process track name (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    try:
        spans = load_spans(args.session)
        payload = chrome_trace_bytes(spans, process_name=args.process_name)
        validate_chrome_trace(json.loads(payload.decode("utf-8")))
    except ExportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out is None:
        sys.stdout.write(payload.decode("utf-8"))
    else:
        with open(args.out, "wb") as fh:
            fh.write(payload)
        print(f"wrote {args.out} ({len(spans)} spans)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
