"""Diff two ``BENCH_*.json`` artifacts with per-section tolerances.

``python -m repro.obs.compare A.json B.json`` exits 0 when B reproduces
A and 1 otherwise, printing one line per divergence.  The deterministic
sections (figure, seeds, params, simulated, registry) are compared with
**zero tolerance by default** — two same-seed runs of the simulator
must agree bit-for-bit, so any drift there is a regression (or an
intentional change that requires refreshing the baselines, see
EXPERIMENTS.md).  Host wall clock is only compared when a band is
requested with ``--wall-clock-band``; git SHA and timestamps are never
compared.

The module is also a library: :func:`compare_artifacts` returns the
list of divergence messages.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Any, List, Optional

from repro.obs.artifact import DETERMINISTIC_SECTIONS, ArtifactError, load_artifact

__all__ = ["compare_artifacts", "main"]


def _numbers_match(a: float, b: float, rel_tol: float) -> bool:
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    if rel_tol <= 0.0:
        return a == b
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=0.0)


def _diff_value(path: str, a: Any, b: Any, rel_tol: float, out: List[str]) -> None:
    # bool is an int subclass; compare type-strictly so True != 1.
    a_num = isinstance(a, (int, float)) and not isinstance(a, bool)
    b_num = isinstance(b, (int, float)) and not isinstance(b, bool)
    if a_num and b_num:
        if not _numbers_match(float(a), float(b), rel_tol):
            out.append(f"{path}: {a!r} != {b!r}")
        return
    if type(a) is not type(b):
        out.append(f"{path}: type {type(a).__name__} != {type(b).__name__}")
        return
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            sub = f"{path}.{key}"
            if key not in a:
                out.append(f"{sub}: only in B")
            elif key not in b:
                out.append(f"{sub}: only in A")
            else:
                _diff_value(sub, a[key], b[key], rel_tol, out)
        return
    if isinstance(a, list):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} != {len(b)}")
            return
        for index, (left, right) in enumerate(zip(a, b)):
            _diff_value(f"{path}[{index}]", left, right, rel_tol, out)
        return
    if a != b:
        out.append(f"{path}: {a!r} != {b!r}")


def compare_artifacts(
    a: dict,
    b: dict,
    *,
    rel_tol: float = 0.0,
    wall_clock_band: Optional[float] = None,
) -> List[str]:
    """Compare artifact documents; returns divergence messages (empty == match).

    *rel_tol* relaxes the numeric comparison of the deterministic
    sections (default 0.0: exact).  *wall_clock_band* is a relative
    band for ``host.wall_clock_s`` (e.g. ``2.0`` tolerates B being up
    to 3x A); None skips the wall-clock check entirely.
    """
    diffs: List[str] = []
    for section in DETERMINISTIC_SECTIONS:
        _diff_value(section, a.get(section), b.get(section), rel_tol, diffs)
    if wall_clock_band is not None:
        wall_a = (a.get("host") or {}).get("wall_clock_s")
        wall_b = (b.get("host") or {}).get("wall_clock_s")
        if wall_a is None or wall_b is None:
            diffs.append("host.wall_clock_s: missing on one side")
        elif wall_a > 0 and abs(wall_b - wall_a) > wall_clock_band * wall_a:
            diffs.append(
                f"host.wall_clock_s: {wall_b:.3f}s outside +/-{wall_clock_band:g}x "
                f"band around {wall_a:.3f}s"
            )
    return diffs


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.compare",
        description="Diff two BENCH_*.json artifacts (exit 1 on divergence).",
    )
    parser.add_argument("baseline", help="artifact A (the reference)")
    parser.add_argument("candidate", help="artifact B (the run under test)")
    parser.add_argument(
        "--rel-tol",
        type=float,
        default=0.0,
        metavar="FRAC",
        help="relative tolerance for simulated numbers (default 0: exact)",
    )
    parser.add_argument(
        "--wall-clock-band",
        type=float,
        default=None,
        metavar="FRAC",
        help="allowed relative deviation of host wall clock (default: ignored)",
    )
    args = parser.parse_args(argv)
    try:
        doc_a = load_artifact(args.baseline)
        doc_b = load_artifact(args.candidate)
    except ArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diffs = compare_artifacts(
        doc_a,
        doc_b,
        rel_tol=args.rel_tol,
        wall_clock_band=args.wall_clock_band,
    )
    if diffs:
        print(
            f"MISMATCH {args.baseline} vs {args.candidate} "
            f"({len(diffs)} divergence(s)):"
        )
        for line in diffs:
            print(f"  {line}")
        return 1
    print(f"OK {args.baseline} == {args.candidate} (figure {doc_a['figure']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
