"""Reproduction of *Sift: Resource-Efficient Consensus with RDMA* (CoNEXT 2019).

The package is organised as a stack of subsystems:

``repro.sim``
    Discrete-event simulation engine (virtual time, processes, CPU pools).
``repro.net``
    Simulated network fabric, hosts, and the client/server RPC channel.
``repro.rdma``
    One-sided RDMA verbs (READ / WRITE / CAS) and queue pairs over the fabric.
``repro.storage``
    Passive memory nodes: admin region, circular WAL, replicated memory.
``repro.ec``
    GF(2^8) arithmetic and Cauchy Reed-Solomon erasure codes.
``repro.core``
    The Sift protocol: election, heartbeats, replicated memory, recovery.
``repro.kv``
    The recoverable key-value store built on replicated memory.
``repro.persist``
    Optional persistence layer (RocksDB-substitute, WAL-to-SAN).
``repro.baselines``
    Raft-R, EPaxos and Disk Paxos comparison systems.
``repro.workloads``
    Zipfian workload generators and closed-loop client pools.
``repro.cluster``
    Cloud cost model, failure traces and shared-backup-pool analysis.
``repro.bench``
    Experiment harness regenerating every table and figure of the paper.
``repro.shard``
    Multi-group sharded KV service over a live shared backup pool.
``repro.api``
    The cluster façade: one construction path for every system.
"""

from repro._version import __version__
from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
