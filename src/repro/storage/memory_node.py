"""The passive memory node.

Provisioned with minimal CPU (one core in Table 2), a memory node only
participates actively in connection setup; every protocol interaction
afterwards is a one-sided verb against its two exported regions.

Region map::

    admin   (64 B, shared)      offset 0: the 64-bit admin word
    repmem  (exclusive)         [ WAL slots | replicated memory block ]
    meta    (exclusive)         offset 0: the 64-bit status word
    repmem-recovery (fenced)    alias of repmem for recovery pushers

By default the regions are volatile: a crash + restart comes back zeroed
with a new incarnation, and the coordinator must run memory-node recovery
(§3.4.2) to re-populate it.  A *persistent* node (modelling the NVMe /
persistent-memory deployments of §3.5) retains its bytes across restarts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.fabric import Fabric
from repro.net.host import Host
from repro.rdma.listener import RdmaListener
from repro.rdma.memory import MemoryRegion
from repro.rdma.nic import Rnic
from repro.storage.wal import WalLayout

__all__ = ["MemoryNode", "MemoryNodeConfig"]

ADMIN_REGION = "admin"
REPMEM_REGION = "repmem"
META_REGION = "meta"
RECOVERY_REGION = "repmem-recovery"
"""Alias of ``repmem`` used as the landing window for partitioned
recovery: source memory nodes stream fragments straight into a
rejoining node through queue pairs granted this view, without touching
the coordinator's exclusive hold on ``repmem``.  The alias is *fenced
by* the exclusive export — claiming ``repmem`` revokes every pusher —
so a deposed coordinator's in-flight pushers cannot write stale
fragments once a successor owns the node (§3.2 extended to helpers)."""
ADMIN_WORD_OFFSET = 0
STATUS_OFFSET = 0

STATUS_UNINITIALISED = 0
"""Fresh DRAM: the node holds no usable state and must not be trusted."""

STATUS_INITIALISED = 1
"""The coordinator finished populating this node (bootstrap or recovery)."""


@dataclass(frozen=True)
class MemoryNodeConfig:
    """Geometry of a memory node's replicated region."""

    wal_entries: int = 32 * 1024  # paper §6.2: "a write-ahead log that holds 32k entries"
    wal_payload_bytes: int = 1_088  # fits a 1 KiB KV block write plus headers
    data_bytes: int = 4 * 1024 * 1024
    persistent: bool = False

    @property
    def wal_layout(self) -> WalLayout:
        """Layout of the WAL at the head of the replicated region."""
        return WalLayout(self.wal_entries, self.wal_payload_bytes)

    @property
    def data_offset(self) -> int:
        """Offset of the replicated memory block within the region."""
        return self.wal_layout.total_bytes

    @property
    def region_bytes(self) -> int:
        """Total size of the replicated region."""
        return self.data_offset + self.data_bytes


class MemoryNode:
    """A memory node: host + NIC + listener + the two exported regions."""

    def __init__(
        self,
        fabric: Fabric,
        name: str,
        node_index: int,
        config: MemoryNodeConfig = MemoryNodeConfig(),
        cores: int = 1,
    ):
        self.fabric = fabric
        self.name = name
        self.node_index = node_index
        self.config = config
        self.host: Host = fabric.add_host(name, cores=cores)
        self.nic = Rnic(self.host, fabric)
        self.listener = RdmaListener(self.host)
        self.admin_region = MemoryRegion(ADMIN_REGION, 64)
        self.repmem_region = MemoryRegion(REPMEM_REGION, config.region_bytes)
        self.meta_region = MemoryRegion(META_REGION, 64)
        self._export()
        self.host.services["memory-node"] = self

    def _export(self) -> None:
        self.listener.export(self.admin_region, exclusive=False)
        self.listener.export(self.repmem_region, exclusive=True)
        self.listener.export(self.meta_region, exclusive=True)
        self.listener.export(
            self.repmem_region.alias(RECOVERY_REGION), fenced_by=REPMEM_REGION
        )

    # -- fault injection ---------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop the node."""
        self.host.crash()

    def restart(self) -> None:
        """Bring the node back; volatile nodes lose their region contents."""
        self.host.restart()
        if not self.config.persistent:
            self.admin_region = MemoryRegion(ADMIN_REGION, 64)
            self.repmem_region = MemoryRegion(REPMEM_REGION, self.config.region_bytes)
            self.meta_region = MemoryRegion(META_REGION, 64)
        self.listener.clear()
        self._export()

    # -- host lifecycle hooks (dispatched by Host.crash/restart) -----------------

    def on_host_crash(self) -> None:
        """Nothing extra: the listener hook already drops QP holderships."""

    @property
    def alive(self) -> bool:
        """Whether the node is currently up."""
        return self.host.alive

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<MemoryNode {self.name} {state}>"
