"""Passive memory nodes.

A Sift memory node (§3.1) is a machine with minimal CPU that exports two
RDMA regions:

* the **administrative region** — a single 64-bit word packing
  ``term_id (16b) | node_id (16b) | timestamp (32b)``, the target of
  heartbeat CAS writes, heartbeat reads, and election CAS attempts;
* the **replicated memory region** — a circular write-ahead log followed
  by the replicated memory block, exported with at-most-one-connection
  (exclusive) semantics so only the latest coordinator can touch it.

This package provides the byte layouts and the
:class:`~repro.storage.memory_node.MemoryNode` wiring; the *protocol*
that drives these bytes lives in :mod:`repro.core`.
"""

from repro.storage.admin import AdminWord
from repro.storage.memory_node import MemoryNode, MemoryNodeConfig
from repro.storage.wal import WalCodec, WalEntry, WalLayout

__all__ = [
    "AdminWord",
    "MemoryNode",
    "MemoryNodeConfig",
    "WalCodec",
    "WalEntry",
    "WalLayout",
]
