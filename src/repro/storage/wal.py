"""Circular write-ahead log: slot layout and entry codec.

The replicated-memory WAL lets "multiple writes be committed in parallel
using a single RDMA operation" (§3.1): each logged write lands in one
fixed-size slot chosen by ``log_index % entry_count``, and the embedded
log index "is used to determine the circular log order" during recovery
(§3.4.1).

Each entry also records the **term** of the coordinator that wrote it.
The paper does not spell this field out, but it is required for the same
reason Raft tags log entries with terms: a deposed coordinator that can
still reach a minority memory node may leave a divergent uncommitted
suffix there, and the next recovery must be able to prefer the newer
coordinator's entries at the same indices.  Entries carry a CRC so a
reader can reject slots torn by a coordinator that died mid-write.
"""

from __future__ import annotations

import struct
import zlib
from typing import NamedTuple, Optional

__all__ = ["WalLayout", "WalEntry", "WalCodec", "HEADER_BYTES"]

_HEADER = struct.Struct("<QQQII")  # log_index, address, term, length, crc32
HEADER_BYTES = _HEADER.size


class WalEntry(NamedTuple):
    """One logged write: apply *data* at *address* in replicated memory."""

    log_index: int
    address: int
    data: bytes
    term: int = 0


class WalLayout(NamedTuple):
    """Geometry of a circular WAL living at the head of a region."""

    entry_count: int
    payload_bytes: int

    @property
    def slot_bytes(self) -> int:
        """Size of one slot: header plus maximum payload."""
        return HEADER_BYTES + self.payload_bytes

    @property
    def total_bytes(self) -> int:
        """Bytes the WAL occupies in the region."""
        return self.entry_count * self.slot_bytes

    def slot_offset(self, log_index: int) -> int:
        """Region offset of the slot that holds *log_index*."""
        if log_index < 1:
            raise ValueError(f"log indices start at 1, got {log_index}")
        return ((log_index - 1) % self.entry_count) * self.slot_bytes


class WalCodec:
    """Encode/decode entries for a given layout."""

    def __init__(self, layout: WalLayout):
        self.layout = layout

    def encode(self, entry: WalEntry) -> bytes:
        """Serialise an entry into a slot image (header + payload, no pad).

        The returned bytes may be shorter than the slot; stale tail bytes
        from a previous occupant are harmless because the header records
        the payload length and the CRC covers exactly that payload.
        """
        if len(entry.data) > self.layout.payload_bytes:
            raise ValueError(
                f"payload of {len(entry.data)}B exceeds slot payload "
                f"{self.layout.payload_bytes}B"
            )
        crc = zlib.crc32(entry.data) ^ (entry.log_index & 0xFFFFFFFF)
        header = _HEADER.pack(
            entry.log_index, entry.address, entry.term, len(entry.data), crc
        )
        return header + entry.data

    def decode(self, slot: bytes) -> Optional[WalEntry]:
        """Parse a slot image; None for empty, torn, or corrupt slots."""
        if len(slot) < HEADER_BYTES:
            return None
        log_index, address, term, length, crc = _HEADER.unpack_from(slot)
        if log_index == 0:
            return None  # never written
        if length > self.layout.payload_bytes or HEADER_BYTES + length > len(slot):
            return None
        data = bytes(slot[HEADER_BYTES : HEADER_BYTES + length])
        if zlib.crc32(data) ^ (log_index & 0xFFFFFFFF) != crc:
            return None  # torn write
        return WalEntry(log_index, address, data, term)
