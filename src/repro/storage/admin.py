"""The administrative word.

The paper stores ``term_id`` and ``node_id`` as 16-bit fields and the
heartbeat ``timestamp`` as 32 bits (§3.1); packing all three into one
64-bit word lets a single RDMA CAS atomically bump a heartbeat or claim a
term, which is exactly what makes the election protocol "resemble the
locking of spinlocks" (§3.2).
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["AdminWord"]

_TERM_BITS = 16
_NODE_BITS = 16
_TS_BITS = 32

TERM_MAX = (1 << _TERM_BITS) - 1
NODE_MAX = (1 << _NODE_BITS) - 1
TS_MAX = (1 << _TS_BITS) - 1


class AdminWord(NamedTuple):
    """Decoded administrative word: who leads which term, and their clock."""

    term_id: int
    node_id: int
    timestamp: int

    def pack(self) -> int:
        """Encode into the 64-bit wire word."""
        if not 0 <= self.term_id <= TERM_MAX:
            raise ValueError(f"term_id {self.term_id} out of 16-bit range")
        if not 0 <= self.node_id <= NODE_MAX:
            raise ValueError(f"node_id {self.node_id} out of 16-bit range")
        if not 0 <= self.timestamp <= TS_MAX:
            raise ValueError(f"timestamp {self.timestamp} out of 32-bit range")
        return (self.term_id << (_NODE_BITS + _TS_BITS)) | (self.node_id << _TS_BITS) | self.timestamp

    @classmethod
    def unpack(cls, word: int) -> "AdminWord":
        """Decode a 64-bit wire word."""
        return cls(
            term_id=(word >> (_NODE_BITS + _TS_BITS)) & TERM_MAX,
            node_id=(word >> _TS_BITS) & NODE_MAX,
            timestamp=word & TS_MAX,
        )

    def with_timestamp(self, timestamp: int) -> "AdminWord":
        """Same leadership claim, renewed lease clock (wraps at 32 bits)."""
        return AdminWord(self.term_id, self.node_id, timestamp & TS_MAX)
