"""Shared deterministic test/benchmark scaffolding.

``tests/conftest.py`` and ``benchmarks/conftest.py`` historically carried
copy-pasted fixture code; both now import from here.  Everything in this
module derives randomness from the simulator's seeded
:class:`~repro.sim.rng.RngStreams` — helpers never construct their own
ad-hoc RNGs, so two runs with the same seed are bit-identical.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.fabric import Fabric
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS, SEC

__all__ = [
    "register_hypothesis_profile",
    "run_once",
    "make_sim",
    "make_group",
    "make_kv_stack",
    "run_scenario",
]


def register_hypothesis_profile() -> None:
    """Install and load the deterministic ``repro`` Hypothesis profile.

    Simulations are deterministic but not fast on a single core, so the
    profile disables per-example deadlines (wall-clock noise must not
    fail a correct property) and keeps example counts moderate;
    individual tests override ``max_examples`` where a structure
    deserves a deeper search.  Idempotent: safe to call from several
    conftests in one pytest run.
    """
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "repro",
        deadline=None,
        max_examples=60,
        suppress_health_check=[HealthCheck.too_slow],
        derandomize=True,
    )
    settings.load_profile("repro")


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its result.

    Every benchmark runs a deterministic simulated experiment exactly
    once (``rounds=1``): the numbers of interest are the *simulated*
    metrics the module prints, not the harness wall time pytest-benchmark
    records.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def make_sim(seed: int = 0) -> Tuple[Simulator, Fabric]:
    """A fresh simulator + fabric whose RNG streams derive from *seed*."""
    sim = Simulator()
    fabric = Fabric(sim, rng=RngStreams(seed=seed))
    return sim, fabric


def make_group(fc: int = 1, seed: int = 0, name: str = "e", **overrides):
    """A small started Sift group with no application (election tests)."""
    from repro.core import SiftConfig, SiftGroup

    sim, fabric = make_sim(seed)
    defaults = dict(fm=1, fc=fc, data_bytes=64 * 1024, wal_entries=64)
    defaults.update(overrides)
    group = SiftGroup(fabric, SiftConfig(**defaults), name=name)
    group.start()
    return sim, fabric, group


def make_kv_stack(
    ec: bool = False,
    fc: int = 1,
    fm: int = 1,
    seed: int = 0,
    name: str = "i",
    max_keys: int = 256,
    **sift_overrides,
):
    """A started Sift group running the KV app, plus one client."""
    from repro.core import SiftGroup
    from repro.kv import KvClient, KvConfig, kv_app_factory

    sim, fabric = make_sim(seed)
    kv_config = KvConfig(max_keys=max_keys, wal_entries=128, watermark_interval=32)
    overrides = dict(wal_entries=128, memnode_poll_interval_us=30 * MS)
    overrides.update(sift_overrides)
    sift_config = kv_config.sift_config(fm=fm, fc=fc, erasure_coding=ec, **overrides)
    group = SiftGroup(fabric, sift_config, name=name, app_factory=kv_app_factory(kv_config))
    group.start()
    client = KvClient(fabric.add_host("client", cores=4), fabric, group)
    return sim, fabric, group, client


def run_scenario(sim: Simulator, gen, until: float = 120 * SEC, message: Optional[str] = None):
    """Spawn *gen*, run the sim until it settles, re-raise its failure."""
    process = sim.spawn(gen)
    sim.run_until_settled(process, deadline=until)
    assert process.settled, message or "scenario did not finish"
    if process.failed:
        raise process.exception
    return process.value
