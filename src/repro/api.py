"""One front door for every system the reproduction can build.

Constructing an experiment by hand takes four layers — simulator,
fabric, config, cluster — and each system (Sift, Sift EC, Raft-R,
EPaxos, the sharded service) spells them slightly differently.  This
façade folds all of that behind three calls::

    from repro.api import Cluster

    cluster = Cluster.build("sift", seed=7)
    client = cluster.client()

    def scenario():
        yield from cluster.ready()
        yield from client.put(b"user:42", b"Ada Lovelace")
        return (yield from client.get(b"user:42"))

    value = cluster.run(scenario())

``build`` accepts any name from :data:`SYSTEMS` and delegates to the
exact same :class:`~repro.bench.systems.SystemSpec` factories the
benchmark harness uses — same host names, same construction order, same
RNG streams — so a façade-built cluster is indistinguishable from a
harness-built one (the figure baselines depend on that).
"""

from __future__ import annotations

from itertools import count
from typing import Optional

from repro.errors import ReproError
from repro.net.fabric import Fabric
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import SEC

__all__ = ["Cluster", "ScenarioFailed", "SYSTEMS", "system_spec"]

#: Re-exported so ``from repro.api import Topology`` works alongside
#: ``Cluster.topology()`` (the type lives with the control plane).
from repro.control.topology import Topology  # noqa: E402

__all__.append("Topology")

#: Every system ``Cluster.build`` understands.
SYSTEMS = ("sift", "sift-ec", "raft-r", "epaxos", "sharded")


class ScenarioFailed(ReproError):
    """A process handed to :meth:`Cluster.run` failed or never settled."""


def system_spec(system: str, scale=None, cores: Optional[int] = None, **options):
    """The :class:`~repro.bench.systems.SystemSpec` for a system name.

    *options* are forwarded to the spec factory (``shards=...``,
    ``backups=...`` for ``sharded``; ``kv_overrides=...`` for Sift).
    """
    from repro.bench.calibration import DEFAULT_SCALE
    from repro.bench.systems import epaxos_spec, raft_spec, sharded_spec, sift_spec

    scale = scale or DEFAULT_SCALE
    if system == "sift":
        return sift_spec(cores=cores, scale=scale, **options)
    if system == "sift-ec":
        return sift_spec(erasure_coding=True, cores=cores, scale=scale, **options)
    if system == "raft-r":
        return raft_spec(cores=cores or 8, scale=scale, **options)
    if system == "epaxos":
        return epaxos_spec(cores=cores or 8, scale=scale, **options)
    if system == "sharded":
        return sharded_spec(scale=scale, cores=cores, **options)
    raise ValueError(f"unknown system {system!r}; pick one of {SYSTEMS}")


class Cluster:
    """A built system plus the simulator loop that drives it."""

    def __init__(self, spec, fabric: Fabric, inner):
        self.spec = spec
        self.fabric = fabric
        self.sim: Simulator = fabric.sim
        self.inner = inner
        self._client_ids = count()

    @classmethod
    def build(
        cls,
        system: str = "sift",
        seed: int = 0,
        fabric: Optional[Fabric] = None,
        scale=None,
        cores: Optional[int] = None,
        **options,
    ) -> "Cluster":
        """Build and start *system* on a fresh seeded fabric.

        Pass an existing *fabric* to co-locate several systems on one
        simulation (then *seed* is ignored — the fabric owns the RNG).
        """
        spec = system_spec(system, scale=scale, cores=cores, **options)
        if fabric is None:
            fabric = Fabric(Simulator(), rng=RngStreams(seed=seed))
        return cls(spec, fabric, spec.build(fabric))

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------

    def client(self, name: Optional[str] = None, cores: int = 4, **kwargs):
        """A KV client on its own fresh host.

        Returns a :class:`~repro.shard.router.ShardRouter` for the
        sharded service and a :class:`~repro.kv.client.KvClient`
        otherwise (Raft-R and EPaxos expose the same endpoint surface);
        *kwargs* reach the client constructor (timeouts, retry policy).
        """
        from repro.kv.client import KvClient
        from repro.shard.router import ShardRouter
        from repro.shard.service import ShardedKvService

        if name is None:
            # Several Clusters may share one fabric; skip taken names.
            name = f"client-{next(self._client_ids)}"
            while name in self.fabric.hosts:
                name = f"client-{next(self._client_ids)}"
        host = self.fabric.add_host(name, cores=cores)
        factory = ShardRouter if isinstance(self.inner, ShardedKvService) else KvClient
        return factory(host, self.fabric, self.inner, **kwargs)

    # ------------------------------------------------------------------
    # Topology: the one public window into the control plane
    # ------------------------------------------------------------------

    def topology(self) -> Topology:
        """An immutable snapshot of shards, groups, placement and pool.

        This (plus :meth:`scale` and :meth:`migrate`) replaces reaching
        into service internals like ``ShardedKvService.group_for``.
        """
        return Topology.of(self.inner, at_us=self.sim.now)

    def _sharded(self):
        from repro.shard.service import ShardedKvService

        if not isinstance(self.inner, ShardedKvService):
            raise ReproError(
                f"{self.spec.name!r} is not sharded; topology mutation needs "
                "Cluster.build('sharded', ...)"
            )
        return self.inner

    def scale(self, shards: Optional[int] = None, backups: Optional[int] = None,
              auto: bool = False, config=None):
        """Change the cluster's shape, or hand it to the reconciler.

        ``shards=N`` live-splits (largest key-span first) or
        live-merges (smallest into largest) until the ring has N
        shards, driving the simulator until each migration completes —
        no acked write is dropped.  ``backups=N`` resizes the shared
        pool immediately.  ``auto=True`` starts a
        :class:`~repro.control.reconciler.Reconciler` with *config*
        (a :class:`~repro.control.reconciler.ReconcilerConfig`) that
        does both continuously; returns it (stop with ``.stop()``).
        Returns the resulting :class:`Topology` otherwise.
        """
        from repro.control.migrate import MigrationManager
        from repro.control.reconciler import Reconciler

        service = self._sharded()
        if auto:
            reconciler = Reconciler(self.fabric, service, config=config)
            reconciler.start()
            return reconciler
        if backups is not None:
            service.pool.resize(backups)
        if shards is not None:
            if shards < 1:
                raise ValueError(f"need at least one shard, got {shards}")
            while len(service.ring.shards) < shards:
                widest = max(
                    sorted(service.ring.shards), key=self._shard_span
                )
                manager = MigrationManager.split(self.fabric, service, widest)
                self.run(manager.run())
            while len(service.ring.shards) > shards:
                spans = sorted(service.ring.shards, key=self._shard_span)
                manager = MigrationManager.merge(
                    self.fabric, service, spans[0], spans[-1]
                )
                self.run(manager.run())
        return self.topology()

    def _shard_span(self, shard: str) -> int:
        """Total key-space span a shard owns (deterministic split pick)."""
        service = self._sharded()
        return sum(
            (hi - lo) % (1 << 64) for lo, hi in service.ring.arcs_of(shard)
        )

    def migrate(self, shard: str, to: Optional[str] = None,
                new_shard: Optional[str] = None, **kwargs):
        """Run one live key-range migration to completion.

        Without *to*: split *shard*, provisioning a fresh group (named
        *new_shard* if given) and moving half the range to it.  With
        *to*: merge *shard*'s whole range into the running group *to*.
        Drives the simulator until the forwarding window closes and
        returns the :class:`~repro.control.migrate.MigrationManager`
        (``.stats``, ``.cutover_at``, ``.snapshot()``).
        """
        from repro.control.migrate import MigrationManager

        service = self._sharded()
        if to is None:
            manager = MigrationManager.split(
                self.fabric, service, shard, new_shard=new_shard, **kwargs
            )
        else:
            if new_shard is not None:
                raise ValueError("new_shard only applies to splits (to=None)")
            manager = MigrationManager.merge(
                self.fabric, service, shard, to, **kwargs
            )
        self.run(manager.run())
        return manager

    # ------------------------------------------------------------------
    # Driving the simulation
    # ------------------------------------------------------------------

    def ready(self):
        """Process: the spec's readiness condition (compose into scenarios)."""
        result = yield from self.spec.wait_ready(self.inner)
        return result

    def wait_ready(self, deadline_us: float = 30 * SEC):
        """Run the simulator until the cluster serves; returns the leader."""
        return self.run(self.ready(), deadline_us=deadline_us)

    def preload(self, items) -> None:
        """Synchronous §6.2 pre-population of ``(key, value)`` pairs."""
        self.spec.preload(self.inner, items)

    def run(self, process=None, until: Optional[float] = None, deadline_us: float = 120 * SEC):
        """Drive the simulation.

        With a generator *process*: spawn it, run until it settles (at
        most *deadline_us* more simulated time), re-raise its failure,
        and return its value.  Without one: advance simulated time to
        *until* (or drain the event queue).
        """
        if process is None:
            self.sim.run(until=until)
            return None
        spawned = self.sim.spawn(process, name="api-scenario")
        spawned.add_callback(lambda _ev: None)  # outcome re-raised below
        self.sim.run_until_settled(spawned, deadline=self.sim.now + deadline_us)
        if not spawned.settled:
            raise ScenarioFailed(f"scenario still running after {deadline_us}us")
        if spawned.failed:
            raise spawned.exception
        return spawned.value

    def __repr__(self) -> str:
        return f"<Cluster {self.spec.name} inner={self.inner!r}>"
