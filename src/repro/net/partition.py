"""Network partition controller.

A thin convenience wrapper over :class:`~repro.net.fabric.Fabric` used by
fault-injection tests: split the cluster into named sides, isolate single
hosts, and heal.  The paper's safety argument (§3.2) — at-most-one
connection to the replicated region plus CAS-guarded heartbeats — is
exercised under exactly these scenarios.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, List, Tuple

from repro.net.fabric import Fabric

__all__ = ["PartitionController"]


class PartitionController:
    """Creates and undoes partitions on a fabric."""

    def __init__(self, fabric: Fabric):
        self.fabric = fabric
        self._splits: List[Tuple[Tuple[str, ...], Tuple[str, ...]]] = []
        self._oneway: List[Tuple[Tuple[str, ...], Tuple[str, ...]]] = []

    def split(self, side_a: Iterable[str], side_b: Iterable[str]) -> None:
        """Block all traffic between *side_a* and *side_b*."""
        a = tuple(side_a)
        b = tuple(side_b)
        for host_a, host_b in product(a, b):
            self.fabric.block(host_a, host_b)
        self._splits.append((a, b))

    def split_oneway(self, sources: Iterable[str], destinations: Iterable[str]) -> None:
        """Block traffic *from* sources *to* destinations only.

        The reverse direction keeps flowing — the asymmetric case where
        a coordinator's writes vanish while it still hears the world.
        """
        srcs = tuple(sources)
        dsts = tuple(destinations)
        for src, dst in product(srcs, dsts):
            self.fabric.block_oneway(src, dst)
        self._oneway.append((srcs, dsts))

    def isolate(self, host: str) -> None:
        """Cut one host off from the rest of the cluster."""
        self.fabric.isolate(host)

    def rejoin(self, host: str) -> None:
        """Reconnect a previously isolated host."""
        self.fabric.rejoin(host)

    def heal(self) -> None:
        """Undo every partition created through this controller."""
        for a, b in self._splits:
            for host_a, host_b in product(a, b):
                self.fabric.unblock(host_a, host_b)
        self._splits.clear()
        for srcs, dsts in self._oneway:
            for src, dst in product(srcs, dsts):
                self.fabric.unblock_oneway(src, dst)
        self._oneway.clear()
        self.fabric.heal()
