"""Latency models for message and verb delivery.

Two calibrated profiles matter for the reproduction:

* the **RDMA path** — microsecond-scale base latency plus a 10 GbE
  serialisation term (the evaluation cluster used Mellanox 10GbE ports);
* the **RPC path** — the custom select-based RPC over TCP, to which the
  paper attributes ~50 µs of each request's latency (§6.3.3).

Models are sampled per message with a small lognormal-ish jitter so that
queueing effects and tail latencies emerge rather than being hard-coded.
"""

from __future__ import annotations

import random

__all__ = ["LatencyModel", "FixedLatency", "LinearLatency"]

TEN_GBE_BYTES_PER_US = 1250.0
"""Serialisation rate of a 10 GbE link: 1.25 GB/s = 1250 bytes/µs."""


class LatencyModel:
    """Base class: maps a message size to a one-way delivery latency."""

    def sample(self, rng: random.Random, size_bytes: int = 0) -> float:
        """Return a one-way latency in microseconds for *size_bytes*."""
        raise NotImplementedError

    def mean(self, size_bytes: int = 0) -> float:
        """The jitter-free expected latency, used for capacity planning."""
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """A constant latency regardless of message size (useful in tests)."""

    def __init__(self, latency_us: float):
        if latency_us < 0:
            raise ValueError(f"negative latency: {latency_us}")
        self.latency_us = latency_us

    def sample(self, rng: random.Random, size_bytes: int = 0) -> float:
        return self.latency_us

    def mean(self, size_bytes: int = 0) -> float:
        return self.latency_us

    def __repr__(self) -> str:
        return f"FixedLatency({self.latency_us}us)"


class LinearLatency(LatencyModel):
    """``base + size/bandwidth`` with optional multiplicative jitter.

    *jitter* is the fractional standard deviation of a clipped Gaussian
    multiplier; 0 disables it.  The multiplier is clipped at 3 sigma and
    never below 0.2x so pathological samples cannot reorder time.
    """

    def __init__(
        self,
        base_us: float,
        bytes_per_us: float = TEN_GBE_BYTES_PER_US,
        jitter: float = 0.0,
    ):
        if base_us < 0:
            raise ValueError(f"negative base latency: {base_us}")
        if bytes_per_us <= 0:
            raise ValueError(f"non-positive bandwidth: {bytes_per_us}")
        if jitter < 0:
            raise ValueError(f"negative jitter: {jitter}")
        self.base_us = base_us
        self.bytes_per_us = bytes_per_us
        self.jitter = jitter

    def sample(self, rng: random.Random, size_bytes: int = 0) -> float:
        latency = self.base_us + size_bytes / self.bytes_per_us
        if self.jitter:
            multiplier = rng.gauss(1.0, self.jitter)
            multiplier = max(0.2, min(multiplier, 1.0 + 3.0 * self.jitter))
            latency *= multiplier
        return latency

    def mean(self, size_bytes: int = 0) -> float:
        return self.base_us + size_bytes / self.bytes_per_us

    def __repr__(self) -> str:
        return (
            f"LinearLatency(base={self.base_us}us, "
            f"bw={self.bytes_per_us}B/us, jitter={self.jitter})"
        )
