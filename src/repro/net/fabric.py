"""The network fabric: host registry, delivery, partitions.

The fabric is deliberately thin: given a source host, a destination host,
a payload size and a latency model it either schedules a delivery callback
or reports the destination unreachable.  Reachability is evaluated **at
send time and again at arrival time**, so a message in flight when its
destination crashes is lost, exactly as on a real network.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, List, NamedTuple, Optional, Set

from repro.net.errors import HostDown, Unreachable
from repro.net.host import Host
from repro.net.latency import LatencyModel, LinearLatency
from repro.obs import state as obs_state
from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngStreams

__all__ = ["Fabric", "Verdict"]


class Verdict(NamedTuple):
    """An interceptor's ruling on one in-flight message.

    Interceptors (installed by the fault-injection layer, see
    :mod:`repro.chaos`) are consulted per message and may drop it,
    delay it, or deliver extra copies.  ``duplicate_gap_us`` spaces the
    copies so they arrive as distinct events.
    """

    drop: bool = False
    extra_delay_us: float = 0.0
    duplicates: int = 0
    duplicate_gap_us: float = 1.0


PASS = Verdict()
"""The default ruling: deliver the message untouched."""


Interceptor = Callable[[str, str, int, str], Verdict]
"""``(src, dst, size_bytes, stream) -> Verdict``."""


class Fabric:
    """Connects hosts; samples latencies; enforces partitions."""

    def __init__(
        self,
        sim: Simulator,
        rng: Optional[RngStreams] = None,
        default_latency: Optional[LatencyModel] = None,
    ):
        self.sim = sim
        self.rng = rng if rng is not None else RngStreams(seed=0)
        self.default_latency = default_latency or LinearLatency(base_us=5.0)
        self.hosts: Dict[str, Host] = {}
        self._blocked_pairs: Set[FrozenSet[str]] = set()
        self._blocked_oneway: Set[tuple] = set()
        self._isolated: Set[str] = set()
        self._interceptors: List[Interceptor] = []
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0

    # -- topology ------------------------------------------------------------

    def add_host(self, name: str, cores: int = 1) -> Host:
        """Create and register a host."""
        if name in self.hosts:
            raise ValueError(f"duplicate host name: {name}")
        host = Host(self.sim, name, cores=cores)
        self.hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        """Look up a registered host."""
        return self.hosts[name]

    # -- partitions ------------------------------------------------------------

    def block(self, a: str, b: str) -> None:
        """Drop all traffic between hosts *a* and *b* until unblocked."""
        self._blocked_pairs.add(frozenset((a, b)))

    def unblock(self, a: str, b: str) -> None:
        """Restore traffic between hosts *a* and *b*."""
        self._blocked_pairs.discard(frozenset((a, b)))

    def block_oneway(self, src: str, dst: str) -> None:
        """Drop traffic *from* src *to* dst only (asymmetric partition).

        Real RDMA deployments see these when one switch port loses its
        transmit lane or an ACL is misconfigured: A's verbs to B vanish
        while B still reaches A.
        """
        self._blocked_oneway.add((src, dst))

    def unblock_oneway(self, src: str, dst: str) -> None:
        """Restore the src -> dst direction."""
        self._blocked_oneway.discard((src, dst))

    def isolate(self, name: str) -> None:
        """Cut a host off from everyone (asymmetric partitions via block())."""
        self._isolated.add(name)

    def rejoin(self, name: str) -> None:
        """Undo :meth:`isolate`."""
        self._isolated.discard(name)

    def heal(self) -> None:
        """Remove every partition."""
        self._blocked_pairs.clear()
        self._blocked_oneway.clear()
        self._isolated.clear()

    # -- message interception --------------------------------------------------

    def add_interceptor(self, interceptor: Interceptor) -> Interceptor:
        """Install a per-message fault hook; returns it for later removal.

        With no interceptors installed, :meth:`deliver` is byte-for-byte
        identical to the un-instrumented fabric (no extra RNG draws), so
        experiments that inject only crashes reproduce their exact
        pre-chaos schedules.
        """
        self._interceptors.append(interceptor)
        return interceptor

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        """Uninstall a previously added interceptor (no-op if absent)."""
        try:
            self._interceptors.remove(interceptor)
        except ValueError:
            pass

    def _intercept(self, src: str, dst: str, size_bytes: int, stream: str) -> Verdict:
        drop = False
        extra = 0.0
        duplicates = 0
        gap = 1.0
        for interceptor in self._interceptors:
            verdict = interceptor(src, dst, size_bytes, stream)
            if verdict is None:
                continue
            drop = drop or verdict.drop
            extra += verdict.extra_delay_us
            duplicates += verdict.duplicates
            gap = verdict.duplicate_gap_us
        return Verdict(drop, extra, duplicates, gap)

    def reachable(self, src: str, dst: str) -> bool:
        """Whether a message sent now from *src* would arrive at *dst*."""
        # Partition state is empty in the vast majority of experiments;
        # skip the per-call frozenset allocation unless something is cut.
        if self._isolated or self._blocked_pairs or self._blocked_oneway:
            if src in self._isolated or dst in self._isolated:
                return False
            if frozenset((src, dst)) in self._blocked_pairs:
                return False
            if (src, dst) in self._blocked_oneway:
                return False
        dst_host = self.hosts.get(dst)
        return dst_host is not None and dst_host.alive

    # -- delivery ------------------------------------------------------------

    def deliver(
        self,
        src: Host,
        dst: Host,
        size_bytes: int,
        on_arrival: Callable[[], Any],
        latency: Optional[LatencyModel] = None,
        stream: str = "net",
    ) -> bool:
        """Schedule *on_arrival* at *dst* after a sampled latency.

        Returns False (and delivers nothing) when the destination is
        unreachable at send time; a destination that dies in flight
        silently swallows the message.
        """
        if not src.alive:
            raise HostDown(f"send from dead host {src.name}")
        if not self.reachable(src.name, dst.name):
            return False
        model = latency or self.default_latency
        delay = model.sample(self.rng.stream(stream), size_bytes)
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.counter("net.messages", stream=stream).inc()
            obs_state.REGISTRY.counter("net.bytes", stream=stream).inc(size_bytes)
        if obs_state.TRACER is not None:
            obs_state.TRACER.instant(
                "net.send",
                self.sim.now,
                src=src.name,
                dst=dst.name,
                bytes=size_bytes,
                stream=stream,
            )
        verdict = (
            self._intercept(src.name, dst.name, size_bytes, stream)
            if self._interceptors
            else PASS
        )
        if verdict.drop:
            # The sender believes the send succeeded; the message is lost
            # in flight (silent, exactly like an in-flight crash).
            self.messages_dropped += 1
            if obs_state.REGISTRY is not None:
                obs_state.REGISTRY.counter("net.dropped", stream=stream).inc()
            return True
        delay += verdict.extra_delay_us
        # A bound method with explicit args replaces the old per-message
        # closure (same arrival checks, one less allocation per send).
        self.sim.schedule(
            delay, self._arrive, src.name, dst, dst.incarnation, on_arrival
        )
        for copy in range(verdict.duplicates):
            self.messages_duplicated += 1
            self.sim.schedule(
                delay + (copy + 1) * verdict.duplicate_gap_us,
                self._arrive,
                src.name,
                dst,
                dst.incarnation,
                on_arrival,
            )
        return True

    def _arrive(
        self,
        src_name: str,
        dst: Host,
        dst_incarnation: int,
        on_arrival: Callable[[], Any],
    ) -> None:
        if not dst.alive or dst.incarnation != dst_incarnation:
            return  # crashed (or crashed+restarted) while in flight
        if not self.reachable(src_name, dst.name):
            return  # partition formed while in flight
        on_arrival()

    def round_trip(
        self,
        src: Host,
        dst: Host,
        request_bytes: int,
        response_bytes: int,
        latency: Optional[LatencyModel] = None,
        stream: str = "net",
    ) -> Event:
        """A fire-and-forget request/response pair with no remote CPU.

        Used by substrates whose remote side is passive.  The returned
        event fails with :class:`Unreachable` if either direction is cut.
        """
        done = Event(self.sim)

        def respond() -> None:
            if not self.deliver(
                dst,
                src,
                response_bytes,
                lambda: done.try_trigger(None),
                latency=latency,
                stream=stream,
            ):
                done.try_fail(Unreachable(f"{dst.name} -> {src.name}"))

        if not self.deliver(src, dst, request_bytes, respond, latency=latency, stream=stream):
            done.try_fail(Unreachable(f"{src.name} -> {dst.name}"))
        return done
