"""Exception types raised by the network substrate.

These are *modelled* faults — the failures a real deployment would see —
as opposed to :class:`repro.sim.SimulationError`, which flags misuse of
the simulator itself.
"""

__all__ = ["NetworkError", "Unreachable", "HostDown", "RpcTimeout"]


class NetworkError(Exception):
    """Base class for modelled network failures."""


class Unreachable(NetworkError):
    """The destination cannot be reached (partition or dead host)."""


class HostDown(NetworkError):
    """An operation was attempted from or on a crashed host."""


class RpcTimeout(NetworkError):
    """An RPC did not receive a response within its deadline."""
