"""Exception types raised by the network substrate.

These are *modelled* faults — the failures a real deployment would see —
as opposed to :class:`repro.sim.SimulationError`, which flags misuse of
the simulator itself.  All derive from
:class:`repro.errors.ReproError`; ``NetworkError`` remains the
subsystem base for existing ``except`` clauses.
"""

from repro.errors import ReproError

__all__ = ["NetworkError", "Unreachable", "HostDown", "RpcTimeout"]


class NetworkError(ReproError):
    """Base class for modelled network failures."""


class Unreachable(NetworkError):
    """The destination cannot be reached (partition or dead host)."""

    retryable = True  # partitions heal, hosts restart


class HostDown(NetworkError):
    """An operation was attempted from or on a crashed host."""


class RpcTimeout(NetworkError):
    """An RPC did not receive a response within its deadline."""

    retryable = True
