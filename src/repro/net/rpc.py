"""Client/coordinator RPC channel.

Models the paper's "custom select-based RPC over TCP library" used
between clients and servers in *all* evaluated systems (§6.2).  An RPC
costs a network round trip on the TCP-path latency profile plus receive
and send CPU charges on the server; the constants are calibrated in
:mod:`repro.bench.calibration` so that roughly 50 µs of each request is
attributable to this layer, matching §6.3.3.

Handlers are either plain functions (``payload -> reply``) or generator
functions that may yield simulation events and ``return`` the reply.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, NamedTuple, Optional

from repro.compat import resolve_us_kwargs
from repro.net.errors import RpcTimeout, Unreachable
from repro.net.fabric import Fabric
from repro.net.host import Host
from repro.net.latency import LatencyModel, LinearLatency
from repro.obs import state as obs_state
from repro.sim.engine import Event

__all__ = ["RpcEndpoint", "RpcClient", "Reply", "DEFAULT_RPC_LATENCY"]

DEFAULT_RPC_LATENCY = LinearLatency(base_us=15.0, jitter=0.05)
"""Kernel TCP path: ~15 µs one way before serialisation, with jitter."""


class Reply(NamedTuple):
    """A handler's reply with an explicit wire size."""

    value: Any
    size_bytes: int = 64


class _Request(NamedTuple):
    method: str
    payload: Any
    respond: Callable[[Any, int], None]
    fail: Callable[[BaseException], None]
    #: Client-side span for the call, threaded across the wire so the
    #: server-side handler (and everything it spawns) parents under the
    #: same operation tree.  None when tracing is off.
    trace: Optional[Any] = None


class RpcEndpoint:
    """Server side: a set of method handlers bound to a host."""

    def __init__(
        self,
        host: Host,
        fabric: Fabric,
        name: str = "rpc",
        recv_cpu_us: float = 8.0,
        send_cpu_us: float = 5.0,
    ):
        self.host = host
        self.fabric = fabric
        self.name = name
        self.recv_cpu_us = recv_cpu_us
        self.send_cpu_us = send_cpu_us
        self._handlers: Dict[str, Callable[[Any], Any]] = {}
        host.services[f"rpc:{name}"] = self

    def register(self, method: str, handler: Callable[[Any], Any]) -> None:
        """Install *handler* for *method* (replacing any previous one)."""
        self._handlers[method] = handler

    def unregister(self, method: str) -> None:
        """Remove a handler; subsequent calls fail at the client by timeout."""
        self._handlers.pop(method, None)

    # Called by RpcClient on message arrival (host liveness already checked
    # by the fabric's delivery path).
    def _receive(self, request: _Request) -> None:
        handler = self._handlers.get(request.method)
        if handler is None:
            return  # unknown method: silently dropped, client times out
        tracer = obs_state.TRACER
        if (
            tracer is not None
            and request.trace is not None
            and request.trace.tracer is tracer
        ):
            # Re-establish the caller's span context so the handler
            # process (and everything it spawns) joins the same tree.
            prev = tracer.current
            tracer.current = request.trace
            try:
                tracer.instant(
                    "rpc.recv",
                    self.host.sim.now,
                    node=self.host.name,
                    method=request.method,
                )
                self.host.spawn(
                    self._serve(handler, request), name=f"rpc.{request.method}"
                )
            finally:
                tracer.current = prev
        else:
            self.host.spawn(self._serve(handler, request), name=f"rpc.{request.method}")

    def _serve(self, handler: Callable[[Any], Any], request: _Request):
        try:
            # recv and send CPU are charged together: one queueing decision
            # per request instead of two (identical mean service time).
            yield self.host.execute(self.recv_cpu_us + self.send_cpu_us)
            result = handler(request.payload)
            if inspect.isgenerator(result):
                result = yield from result  # drive the handler inline
        except Exception as exc:  # modelled failure inside the handler
            request.fail(exc)
            return
        tracer = obs_state.TRACER
        if (
            tracer is not None
            and request.trace is not None
            and request.trace.tracer is tracer
        ):
            # Milestone: the handler is done and the reply leaves the
            # server; closes the "apply" stage in critical-path analysis.
            tracer.instant(
                "rpc.reply",
                self.host.sim.now,
                node=self.host.name,
                method=request.method,
            )
        if isinstance(result, Reply):
            request.respond(result.value, result.size_bytes)
        else:
            request.respond(result, 64)


class RpcClient:
    """Client side: issues calls to an endpoint and awaits replies."""

    def __init__(
        self,
        host: Host,
        fabric: Fabric,
        latency: Optional[LatencyModel] = None,
        request_overhead_bytes: int = 64,
    ):
        self.host = host
        self.fabric = fabric
        self.latency = latency or DEFAULT_RPC_LATENCY
        self.request_overhead_bytes = request_overhead_bytes

    def call(
        self,
        endpoint: RpcEndpoint,
        method: str,
        payload: Any = None,
        payload_bytes: int = 0,
        timeout_us: Optional[float] = None,
        **deprecated,
    ) -> Event:
        """Invoke *method* on *endpoint*; the event carries the reply value.

        Fails with :class:`Unreachable` when the server cannot be reached at
        send time, with :class:`RpcTimeout` when no reply arrives within
        *timeout_us*, or with the handler's own exception.
        """
        if deprecated:
            timeout_us = resolve_us_kwargs(
                "RpcClient.call",
                deprecated,
                {"timeout": "timeout_us"},
                {"timeout_us": timeout_us},
            )["timeout_us"]
        done = Event(self.host.sim)
        server = endpoint.host
        sim = self.host.sim
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.counter("rpc.calls", method=method).inc()
            obs_state.REGISTRY.counter("rpc.bytes", dir="tx").inc(
                self.request_overhead_bytes + payload_bytes
            )
        trace = None
        if obs_state.TRACER is not None:
            trace = obs_state.TRACER.span(
                f"rpc.{method}",
                sim.now,
                src=self.host.name,
                dst=server.name,
                bytes=self.request_overhead_bytes + payload_bytes,
            )

            def _finish(event: Event, _span=trace) -> None:
                _span.annotate(ok=event.ok)
                _span.finish(sim.now)

            done.add_callback(_finish)

        def respond(value: Any, size_bytes: int) -> None:
            self.fabric.deliver(
                server,
                self.host,
                size_bytes,
                lambda: done.try_trigger(value),
                latency=self.latency,
                stream="rpc",
            )

        def fail(exc: BaseException) -> None:
            self.fabric.deliver(
                server,
                self.host,
                64,
                lambda: done.try_fail(exc),
                latency=self.latency,
                stream="rpc",
            )

        request = _Request(method, payload, respond, fail, trace)
        sent = self.fabric.deliver(
            self.host,
            server,
            self.request_overhead_bytes + payload_bytes,
            lambda: endpoint._receive(request),
            latency=self.latency,
            stream="rpc",
        )
        if not sent:
            done.try_fail(Unreachable(f"rpc {self.host.name} -> {server.name}"))
            return done
        if timeout_us is not None:
            guard = sim.schedule(
                timeout_us,
                lambda: done.try_fail(RpcTimeout(f"{method} after {timeout_us}us")),
            )
            # Most calls complete well inside the timeout; cancelling the
            # guard keeps thousands of dead entries out of the heap.
            done.add_callback(lambda _ev: sim.cancel(guard))
        return done
