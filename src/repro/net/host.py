"""Hosts: machines with CPU, liveness, and crash/restart injection.

A host owns a :class:`~repro.sim.cpu.CpuPool` and tracks every process
spawned on it so that :meth:`Host.crash` can kill them all, mirroring a
fail-stop machine failure.  Components attach themselves to the host
(RDMA NIC, RPC endpoint, memory regions) and consult :attr:`Host.alive`
and :attr:`Host.incarnation` to drop operations that straddle a crash.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.net.errors import HostDown
from repro.sim.cpu import CpuPool
from repro.sim.engine import Event, Process, ProcessGenerator, Simulator

__all__ = ["Host"]


class Host:
    """A simulated machine."""

    def __init__(self, sim: Simulator, name: str, cores: int = 1):
        self.sim = sim
        self.name = name
        self.cpu = CpuPool(sim, cores, name=f"{name}.cpu")
        self.alive = True
        self.incarnation = 0
        self._processes: List[Process] = []
        self._prune_at = 16
        # Open attachment point for substrate components (NIC, endpoints).
        self.services: Dict[str, Any] = {}

    # -- processes -----------------------------------------------------------

    def spawn(self, gen: ProcessGenerator, name: str = "") -> Process:
        """Start a process bound to this host's lifetime."""
        if not self.alive:
            raise HostDown(f"{self.name} is down")
        process = self.sim.spawn(gen, name=f"{self.name}:{name or 'proc'}")
        self._processes.append(process)
        # Amortised cleanup: prune finished processes only when the list
        # has doubled, keeping spawn O(1) on the RPC fast path.
        if len(self._processes) >= self._prune_at:
            self._processes = [p for p in self._processes if p.alive]
            self._prune_at = max(16, 2 * len(self._processes))
        return process

    def execute(self, cost_us: float) -> Event:
        """Charge CPU time on this host (fails immediately if host is down)."""
        if not self.alive:
            failed = Event(self.sim)
            failed.fail(HostDown(f"{self.name} is down"))
            return failed
        return self.cpu.execute(cost_us)

    # -- fault injection -------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop the machine: kill all processes, drop queued work."""
        if not self.alive:
            return
        self.alive = False
        self.cpu.drain()
        processes, self._processes = self._processes, []
        for process in processes:
            process.kill(f"{self.name} crashed")
        for service in self.services.values():
            on_crash = getattr(service, "on_host_crash", None)
            if on_crash is not None:
                on_crash()

    def restart(self) -> None:
        """Bring the machine back with a new incarnation (empty soft state)."""
        if self.alive:
            return
        self.alive = True
        self.incarnation += 1
        for service in self.services.values():
            on_restart = getattr(service, "on_host_restart", None)
            if on_restart is not None:
                on_restart()

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<Host {self.name} {state} cores={self.cpu.cores}>"
