"""Simulated network substrate.

This package provides the pieces every distributed component sits on:

* :class:`~repro.net.host.Host` — a machine with a multi-core CPU pool,
  liveness state, and crash/restart injection.
* :class:`~repro.net.fabric.Fabric` — the network connecting hosts, with
  per-message latency sampling and partition support.
* :class:`~repro.net.latency.LatencyModel` and friends — calibrated
  latency profiles for the RPC path and the RDMA path.
* :mod:`~repro.net.rpc` — the select-style RPC channel used between
  clients and the coordinator (the paper attributes roughly 50 µs of
  request latency to this layer; see §6.3.3).
"""

from repro.net.errors import HostDown, NetworkError, RpcTimeout, Unreachable
from repro.net.fabric import Fabric
from repro.net.host import Host
from repro.net.latency import FixedLatency, LatencyModel, LinearLatency
from repro.net.partition import PartitionController
from repro.net.rpc import RpcClient, RpcEndpoint

__all__ = [
    "Fabric",
    "FixedLatency",
    "Host",
    "HostDown",
    "LatencyModel",
    "LinearLatency",
    "NetworkError",
    "PartitionController",
    "RpcClient",
    "RpcEndpoint",
    "RpcTimeout",
    "Unreachable",
]
