"""Calibration constants and scale knobs.

Absolute numbers from a simulator are not the paper's cluster numbers;
what the harness targets is the *relative* behaviour (§6).  All knobs
that trade experiment fidelity against wall-clock time live here, and
every one can be overridden through environment variables so CI can run
quick sanity passes while a full run regenerates publication-scale data:

``REPRO_BENCH_KEYS``
    Key-space size (paper: 1,000,000; default here: 32,768 — the Zipf
    0.99 skew makes the hot set far smaller than either).
``REPRO_BENCH_MEASURE_MS`` / ``REPRO_BENCH_WARMUP_MS``
    Measurement and warm-up phases per data point (paper: 50 s / 10 s;
    defaults: 100 ms / 50 ms of simulated time, which at several hundred
    thousand ops/sec still aggregates tens of thousands of samples).
``REPRO_BENCH_CLIENTS``
    Closed-loop clients at saturation (peak-throughput points).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.sim.units import MS

__all__ = ["BenchScale", "DEFAULT_SCALE", "SMOKE_SCALE"]


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


def _env_float(name: str, default: float) -> float:
    value = os.environ.get(name)
    return float(value) if value else default


@dataclass(frozen=True)
class BenchScale:
    """Scale of one experiment run."""

    keys: int = field(default_factory=lambda: _env_int("REPRO_BENCH_KEYS", 32_768))
    warmup_us: float = field(
        default_factory=lambda: _env_float("REPRO_BENCH_WARMUP_MS", 50.0) * MS
    )
    measure_us: float = field(
        default_factory=lambda: _env_float("REPRO_BENCH_MEASURE_MS", 100.0) * MS
    )
    clients: int = field(default_factory=lambda: _env_int("REPRO_BENCH_CLIENTS", 48))
    value_bytes: int = 992
    zipf_theta: float = 0.99
    wal_entries: int = 8_192
    kv_wal_entries: int = 16_384

    @property
    def low_load_clients(self) -> int:
        """§6.3.3: "at most one request in the system at a time"."""
        return 1


DEFAULT_SCALE = BenchScale()

#: Pinned scale for the CI ``bench-smoke`` job and the committed
#: baselines under ``benchmarks/baselines/``.  Every field is written
#: out explicitly — no environment lookups — so the artifacts it
#: produces are byte-identical on any host running the same code.
SMOKE_SCALE = BenchScale(
    keys=4_096,
    warmup_us=20 * MS,
    measure_us=40 * MS,
    clients=12,
    value_bytes=992,
    zipf_theta=0.99,
    wal_entries=8_192,
    kv_wal_entries=16_384,
)

# ---------------------------------------------------------------------------
# The paper's normalized-performance targets (§6.4.1, Table 2), expressed as
# core counts.  The simulator's CPU cost constants (CpuCosts, KvConfig,
# RaftCosts) were tuned so the saturation curves of Figure 7 put each
# system's knee near its Table 2 provisioning.
# ---------------------------------------------------------------------------

TABLE2_CORES = {
    "raft": 8,
    "sift": 10,
    "sift-ec": 12,
}

TABLE2_MEMORY_GB = {
    # (cpu/leader node GB, memory node GB) per Table 2
    ("raft", 1): (64, None),
    ("sift", 1): (32, 64),
    ("sift-ec", 1): (32, 32),
    ("raft", 2): (64, None),
    ("sift", 2): (32, 64),
    ("sift-ec", 2): (32, 22),
}
