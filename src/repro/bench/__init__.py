"""Benchmark harness.

One module per concern:

* :mod:`~repro.bench.calibration` — the scale knobs and the calibrated
  per-system configurations used by every experiment.
* :mod:`~repro.bench.systems` — system-under-test factories with a
  uniform build / wait-ready / preload interface.
* :mod:`~repro.bench.runner` — throughput, latency, and timeline
  experiment drivers.
* :mod:`~repro.bench.metrics` — completion recording, percentiles,
  100 ms throughput windows.
* :mod:`~repro.bench.report` — paper-style table and series rendering.

The ``benchmarks/`` directory contains one pytest-benchmark module per
table/figure, each of which drives these pieces and prints the rows the
paper reports.
"""

from repro.bench.calibration import BenchScale
from repro.bench.metrics import Metrics, percentile
from repro.bench.runner import LatencyResult, ThroughputResult, run_latency, run_throughput, run_timeline
from repro.bench.systems import SystemSpec, epaxos_spec, raft_spec, sift_spec

__all__ = [
    "BenchScale",
    "LatencyResult",
    "Metrics",
    "SystemSpec",
    "ThroughputResult",
    "epaxos_spec",
    "percentile",
    "raft_spec",
    "run_latency",
    "run_throughput",
    "run_timeline",
    "sift_spec",
]
