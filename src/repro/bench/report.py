"""Paper-style rendering of experiment results.

Figures become text: bar groups as aligned tables, lines as
(x, y) series.  Every benchmark prints through these helpers so the
regenerated "figure" is diffable against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["bar_table", "series_table", "kv_table", "sparkline"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def bar_table(
    title: str,
    columns: Sequence[str],
    rows: Dict[str, Sequence[float]],
    unit: str = "ops/s",
) -> str:
    """Grouped-bar figure as a table: one row per system, one column per group."""
    width = max([len(name) for name in rows] + [8])
    col_width = max([len(c) for c in columns] + [12])
    lines = [title, "=" * len(title)]
    header = " " * width + "  " + "  ".join(c.rjust(col_width) for c in columns)
    lines.append(header)
    for name, values in rows.items():
        cells = "  ".join(f"{v:,.0f}".rjust(col_width) for v in values)
        lines.append(f"{name.ljust(width)}  {cells}")
    lines.append(f"(unit: {unit})")
    return "\n".join(lines)


def series_table(
    title: str,
    x_label: str,
    y_label: str,
    series: Dict[str, Iterable[Tuple[float, float]]],
) -> str:
    """Line figure as labelled (x, y) rows per series."""
    lines = [title, "=" * len(title), f"{x_label} -> {y_label}"]
    for name, points in series.items():
        lines.append(f"[{name}]")
        for x, y in points:
            lines.append(f"  {x:>12,.4g}  {y:>14,.2f}")
    return "\n".join(lines)


def kv_table(title: str, rows: List[Tuple[str, str]]) -> str:
    """Simple two-column table."""
    width = max(len(k) for k, _v in rows)
    lines = [title, "=" * len(title)]
    for key, value in rows:
        lines.append(f"{key.ljust(width)}  {value}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A unicode sparkline (used for throughput timelines)."""
    if not values:
        return ""
    top = max(values) or 1.0
    return "".join(_BLOCKS[min(8, int(9 * v / top))] if v > 0 else _BLOCKS[0] for v in values)
