"""Measurement: throughput windows and latency distributions.

The evaluation reports mean throughput over a measurement phase,
latency medians / 95th percentiles (Fig. 6), and 100 ms-window
throughput timelines for the failure experiments (Figs. 11-12, §6.5).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.sim.units import MS

__all__ = ["Metrics", "percentile"]


def percentile(samples: List[float], p: float, default: float = 0.0) -> float:
    """The *p*-th percentile (0..100) by linear interpolation.

    An empty sample list returns *default* (0.0) instead of raising: a
    100 ms timeline window that completes zero operations mid-failover
    (Figs. 11-12 under aggressive chaos schedules) is a legitimate
    observation, not an error.
    """
    if not samples:
        return default
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


class Metrics:
    """Collects per-operation completions during a measurement window."""

    def __init__(
        self,
        window_us: float = 100 * MS,  # §6.5: "measure in 100ms intervals"
        reservoir: int = 200_000,
        seed: int = 7,
    ):
        self.window_us = window_us
        self.reservoir = reservoir
        self._rng = random.Random(seed)
        self.measuring = False
        self.measure_start = 0.0
        self.measure_end: Optional[float] = None
        self.completed = 0
        self.errors = 0
        self.windows: Dict[int, int] = {}
        self.latencies: Dict[str, List[float]] = {}
        self._seen: Dict[str, int] = {}

    # -- collection -----------------------------------------------------------

    def begin(self, now: float) -> None:
        """Start measuring (end of warm-up)."""
        self.measuring = True
        self.measure_start = now

    def end(self, now: float) -> None:
        """Stop measuring."""
        self.measuring = False
        self.measure_end = now

    def record(self, op: str, start_us: float, end_us: float) -> None:
        """Record one completed operation."""
        self.windows[int(end_us // self.window_us)] = (
            self.windows.get(int(end_us // self.window_us), 0) + 1
        )
        if not self.measuring:
            return
        self.completed += 1
        latency = end_us - start_us
        bucket = self.latencies.setdefault(op, [])
        seen = self._seen.get(op, 0) + 1
        self._seen[op] = seen
        if len(bucket) < self.reservoir:
            bucket.append(latency)
        else:  # reservoir sampling keeps the distribution unbiased
            slot = self._rng.randrange(seen)
            if slot < self.reservoir:
                bucket[slot] = latency

    def record_error(self) -> None:
        """Count a failed operation."""
        if self.measuring:
            self.errors += 1

    # -- reporting -----------------------------------------------------------

    def throughput(self) -> float:
        """Mean ops/sec over the measurement phase."""
        if self.measure_end is None:
            raise RuntimeError("measurement not ended")
        elapsed_s = (self.measure_end - self.measure_start) / 1e6
        return self.completed / elapsed_s if elapsed_s > 0 else 0.0

    def latency(self, op: str, p: float) -> float:
        """Latency percentile in microseconds for one op type.

        0.0 when no operation of this type completed while measuring.
        """
        return percentile(self.latencies.get(op, []), p)

    def publish(self, registry, prefix: str = "bench") -> None:
        """Push this collector's results into a metrics registry.

        Gauges only — the collector is the source of truth; the registry
        snapshot is what lands in the ``BENCH_*.json`` artifact.
        """
        registry.gauge(f"{prefix}.completed").set(self.completed)
        registry.gauge(f"{prefix}.errors").set(self.errors)
        if self.measure_end is not None:
            registry.gauge(f"{prefix}.throughput_ops").set(self.throughput())
        for op in sorted(self.latencies):
            samples = self.latencies[op]
            registry.gauge(f"{prefix}.latency_us", op=op, p="50").set(
                percentile(samples, 50)
            )
            registry.gauge(f"{prefix}.latency_us", op=op, p="95").set(
                percentile(samples, 95)
            )

    def timeline(self, start_us: float, end_us: float) -> List[Tuple[float, float]]:
        """(window start seconds, ops/sec) series for Figs. 11-12."""
        first = int(start_us // self.window_us)
        last = int(end_us // self.window_us)
        scale = 1e6 / self.window_us
        return [
            (w * self.window_us / 1e6, self.windows.get(w, 0) * scale)
            for w in range(first, last + 1)
        ]
