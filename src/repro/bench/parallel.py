"""Parallel execution of independent figure points.

A figure is a set of *points* — independent (system, workload, load)
experiments that share no simulator state.  Each point runs under its
own fresh :class:`~repro.obs.registry.MetricsRegistry`, in-process when
``jobs == 1`` or fanned out across worker processes otherwise, and the
per-point registry dumps are merged back into the ambient registry **in
declared point order** — the order the old serial loops published in.
Because isolation and merge order are identical on both paths, the
``BENCH_*.json`` artifact a figure writes is byte-identical at any job
count.

Point functions must be top-level callables with picklable keyword
arguments (see :mod:`repro.bench.points`) so they survive the trip to a
worker process.
"""

from __future__ import annotations

import gc
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.obs import state as obs_state
from repro.obs.registry import MetricsRegistry, collecting, current_registry

__all__ = ["Point", "run_points"]


def _quiet_collect() -> None:
    """Drain cyclic garbage with instrumentation muted.

    Finalising a dead simulator's process graph executes old engine
    teardown code, which would charge ``cpu.core_us`` counters and
    ``proc.crash`` spans into whatever registry/tracer happens to be
    installed.  Those charges belong to no experiment, so the drain
    runs with observability off.
    """
    previous_registry = obs_state.REGISTRY
    previous_tracer = obs_state.TRACER
    obs_state.REGISTRY = None
    obs_state.TRACER = None
    try:
        gc.collect()
    finally:
        obs_state.REGISTRY = previous_registry
        obs_state.TRACER = previous_tracer


class Point(NamedTuple):
    """One independent experiment of a figure.

    *key* is unique within the figure and fixes the merge position;
    *fn* is a top-level picklable callable invoked as ``fn(**kwargs)``.
    """

    key: str
    fn: Callable[..., Any]
    kwargs: Dict[str, Any]


def _execute_point(point: Point) -> Tuple[Any, Dict[str, Any]]:
    """Run one point under a private registry; return (value, dump).

    Automatic GC is paused for the point's duration: collecting a
    *previous* point's dead process graph mid-run executes old engine
    teardown code, which charges instrumented costs (``cpu.core_us``,
    ``proc.crash`` spans) into the *current* point's registry/tracer at
    GC-timing-dependent moments — making results depend on how many
    points this process ran before.  Garbage is drained (muted) at both
    point boundaries instead, so every point's dump is a function of
    its own arguments only and serial and ``--jobs N`` runs merge to
    identical bytes.
    """
    _quiet_collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        registry = MetricsRegistry()
        with collecting(registry):
            value = point.fn(**point.kwargs)
        dump = registry.dump()
    finally:
        if gc_was_enabled:
            gc.enable()
    _quiet_collect()
    return value, dump


def run_points(
    points: Sequence[Point],
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Execute every point and return ``{key: value}``.

    With ``jobs > 1`` points run across worker processes; completion
    order is nondeterministic but irrelevant — registry dumps are merged
    into the ambient registry strictly in declared order, after all
    points finish.  *progress*, if given, is called with each point's
    key as it completes (parallel runs report in completion order).
    """
    keys: List[str] = [point.key for point in points]
    if len(set(keys)) != len(keys):
        raise ValueError(f"duplicate point keys: {keys}")
    outcomes: Dict[str, Tuple[Any, Dict[str, Any]]] = {}
    if jobs <= 1 or len(points) <= 1:
        for point in points:
            outcomes[point.key] = _execute_point(point)
            if progress is not None:
                progress(point.key)
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(points))) as pool:
            futures = {pool.submit(_execute_point, p): p.key for p in points}
            for future in as_completed(futures):
                key = futures[future]
                outcomes[key] = future.result()
                if progress is not None:
                    progress(key)
    registry = current_registry()
    merged: Dict[str, Any] = {}
    for point in points:
        value, dump = outcomes[point.key]
        if registry is not None:
            registry.merge_dump(dump)
        merged[point.key] = value
    return merged
