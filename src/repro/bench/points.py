"""Top-level point functions for the parallelisable figures.

Each function here runs one independent experiment — one (system,
workload) throughput cell, one (system, load) latency cell, one
fault-injection timeline — and returns a plain JSON-shaped fragment.
They are module-level and take only picklable keyword arguments so
:mod:`repro.bench.parallel` can ship them to worker processes; the
``figN_points`` builders declare each figure's full point list in the
exact order the old serial loops ran, which is also the registry merge
order and therefore part of the artifact contract.
"""

from __future__ import annotations

from typing import List

from repro.api import system_spec
from repro.bench.calibration import BenchScale
from repro.bench.parallel import Point
from repro.bench.runner import (
    run_latency,
    run_openloop,
    run_throughput,
    run_timeline,
)
from repro.bench.systems import sift_spec
from repro.chaos import FaultSchedule
from repro.obs.critpath import critical_path_section
from repro.obs.trace import Tracer
from repro.sim.units import MS, SEC
from repro.workloads import WORKLOADS

__all__ = [
    "build_spec",
    "FIG5_SYSTEMS",
    "FIG6_SYSTEMS",
    "FIG5ABLATE_GRID",
    "TRACE_EXPORT_CELL",
    "TRACE_SPAN_CAP",
    "ablate_point",
    "critpath_point",
    "fig5_points",
    "fig5ablate_points",
    "fig6_points",
    "fig6path_points",
    "fig8live_params",
    "fig8live_points",
    "figHotspot_params",
    "figHotspot_points",
    "figMclients_params",
    "figMclients_points",
    "hotspot_point",
    "openloop_point",
    "fig11_points",
    "fig11_timings",
    "fig11sweep_points",
    "throughput_point",
    "latency_point",
    "live_pool_point",
    "memnode_failure_point",
    "recovery_sweep_point",
    "RECOVERY_SWEEP_PARTITIONS",
]

#: Fig. 5 system order (slowest first, matching the paper's bar groups).
FIG5_SYSTEMS = ("epaxos", "sift-ec", "sift", "raft-r")

#: Fig. 6 system order.
FIG6_SYSTEMS = ("raft-r", "sift", "sift-ec", "epaxos")


def build_spec(name: str, scale: BenchScale, cores=None, **options):
    """System spec by CLI name, via the :mod:`repro.api` dispatch."""
    try:
        return system_spec(name, scale=scale, cores=cores, **options)
    except ValueError as exc:
        raise SystemExit(str(exc))


# -- point functions (top-level, picklable) ---------------------------------


def throughput_point(
    system: str, workload: str, clients: int, cores: int, scale: BenchScale, seed: int
) -> dict:
    """One Figure 5 cell: peak throughput of (system, workload)."""
    spec = build_spec(system, scale, cores=cores)
    result = run_throughput(
        spec, WORKLOADS[workload], n_clients=clients, scale=scale, seed=seed
    )
    return {
        "ops_per_sec": result.ops_per_sec,
        "completed": result.completed,
        "errors": result.errors,
    }


def latency_point(
    system: str, workload: str, clients: int, cores: int, scale: BenchScale, seed: int
) -> dict:
    """One Figure 6 cell: latency percentiles at a fixed client count."""
    spec = build_spec(system, scale, cores=cores)
    r = run_latency(spec, WORKLOADS[workload], clients, scale=scale, seed=seed)
    return {
        "clients": clients,
        "read_p50": r.read_p50,
        "read_p95": r.read_p95,
        "write_p50": r.write_p50,
        "write_p95": r.write_p95,
        "ops_per_sec": r.ops_per_sec,
    }


#: The one fig6path cell whose raw spans ride along for the committed
#: Perfetto export (the paper's own system at its low-load point).
TRACE_EXPORT_CELL = "sift/low"

#: Spans kept for the export, in recording order.  A traced smoke
#: window records tens of thousands of spans; the first N already cover
#: many complete operations and keep the committed trace reviewable.
TRACE_SPAN_CAP = 2000


def critpath_point(
    system: str,
    workload: str,
    clients: int,
    cores: int,
    scale: BenchScale,
    seed: int,
    sample_ops: int = 8,
    export_spans: int = 0,
) -> dict:
    """One fig6path cell: the fig6 latency run, traced, with its
    critical-path attribution digest.

    The tracer only covers the measurement window (see
    :func:`repro.bench.runner._drive`), draws no randomness and never
    schedules, so ``ops_per_sec`` matches the untraced fig6 cell and
    the digest is deterministic in *seed*.  With ``export_spans > 0``
    the first that-many raw span dicts ride along for the Perfetto
    export.
    """
    spec = build_spec(system, scale, cores=cores)
    tracer = Tracer()
    r = run_latency(
        spec, WORKLOADS[workload], clients, scale=scale, seed=seed, tracer=tracer
    )
    out = {
        "clients": clients,
        "ops_per_sec": r.ops_per_sec,
        "spans_recorded": len(tracer.spans),
        "critical_path": critical_path_section(tracer, sample_ops=sample_ops),
    }
    if export_spans:
        out["spans"] = [s.to_dict() for s in tracer.spans[:export_spans]]
    return out


def fig6path_points(
    scale: BenchScale, seed: int, high_load_clients: int
) -> List[Point]:
    """The fig6 grid, traced: system-major, low load then high load."""
    points = []
    for system in FIG6_SYSTEMS:
        for load, clients in (("low", 1), ("high", high_load_clients)):
            key = f"{system}/{load}"
            points.append(
                Point(
                    key=key,
                    fn=critpath_point,
                    kwargs={
                        "system": system,
                        "workload": "mixed",
                        "clients": clients,
                        "cores": 12,
                        "scale": scale,
                        "seed": seed,
                        "export_spans": (
                            TRACE_SPAN_CAP if key == TRACE_EXPORT_CELL else 0
                        ),
                    },
                )
            )
    return points


#: The fig5ablate grid, in declared (= merge) order: both batching
#: layers off, each alone, then the full stack.
FIG5ABLATE_GRID = (
    ("plain", False, False),
    ("doorbell", False, True),
    ("coalesce", True, False),
    ("coalesce+doorbell", True, True),
)


def ablate_point(
    coalesce: bool,
    doorbell: bool,
    workload: str,
    clients: int,
    scale: BenchScale,
    seed: int,
) -> dict:
    """One fig5ablate cell: write-only sift throughput with the WAL
    append-coalescing and doorbell-batching layers toggled
    independently (perfbench's ``coalesced_fig5`` scenario, promoted to
    a committed 2x2 grid)."""
    spec = sift_spec(
        cores=12,
        scale=scale,
        kv_overrides={"coalesce_appends": True} if coalesce else None,
        sift_overrides={"doorbell_batching": True} if doorbell else None,
    )
    result = run_throughput(
        spec, WORKLOADS[workload], n_clients=clients, scale=scale, seed=seed
    )
    return {
        "coalesce_appends": coalesce,
        "doorbell_batching": doorbell,
        "ops_per_sec": result.ops_per_sec,
        "completed": result.completed,
        "errors": result.errors,
    }


def fig5ablate_points(scale: BenchScale, seed: int) -> List[Point]:
    """The 2x2 batching-ablation grid (write-only, 24 clients, as in
    perfbench's coalesced_fig5)."""
    points = []
    for key, coalesce, doorbell in FIG5ABLATE_GRID:
        points.append(
            Point(
                key=f"sift/{key}",
                fn=ablate_point,
                kwargs={
                    "coalesce": coalesce,
                    "doorbell": doorbell,
                    "workload": "write-only",
                    "clients": 24,
                    "scale": scale,
                    "seed": seed,
                },
            )
        )
    return points


def fig11_timings(smoke: bool):
    """(kill_at, restart_at, duration, clients) for the Fig. 11 schedule.

    Full-size timings match ``benchmarks/test_fig11_memnode_failure.py``;
    smoke compresses the schedule so CI sees the same three phases (dip,
    copy-back contention, recovery) in ~1.5 simulated seconds.
    """
    if smoke:
        return 0.3 * SEC, 0.45 * SEC, 1.5 * SEC, 6
    return 0.6 * SEC, 0.9 * SEC, 3.0 * SEC, 10


def _memnode_failure_run(
    smoke: bool,
    scale: BenchScale,
    seed: int,
    f: int = 1,
    recovery_partitions: int = 1,
    timings=None,
) -> dict:
    """One Figure-11-style timeline: kill memory node 2, restart it,
    watch the copy-back finish.

    Shared by the fig11 point (``f=1``, single-stream recovery — the
    schedule must stay byte-identical to the pre-partitioning runs) and
    the fig11sweep points (``f=2`` so four source links exist, sweeping
    ``recovery_partitions``).  *timings* overrides the fig11 schedule
    for tiny in-test runs.
    """
    kill_at, restart_at, duration, clients = timings or fig11_timings(smoke)
    spec = sift_spec(
        f=f, cores=12, scale=scale, recovery_partitions=recovery_partitions
    )
    recovered_at: List[float] = []
    copy_stats: List[dict] = []

    def watch_recovery(group):
        def watch():
            coordinator = group.serving_coordinator()
            while coordinator.repmem.states[2] != "live":
                yield group.fabric.sim.timeout(10 * MS)
            recovered_at.append(group.fabric.sim.now)
            manager = coordinator.recovery_manager
            if manager is not None and 2 in manager.copy_stats:
                copy_stats.append(dict(manager.copy_stats[2]))

        group.fabric.sim.spawn(watch(), name="watch-recovery")

    schedule = (
        FaultSchedule()
        .crash_memory_node(kill_at, 2)
        .restart_memory_node(restart_at, 2)
        .probe(restart_at, watch_recovery, "watch recovery")
    )
    result = run_timeline(
        spec,
        WORKLOADS["read-heavy"],
        clients,
        duration,
        events=schedule,
        scale=scale,
        seed=seed,
    )
    recovery_s = (
        (recovered_at[0] - result.base_us) / 1e6 if recovered_at else None
    )
    # The poll-based recovery_s above is quantised at the watcher's
    # 10 ms tick (and is part of the fig11 artifact contract); the copy
    # stats carry an exact completion stamp for the sweep to gate on.
    copy = copy_stats[0] if copy_stats else None
    precise_s = (
        (copy["finished_at_us"] - result.base_us) / 1e6
        if copy and copy.get("finished_at_us") is not None
        else None
    )
    return {
        "series": [[t, ops] for t, ops in result.series],
        "events": [[t, label] for t, label in result.events],
        "recovery_s": recovery_s,
        "recovery_precise_s": precise_s,
        "copy": copy,
    }


def memnode_failure_point(smoke: bool, scale: BenchScale, seed: int) -> dict:
    """The Figure 11 timeline: kill memory node 2, restart it, watch
    the copy-back finish.  One point — the timeline is a single run."""
    run = _memnode_failure_run(smoke, scale, seed)
    return {
        "series": run["series"],
        "events": run["events"],
        "recovery_s": run["recovery_s"],
    }


#: Partition counts swept by fig11sweep.  The sweep runs at Fm = 2
#: (five memory nodes, four live sources once one fails) so each
#: doubling genuinely doubles the source links feeding the rejoining
#: node — with fig11's Fm = 1 only two sources exist and the curve
#: would flatten at two partitions.
RECOVERY_SWEEP_PARTITIONS = (1, 2, 4)


def recovery_sweep_point(
    smoke: bool, scale: BenchScale, seed: int, partitions: int
) -> dict:
    """One fig11sweep cell: the fig11 timeline at Fm = 2 with
    ``recovery_partitions=partitions``, plus the copy-phase stats the
    partition count actually moves."""
    run = _memnode_failure_run(
        smoke, scale, seed, f=2, recovery_partitions=partitions
    )
    copy = run["copy"] or {}
    return {
        "partitions": partitions,
        "recovery_s": run["recovery_precise_s"],
        "recovery_poll_s": run["recovery_s"],
        "copy_us": copy.get("copy_us"),
        "copy_bytes": copy.get("bytes"),
        "sources": copy.get("sources"),
        "series": run["series"],
        "events": run["events"],
    }


def _live_pool_run(
    shards: int,
    backups: int,
    provisioning_delay_us: float,
    faults: int,
    fault_gap_us: float,
    scale: BenchScale,
    seed: int,
) -> dict:
    """One live-pool repetition: staggered coordinator crashes, measured
    promotion waits, and the :class:`PoolAccountant` replay of the same
    fault times.  Everything returned is deterministic in *seed*."""
    from repro.api import Cluster
    from repro.cluster.backups import PoolAccountant

    cluster = Cluster.build(
        "sharded",
        seed=seed,
        scale=scale,
        shards=shards,
        backups=backups,
        provisioning_delay_us=provisioning_delay_us,
        name=f"live{shards}-g",
    )
    service = cluster.inner
    sim = cluster.sim
    router = cluster.client()
    crash_times_us: List[float] = []

    def driver():
        yield from service.wait_until_serving(20 * SEC)
        for index in range(8):
            yield from router.put(b"live:%d" % index, b"v%d" % index)
        base = sim.now
        for fault in range(faults):
            due = base + (fault + 1) * fault_gap_us
            if due > sim.now:
                yield sim.timeout(due - sim.now)
            # Round-robin over shards; make sure the crash hits a live
            # coordinator so every scheduled fault charges the pool.
            target = service.groups[fault % shards]
            yield from target.wait_until_serving(
                faults * provisioning_delay_us + 20 * SEC
            )
            target.crash_coordinator()
            crash_times_us.append(sim.now)
        while service.pool.promotions < faults:
            yield sim.timeout(50 * MS)
        yield from service.wait_until_serving(
            faults * provisioning_delay_us + 20 * SEC
        )
        for index in range(8):
            value = yield from router.get(b"live:%d" % index)
            if value != b"v%d" % index:
                raise AssertionError(f"lost live:{index} across promotions")

    cluster.run(driver(), deadline_us=(faults + 2) * (provisioning_delay_us + 20 * SEC))
    service.stop()

    pool = service.pool
    model = PoolAccountant(backups, provision_s=provisioning_delay_us / 1e6)
    for crash_us in crash_times_us:
        model.fault(crash_us / 1e6)
    detections = [
        record.request_us - crash_us
        for record, crash_us in zip(pool.promotion_log, crash_times_us)
    ]
    return {
        "live_per_fault_us": pool.recovery_wait_us_per_fault(),
        "model_per_fault_us": model.per_fault_s() * 1e6,
        "live_waits": pool.waits,
        "model_waits": model.waits,
        "promotions": pool.promotions,
        "detection_mean_us": sum(detections) / len(detections) if detections else 0.0,
        "crash_times_us": crash_times_us,
        "promotion_waits_us": [record.wait_us for record in pool.promotion_log],
    }


def live_pool_point(
    shards: int,
    backups: int,
    provisioning_delay_us: float,
    faults: int,
    fault_gap_us: float,
    repetitions: int,
    scale: BenchScale,
    seed: int,
) -> dict:
    """One fig8live cell: the live shared pool vs the Figure 8 trace
    model at one shard count.

    The model replays the *live run's own* fault times through
    :class:`~repro.cluster.backups.PoolAccountant`, so the only gap
    between the two numbers is failure detection (watchdog heartbeat
    reads), which the live measurement excludes by charging waits from
    promotion request time.  ``agrees`` demands the means match within
    the seeded repetition band plus twice the mean detection latency.
    """
    reps = [
        _live_pool_run(
            shards, backups, provisioning_delay_us, faults, fault_gap_us,
            scale, seed + repetition,
        )
        for repetition in range(repetitions)
    ]
    live = [r["live_per_fault_us"] for r in reps]
    model = [r["model_per_fault_us"] for r in reps]
    live_mean = sum(live) / len(live)
    model_mean = sum(model) / len(model)
    band_us = max(live) - min(live)
    detection_us = max(r["detection_mean_us"] for r in reps)
    tolerance_us = band_us + 2.0 * detection_us
    return {
        "live_per_fault_us": live_mean,
        "model_per_fault_us": model_mean,
        "band_us": band_us,
        "tolerance_us": tolerance_us,
        "agrees": abs(live_mean - model_mean) <= tolerance_us,
        "repetitions": reps,
    }


def fig8live_params(smoke: bool) -> dict:
    """(backups, delay, faults-per-shard-count, gap, reps) for fig8live.

    The gap is deliberately shorter than the provisioning delay so the
    middle faults hit an exhausted pool and the *waiting* path — where
    the live pool and the trace model can actually disagree — is
    exercised, not just the idle-spare fast path.
    """
    if smoke:
        return dict(
            backups=1,
            provisioning_delay_us=1.5 * SEC,
            fault_gap_us=0.4 * SEC,
            repetitions=2,
            shard_counts=[2, 3],
        )
    return dict(
        backups=1,
        provisioning_delay_us=5 * SEC,
        fault_gap_us=1.25 * SEC,
        repetitions=3,
        shard_counts=[2, 4],
    )


def fig8live_points(
    scale: BenchScale, seed: int, smoke: bool, shard_counts=None
) -> List[Point]:
    """One point per shard count (the ``--shards`` sweep)."""
    params = fig8live_params(smoke)
    counts = list(shard_counts) if shard_counts else params["shard_counts"]
    points = []
    for shards in counts:
        points.append(
            Point(
                key=f"sharded/{shards}",
                fn=live_pool_point,
                kwargs={
                    "shards": shards,
                    "backups": params["backups"],
                    "provisioning_delay_us": params["provisioning_delay_us"],
                    "faults": shards + 1,
                    "fault_gap_us": params["fault_gap_us"],
                    "repetitions": params["repetitions"],
                    "scale": scale,
                    "seed": seed,
                },
            )
        )
    return points


def openloop_point(
    shards: int,
    workload: str,
    offered_ops_per_sec: float,
    n_clients: int,
    max_inflight: int,
    queue_limit: int,
    rate_ops_per_sec,
    window_us: float,
    scale: BenchScale,
    seed: int,
) -> dict:
    """One figMclients cell: open-loop arrivals at one offered rate.

    Runs the sharded spec under the vectorized
    :class:`~repro.workloads.openloop.OpenLoopEngine` — an
    *n_clients*-strong simulated population whose aggregate arrivals
    form a Poisson process at *offered_ops_per_sec* — and returns the
    offered-vs-achieved accounting plus the per-shard p50/p99/p99.9
    SLO summaries.
    """
    from repro.workloads.openloop import AdmissionControl

    spec = build_spec("sharded", scale, cores=12, shards=shards)
    result = run_openloop(
        spec,
        WORKLOADS[workload],
        offered_ops_per_sec=offered_ops_per_sec,
        n_clients=n_clients,
        scale=scale,
        seed=seed,
        window_us=window_us,
        admission=AdmissionControl(
            max_inflight=max_inflight,
            queue_limit=queue_limit,
            rate_ops_per_sec=rate_ops_per_sec,
        ),
    )
    return {
        "offered_ops_per_sec": result.offered_ops_per_sec,
        "achieved_ops_per_sec": result.achieved_ops_per_sec,
        "generated": result.generated,
        "admitted": result.admitted,
        "completed": result.completed,
        "errors": result.errors,
        "retries": result.retries,
        "shed": result.shed,
        "clients_active": result.clients_active,
        "clients_population": result.clients_population,
        "inflight_peaks": result.inflight_peaks,
        "slo": result.slo,
    }


def figMclients_params(smoke: bool) -> dict:
    """The figMclients sweep preset.

    ``base_ops_per_sec`` is the (empirically calibrated) saturation
    throughput of the sharded smoke spec under the default in-flight
    window; the swept multipliers take the service from comfortable
    underload through the knee into firm overload, where the
    token-bucket throttle (pinned at ``throttle_ratio`` x base) and the
    bounded per-shard queues both shed.  The population is what the
    north-star asks for: at least a million simulated clients.
    """
    if smoke:
        return dict(
            shards=2,
            workload="read-heavy",
            n_clients=1_000_000,
            base_ops_per_sec=600_000.0,
            levels=[["x0.25", 0.25], ["x0.75", 0.75], ["x1.0", 1.0], ["x1.5", 1.5]],
            max_inflight=16,
            queue_limit=512,
            throttle_ratio=1.2,
            window_us=1 * MS,
        )
    return dict(
        shards=2,
        workload="read-heavy",
        n_clients=2_000_000,
        base_ops_per_sec=600_000.0,
        levels=[["x0.25", 0.25], ["x0.75", 0.75], ["x1.0", 1.0], ["x1.5", 1.5]],
        max_inflight=16,
        queue_limit=512,
        throttle_ratio=1.2,
        window_us=1 * MS,
    )


def figMclients_points(scale: BenchScale, seed: int, smoke: bool) -> List[Point]:
    """One point per offered-load level, underload first."""
    params = figMclients_params(smoke)
    points = []
    for label, multiplier in params["levels"]:
        points.append(
            Point(
                key=f"sharded/{label}",
                fn=openloop_point,
                kwargs={
                    "shards": params["shards"],
                    "workload": params["workload"],
                    "offered_ops_per_sec": params["base_ops_per_sec"] * multiplier,
                    "n_clients": params["n_clients"],
                    "max_inflight": params["max_inflight"],
                    "queue_limit": params["queue_limit"],
                    "rate_ops_per_sec": (
                        params["base_ops_per_sec"] * params["throttle_ratio"]
                    ),
                    "window_us": params["window_us"],
                    "scale": scale,
                    "seed": seed,
                },
            )
        )
    return points


def hotspot_point(
    autoscale: bool,
    shards: int,
    workload: str,
    offered_ops_per_sec: float,
    n_clients: int,
    hot_span: int,
    max_inflight: int,
    queue_limit: int,
    window_us: float,
    warmup_us: float,
    before_us: float,
    settle_us: float,
    after_us: float,
    static_backups: int,
    provisioning_delay_us: float,
    fault_at_us,
    reconciler_interval_us: float,
    imbalance_factor: float,
    min_split_ops: int,
    forward_window_us: float,
    pool_max: int,
    scale: BenchScale,
    seed: int,
) -> dict:
    """One figHotspot cell: a mid-run hotspot shift, elastic or static.

    Both cells run the same seed, the same open-loop offered load, the
    same warmup fault burst (two coordinator crashes on the cold shard,
    closer together than the pool's provisioning delay), and the same
    :meth:`HotspotZipfSampler.retarget` onto shard 0 between the
    ``before`` and ``after`` measurement windows.  The only difference
    is the control plane: the *static* cell keeps a peak-provisioned
    pool (*static_backups*) and a fixed topology, while the *autoscale*
    cell starts with a one-spare pool and a :class:`Reconciler` that
    must resize it from the observed burst and split the hot shard out
    from under the live load.

    A closed-loop probe client records a linearizability history across
    the whole run (its keys migrate with everyone else's), and the
    epilogue reads back every acked probe write plus the hottest data
    keys — the zero-acked-write-loss gate.
    """
    from repro.bench.lincheck import History, Op, check_history
    from repro.bench.runner import _setup
    from repro.control import Reconciler, ReconcilerConfig
    from repro.kv.client import KvRequestFailed
    from repro.workloads.generator import HotspotZipfSampler
    from repro.workloads.openloop import AdmissionControl, OpenLoopEngine

    spec = build_spec(
        "sharded",
        scale,
        cores=12,
        shards=shards,
        backups=static_backups if not autoscale else 1,
        provisioning_delay_us=provisioning_delay_us,
    )
    sim, fabric, service = _setup(spec, scale, seed)
    sampler = HotspotZipfSampler(scale.keys, service.ring, scale.zipf_theta)
    engine = OpenLoopEngine(
        fabric,
        service,
        WORKLOADS[workload],
        sampler,
        offered_ops_per_sec=offered_ops_per_sec,
        n_clients=n_clients,
        window_us=window_us,
        admission=AdmissionControl(
            max_inflight=max_inflight, queue_limit=queue_limit
        ),
        value_bytes=scale.value_bytes,
        name="hotspot-auto" if autoscale else "hotspot-static",
        elastic=autoscale,
    )

    ready = sim.spawn(spec.wait_ready(service), name="wait-ready")
    sim.run_until_settled(ready, deadline=10 * SEC)
    if not ready.ok:
        raise RuntimeError(f"{spec.name} never became ready: {ready.exception}")
    value = b"v" * scale.value_bytes
    spec.preload(service, ((sampler.key(i), value) for i in range(scale.keys)))

    # Closed-loop probe client: serialized puts/gets over a small key
    # set, every outcome recorded for the Wing-Gong checker.  Failed
    # calls are recorded as never-responded (they may or may not have
    # taken effect), which the checker treats as optional.
    probe_host = fabric.add_host("hotspot-probe", cores=2)
    router = spec.client_factory(probe_host, fabric, service)
    history = History()
    acked: dict = {}
    probe_stats = {"ops": 0, "failures": 0, "running": True}
    PROBE_KEYS = [b"probe%02d" % i for i in range(16)]

    def probe_loop():
        count = 0
        while probe_stats["running"]:
            key = PROBE_KEYS[count % len(PROBE_KEYS)]
            read = count % 4 == 3
            payload = None if read else b"p%08d" % count
            invoked = sim.now
            try:
                if read:
                    result = yield from router.get(key)
                    history.record(Op(key, "get", result, invoked, sim.now))
                else:
                    yield from router.put(key, payload)
                    history.record(Op(key, "put", payload, invoked, sim.now))
                    acked[key] = payload
                probe_stats["ops"] += 1
            except KvRequestFailed:
                kind = "get" if read else "put"
                history.record(Op(key, kind, payload, invoked, None))
                probe_stats["failures"] += 1
            count += 1
            yield sim.timeout(2 * MS)

    engine.start()
    probe_host.spawn(probe_loop(), name="hotspot-probe")
    reconciler = None
    if autoscale:
        reconciler = Reconciler(
            fabric,
            service,
            ReconcilerConfig(
                interval_us=reconciler_interval_us,
                imbalance_factor=imbalance_factor,
                min_split_ops=min_split_ops,
                max_shards=shards + 2,
                pool_min=1,
                pool_max=pool_max,
                forward_window_us=forward_window_us,
            ),
        )
        reconciler.start()

    # Warmup carries the fault burst: back-to-back crashes of the
    # *cold* shard's coordinator, each landing as soon as the shard is
    # serving again, so the requests space by detection + recovery —
    # closer than the provisioning delay — and a one-spare pool
    # demonstrably queues where the Fig. 8 replay asks for more.  Both
    # cells take the same burst; crash-when-serving (rather than fixed
    # times) keeps the second crash from whiffing on a cell whose first
    # promotion is a few milliseconds slower.
    base = sim.now
    cold_shard = service.ring.shards[-1]

    def fault_burst():
        for at_us in sorted(fault_at_us):
            if sim.now < base + at_us:
                yield sim.timeout(base + at_us - sim.now)
            while service.coordinators().get(cold_shard) is None:
                yield sim.timeout(5 * MS)
            service.crash_coordinator(shard=cold_shard)

    probe_host.spawn(fault_burst(), name="hotspot-faults")
    sim.run(until=base + warmup_us)

    engine.begin_measurement(phase="before")
    sim.run(until=sim.now + before_us)
    engine.end_measurement()
    before_slo = engine.slo_summary()

    # The shift: re-aim the hot ranks at shard 0's keys.  No RNG is
    # consumed, so the arrival stream is byte-identical to the static
    # cell's; only where the mass lands changes.
    sampler.retarget(0, hot_span)
    shift_at_us = sim.now - base
    sim.run(until=sim.now + settle_us)

    engine.begin_measurement(phase="after")
    sim.run(until=sim.now + after_us)
    engine.end_measurement()
    after_slo = engine.slo_summary()
    engine.stop()
    if reconciler is not None:
        reconciler.stop()
    probe_stats["running"] = False
    sim.run(until=sim.now + 20 * MS)  # drain in-flight ops

    # Epilogue: zero-acked-write-loss.  Every acked probe write must
    # read back as its last acked value, and the hottest data keys must
    # still hold the preloaded/engine value after split + migration.
    readback = {"checked": 0, "lost": 0, "missing": 0}

    def readback_loop():
        for key, expect in sorted(acked.items()):
            result = yield from router.get(key)
            readback["checked"] += 1
            if result != expect:
                readback["lost"] += 1
        for index in range(min(64, scale.keys)):
            result = yield from router.get(sampler.key(index))
            if result != value:
                readback["missing"] += 1

    check = probe_host.spawn(readback_loop(), name="hotspot-readback")
    sim.run_until_settled(check, deadline=30 * SEC)
    if not check.ok:
        raise RuntimeError(f"figHotspot readback failed: {check.exception}")
    lincheck_ok, offending = check_history(history)

    def tail(slo: dict, label: str) -> float:
        worst = 0.0
        for ops in slo.values():
            for summary in ops.values():
                worst = max(worst, float(summary.get(label, 0.0)))
        return worst

    pool = service.pool
    out = {
        "autoscale": bool(autoscale),
        "offered_ops_per_sec": offered_ops_per_sec,
        "achieved_ops_per_sec": engine.achieved_ops_per_sec(),
        "completed": engine.counts["completed"],
        "errors": engine.counts["errors"],
        "shift_at_us": shift_at_us,
        "slo": {"before": before_slo, "after": after_slo},
        "tails": {
            phase: {label: tail(slo, label) for label in ("p99", "p99.9")}
            for phase, slo in (("before", before_slo), ("after", after_slo))
        },
        "pool": {
            "capacity": pool.capacity,
            "vm_seconds": pool.vm_seconds(),
            "promotions": len(pool.promotion_log),
            "max_wait_us": max(
                (p.wait_us for p in pool.promotion_log), default=0.0
            ),
        },
        "control": {
            "shards": len(service.ring.shards),
            "ring_version": service.ring.version,
            "splits": reconciler.splits if reconciler else 0,
            "merges": reconciler.merges if reconciler else 0,
            "pool_resizes": reconciler.pool_resizes if reconciler else 0,
        },
        "probe": {
            "ops": probe_stats["ops"],
            "failures": probe_stats["failures"],
            "lincheck_ok": bool(lincheck_ok),
            "offending_key": (
                offending.decode("ascii", "replace") if offending else None
            ),
            **readback,
        },
    }
    return out


def figHotspot_params(smoke: bool) -> dict:
    """The figHotspot scenario preset.

    The offered rate is chosen so one shard carrying the retargeted hot
    set (~85% of the mass) runs past its lane's closed-loop capacity
    while the balanced layout stays comfortably under it — the tail gap
    the reconciled cell must close by splitting.  The fault burst spaces
    two cold-shard coordinator crashes closer than the provisioning
    delay, so the Fig. 8 replay demands a second spare.
    """
    common = dict(
        shards=2,
        workload="mixed",
        hot_span=512,
        max_inflight=8,
        queue_limit=256,
        window_us=1 * MS,
        warmup_us=350 * MS,
        static_backups=3,
        provisioning_delay_us=150 * MS,
        fault_at_us=(5 * MS, 70 * MS),
        reconciler_interval_us=25 * MS,
        imbalance_factor=1.5,
        min_split_ops=512,
        forward_window_us=50 * MS,
        pool_max=4,
    )
    if smoke:
        return dict(
            common,
            offered_ops_per_sec=200_000.0,
            n_clients=200_000,
            before_us=50 * MS,
            settle_us=80 * MS,
            after_us=200 * MS,
        )
    return dict(
        common,
        offered_ops_per_sec=200_000.0,
        n_clients=1_000_000,
        before_us=100 * MS,
        settle_us=80 * MS,
        after_us=400 * MS,
    )


def figHotspot_points(scale: BenchScale, seed: int, smoke: bool) -> List[Point]:
    """Two cells, static first (the declared merge order)."""
    params = figHotspot_params(smoke)
    points = []
    for label, autoscale in (("static", False), ("autoscaled", True)):
        points.append(
            Point(
                key=f"sharded/{label}",
                fn=hotspot_point,
                kwargs=dict(params, autoscale=autoscale, scale=scale, seed=seed),
            )
        )
    return points


# -- figure point lists (declared order == serial order == merge order) -----


def fig5_points(scale: BenchScale, seed: int) -> List[Point]:
    """System-major, workload-minor — the old nested-loop order."""
    points = []
    for system in FIG5_SYSTEMS:
        clients = scale.clients * 3 if system == "epaxos" else scale.clients
        for mix in WORKLOADS:
            points.append(
                Point(
                    key=f"{system}/{mix}",
                    fn=throughput_point,
                    kwargs={
                        "system": system,
                        "workload": mix,
                        "clients": clients,
                        "cores": 12,
                        "scale": scale,
                        "seed": seed,
                    },
                )
            )
    return points


def fig6_points(scale: BenchScale, seed: int, high_load_clients: int) -> List[Point]:
    """System-major, low load then high load."""
    points = []
    for system in FIG6_SYSTEMS:
        for load, clients in (("low", 1), ("high", high_load_clients)):
            points.append(
                Point(
                    key=f"{system}/{load}",
                    fn=latency_point,
                    kwargs={
                        "system": system,
                        "workload": "mixed",
                        "clients": clients,
                        "cores": 12,
                        "scale": scale,
                        "seed": seed,
                    },
                )
            )
    return points


def fig11_points(scale: BenchScale, seed: int, smoke: bool) -> List[Point]:
    points = [
        Point(
            key="sift/memnode-failure",
            fn=memnode_failure_point,
            kwargs={"smoke": smoke, "scale": scale, "seed": seed},
        )
    ]
    return points


def fig11sweep_points(scale: BenchScale, seed: int, smoke: bool) -> List[Point]:
    """The recovery-time-vs-partitions sweep, plus the exact fig11 point.

    The ``sift/memnode-failure`` anchor re-runs fig11's timeline with
    the same seed and scale: its result must stay byte-identical to the
    fig11 artifact, pinning the partitions=1 path to the pre-sweep
    numbers (``tests/test_recovery_determinism.py`` compares the two
    committed baselines).
    """
    points = [
        Point(
            key="sift/memnode-failure",
            fn=memnode_failure_point,
            kwargs={"smoke": smoke, "scale": scale, "seed": seed},
        )
    ]
    for partitions in RECOVERY_SWEEP_PARTITIONS:
        points.append(
            Point(
                key=f"sift/recovery-f2-p{partitions}",
                fn=recovery_sweep_point,
                kwargs={
                    "smoke": smoke,
                    "scale": scale,
                    "seed": seed,
                    "partitions": partitions,
                },
            )
        )
    return points
