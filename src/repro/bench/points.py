"""Top-level point functions for the parallelisable figures.

Each function here runs one independent experiment — one (system,
workload) throughput cell, one (system, load) latency cell, one
fault-injection timeline — and returns a plain JSON-shaped fragment.
They are module-level and take only picklable keyword arguments so
:mod:`repro.bench.parallel` can ship them to worker processes; the
``figN_points`` builders declare each figure's full point list in the
exact order the old serial loops ran, which is also the registry merge
order and therefore part of the artifact contract.
"""

from __future__ import annotations

from typing import List

from repro.bench.calibration import BenchScale
from repro.bench.parallel import Point
from repro.bench.runner import run_latency, run_throughput, run_timeline
from repro.bench.systems import epaxos_spec, raft_spec, sift_spec
from repro.chaos import FaultSchedule
from repro.sim.units import MS, SEC
from repro.workloads import WORKLOADS

__all__ = [
    "build_spec",
    "FIG5_SYSTEMS",
    "FIG6_SYSTEMS",
    "fig5_points",
    "fig6_points",
    "fig11_points",
    "fig11_timings",
    "throughput_point",
    "latency_point",
    "memnode_failure_point",
]

#: Fig. 5 system order (slowest first, matching the paper's bar groups).
FIG5_SYSTEMS = ("epaxos", "sift-ec", "sift", "raft-r")

#: Fig. 6 system order.
FIG6_SYSTEMS = ("raft-r", "sift", "sift-ec", "epaxos")


def build_spec(name: str, scale: BenchScale, cores=None):
    """System spec by CLI name (sift / sift-ec / raft-r / epaxos)."""
    if name == "sift":
        return sift_spec(cores=cores, scale=scale)
    if name == "sift-ec":
        return sift_spec(erasure_coding=True, cores=cores, scale=scale)
    if name == "raft-r":
        return raft_spec(cores=cores or 8, scale=scale)
    if name == "epaxos":
        return epaxos_spec(cores=cores or 8, scale=scale)
    raise SystemExit(f"unknown system: {name}")


# -- point functions (top-level, picklable) ---------------------------------


def throughput_point(
    system: str, workload: str, clients: int, cores: int, scale: BenchScale, seed: int
) -> dict:
    """One Figure 5 cell: peak throughput of (system, workload)."""
    spec = build_spec(system, scale, cores=cores)
    result = run_throughput(
        spec, WORKLOADS[workload], n_clients=clients, scale=scale, seed=seed
    )
    return {
        "ops_per_sec": result.ops_per_sec,
        "completed": result.completed,
        "errors": result.errors,
    }


def latency_point(
    system: str, workload: str, clients: int, cores: int, scale: BenchScale, seed: int
) -> dict:
    """One Figure 6 cell: latency percentiles at a fixed client count."""
    spec = build_spec(system, scale, cores=cores)
    r = run_latency(spec, WORKLOADS[workload], clients, scale=scale, seed=seed)
    return {
        "clients": clients,
        "read_p50": r.read_p50,
        "read_p95": r.read_p95,
        "write_p50": r.write_p50,
        "write_p95": r.write_p95,
        "ops_per_sec": r.ops_per_sec,
    }


def fig11_timings(smoke: bool):
    """(kill_at, restart_at, duration, clients) for the Fig. 11 schedule.

    Full-size timings match ``benchmarks/test_fig11_memnode_failure.py``;
    smoke compresses the schedule so CI sees the same three phases (dip,
    copy-back contention, recovery) in ~1.5 simulated seconds.
    """
    if smoke:
        return 0.3 * SEC, 0.45 * SEC, 1.5 * SEC, 6
    return 0.6 * SEC, 0.9 * SEC, 3.0 * SEC, 10


def memnode_failure_point(smoke: bool, scale: BenchScale, seed: int) -> dict:
    """The Figure 11 timeline: kill memory node 2, restart it, watch
    the copy-back finish.  One point — the timeline is a single run."""
    kill_at, restart_at, duration, clients = fig11_timings(smoke)
    spec = sift_spec(cores=12, scale=scale)
    recovered_at: List[float] = []

    def watch_recovery(group):
        def watch():
            coordinator = group.serving_coordinator()
            while coordinator.repmem.states[2] != "live":
                yield group.fabric.sim.timeout(10 * MS)
            recovered_at.append(group.fabric.sim.now)

        group.fabric.sim.spawn(watch(), name="watch-recovery")

    schedule = (
        FaultSchedule()
        .crash_memory_node(kill_at, 2)
        .restart_memory_node(restart_at, 2)
        .probe(restart_at, watch_recovery, "watch recovery")
    )
    result = run_timeline(
        spec,
        WORKLOADS["read-heavy"],
        clients,
        duration,
        events=schedule,
        scale=scale,
        seed=seed,
    )
    recovery_s = (
        (recovered_at[0] - result.base_us) / 1e6 if recovered_at else None
    )
    return {
        "series": [[t, ops] for t, ops in result.series],
        "events": [[t, label] for t, label in result.events],
        "recovery_s": recovery_s,
    }


# -- figure point lists (declared order == serial order == merge order) -----


def fig5_points(scale: BenchScale, seed: int) -> List[Point]:
    """System-major, workload-minor — the old nested-loop order."""
    points = []
    for system in FIG5_SYSTEMS:
        clients = scale.clients * 3 if system == "epaxos" else scale.clients
        for mix in WORKLOADS:
            points.append(
                Point(
                    key=f"{system}/{mix}",
                    fn=throughput_point,
                    kwargs={
                        "system": system,
                        "workload": mix,
                        "clients": clients,
                        "cores": 12,
                        "scale": scale,
                        "seed": seed,
                    },
                )
            )
    return points


def fig6_points(scale: BenchScale, seed: int, high_load_clients: int) -> List[Point]:
    """System-major, low load then high load."""
    points = []
    for system in FIG6_SYSTEMS:
        for load, clients in (("low", 1), ("high", high_load_clients)):
            points.append(
                Point(
                    key=f"{system}/{load}",
                    fn=latency_point,
                    kwargs={
                        "system": system,
                        "workload": "mixed",
                        "clients": clients,
                        "cores": 12,
                        "scale": scale,
                        "seed": seed,
                    },
                )
            )
    return points


def fig11_points(scale: BenchScale, seed: int, smoke: bool) -> List[Point]:
    points = [
        Point(
            key="sift/memnode-failure",
            fn=memnode_failure_point,
            kwargs={"smoke": smoke, "scale": scale, "seed": seed},
        )
    ]
    return points
