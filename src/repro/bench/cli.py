"""Command-line experiment runner.

``python -m repro.bench.cli <experiment>`` regenerates one of the
paper's tables/figures (or an ablation) and prints it, without going
through pytest.  Scale is controlled by the same ``REPRO_BENCH_*``
environment variables the benchmarks use, or pinned with ``--smoke``.

Every figure command also writes a versioned ``BENCH_<figure>.json``
artifact (see :mod:`repro.obs.artifact`) into ``--out-dir``: the
simulated numbers, a metrics-registry snapshot collected during the
run, the seeds, the parameters, the git SHA and the wall clock.  CI's
``bench-smoke`` job regenerates every figure in ``BASELINE_FIGURES``
at ``--smoke`` scale and diffs them against ``benchmarks/baselines/``
with :mod:`repro.obs.compare` (plus a byte-diff of the exported
``TRACE_fig6path.json`` Perfetto trace).

Examples::

    python -m repro.bench.cli table1
    python -m repro.bench.cli fig9 fig10
    REPRO_BENCH_MEASURE_MS=300 python -m repro.bench.cli fig5
    python -m repro.bench.cli throughput --system sift-ec --workload mixed
    python -m repro.bench.cli fig5 fig6 fig11 --smoke --out-dir bench_artifacts
    python -m repro.bench.cli fig5 --jobs 4   # fan points across processes
    python -m repro.bench.cli --refresh-baselines

Figures made of independent points (fig5, fig6, fig11) accept
``--jobs N`` to fan the points across worker processes via
:mod:`repro.bench.parallel`; per-point metric registries are merged in
declared point order, so the artifact is byte-identical at any job
count.
"""

from __future__ import annotations

import os
import argparse
import sys
import time

from repro.baselines import characteristics_table
from repro.bench.calibration import SMOKE_SCALE, BenchScale
from repro.bench.parallel import run_points
from repro.bench.points import (
    FIG5_SYSTEMS,
    FIG6_SYSTEMS,
    FIG5ABLATE_GRID,
    TRACE_EXPORT_CELL,
    TRACE_SPAN_CAP,
    build_spec,
    fig5_points,
    fig5ablate_points,
    fig6_points,
    fig6path_points,
    fig8live_params,
    fig8live_points,
    figHotspot_params,
    figHotspot_points,
    figMclients_params,
    figMclients_points,
    fig11_points,
    fig11_timings,
    fig11sweep_points,
    RECOVERY_SWEEP_PARTITIONS,
)
from repro.bench.report import bar_table, kv_table, series_table, sparkline
from repro.bench.runner import run_throughput
from repro.cluster import relative_costs
from repro.cluster.backups import sweep_backup_pool
from repro.cluster.provision import TARGET_THROUGHPUT, machine_table
from repro.obs.artifact import write_artifact
from repro.obs.critpath import STAGES
from repro.obs.export import write_chrome_trace
from repro.obs.registry import MetricsRegistry, collecting
from repro.workloads import WORKLOADS

__all__ = ["main"]

#: Figures the ``bench-smoke`` CI job pins against committed baselines.
BASELINE_FIGURES = (
    "fig5",
    "fig5ablate",
    "fig6",
    "fig6path",
    "fig11",
    "fig11sweep",
    "figHotspot",
    "figMclients",
)


def _progress(key: str) -> None:
    print(f"  [{key}] done", file=sys.stderr)


def _scale_params(scale: BenchScale) -> dict:
    """The scale knobs, recorded verbatim into each artifact."""
    return {
        "keys": scale.keys,
        "warmup_us": scale.warmup_us,
        "measure_us": scale.measure_us,
        "clients": scale.clients,
        "value_bytes": scale.value_bytes,
        "zipf_theta": scale.zipf_theta,
        "wal_entries": scale.wal_entries,
        "kv_wal_entries": scale.kv_wal_entries,
    }


# Each cmd_* returns None (no artifact: static tables) or a dict
# ``{"simulated": ..., "params": ...}``; main() adds the registry
# snapshot, seed, wall clock and scale, then writes BENCH_<figure>.json.


def cmd_table1(_args, _scale):
    print(characteristics_table())
    return None


def cmd_table2(_args, _scale):
    rows = []
    for f in (1, 2):
        rows.append((f"-- F={f} (target {TARGET_THROUGHPUT[f]:,} ops/s) --", ""))
        for name, spec in machine_table(f):
            rows.append((name, f"{spec.cores} cores, {spec.memory_gb} GB"))
    print(kv_table("Table 2: normalized machine configurations", rows))
    return None


def cmd_fig5(args, scale):
    mixes = list(WORKLOADS)
    results = run_points(fig5_points(scale, args.seed), jobs=args.jobs,
                         progress=_progress)
    simulated = {
        name: {mix: results[f"{name}/{mix}"] for mix in mixes}
        for name in FIG5_SYSTEMS
    }
    rows = {
        name: [simulated[name][mix]["ops_per_sec"] for mix in mixes]
        for name in FIG5_SYSTEMS
    }
    print(bar_table("Figure 5: throughput by workload (F=1)", mixes, rows))
    return {
        "simulated": simulated,
        "params": {"cores": 12, "workloads": mixes},
    }


def cmd_fig6(args, scale):
    # ~90% of the default 48-client saturation point; scaled down with
    # the pinned smoke scale so the run stays a few hundred ms.
    high_load_clients = 8 if args.smoke else 28
    results = run_points(
        fig6_points(scale, args.seed, high_load_clients), jobs=args.jobs,
        progress=_progress,
    )
    simulated = {}
    rows = []
    for name in FIG6_SYSTEMS:
        per_load = {}
        for load in ("low", "high"):
            r = results[f"{name}/{load}"]
            per_load[load] = r
            rows.append(
                (
                    f"{name}/{load}",
                    [
                        (1, r["read_p50"] or 0.0),
                        (2, r["read_p95"] or 0.0),
                        (3, r["write_p50"] or 0.0),
                        (4, r["write_p95"] or 0.0),
                    ],
                )
            )
        simulated[name] = per_load
    print(
        series_table(
            "Figure 6: latency (us) at 1 client and ~90% load",
            "metric (1=read p50, 2=read p95, 3=write p50, 4=write p95)",
            "microseconds",
            dict(rows),
        )
    )
    return {
        "simulated": simulated,
        "params": {"cores": 12, "high_load_clients": high_load_clients},
    }


def cmd_fig6path(args, scale):
    """Fig. 6, traced: per-stage critical-path latency attribution.

    Re-runs every fig6 cell with a tracer over the measurement window
    and walks each committed operation's span tree into exclusive
    per-stage segments (:mod:`repro.obs.critpath`).  The sift/low
    cell's raw spans are also written as a Perfetto/Chrome trace
    (``TRACE_fig6path.json``) next to the artifact.
    """
    high_load_clients = 8 if args.smoke else 28
    results = run_points(
        fig6path_points(scale, args.seed, high_load_clients), jobs=args.jobs,
        progress=_progress,
    )
    simulated = {}
    trace_spans = None
    rows = []
    for name in FIG6_SYSTEMS:
        per_load = {}
        for load in ("low", "high"):
            cell = dict(results[f"{name}/{load}"])
            spans = cell.pop("spans", None)
            if spans is not None:
                trace_spans = spans
            per_load[load] = cell
            for op, digest in cell["critical_path"].items():
                agg = digest["aggregate"]
                shares = "  ".join(
                    f"{stage} {agg['stages'][stage]['share'] * 100.0:4.1f}%"
                    for stage in STAGES
                    if stage in agg["stages"]
                )
                rows.append(
                    (
                        f"{name}/{load} {op}",
                        f"mean {agg['duration_us']['mean']:8.1f}us "
                        f"({agg['count']} ops)  {shares}",
                    )
                )
        simulated[name] = per_load
    print(kv_table("Figure 6 (path): critical-path latency attribution", rows))
    if trace_spans and not args.no_artifact:
        os.makedirs(args.out_dir, exist_ok=True)
        path = write_chrome_trace(
            os.path.join(args.out_dir, "TRACE_fig6path.json"),
            trace_spans,
            process_name=f"repro {TRACE_EXPORT_CELL}",
        )
        print(f"  wrote {path} ({len(trace_spans)} spans)", file=sys.stderr)
    return {
        "simulated": simulated,
        "params": {
            "cores": 12,
            "high_load_clients": high_load_clients,
            "trace_cell": TRACE_EXPORT_CELL,
            "trace_span_cap": TRACE_SPAN_CAP,
        },
    }


def cmd_fig5ablate(args, scale):
    """The batching ablation: WAL coalescing x doorbell batching.

    Promotes perfbench's ``coalesced_fig5`` scenario to a committed
    2x2 grid artifact — the full stack must beat each single layer,
    which must beat the plain stack, on write-only throughput.
    """
    results = run_points(fig5ablate_points(scale, args.seed), jobs=args.jobs,
                         progress=_progress)
    simulated = {}
    rows = []
    plain = results["sift/plain"]["ops_per_sec"]
    for key, _coalesce, _doorbell in FIG5ABLATE_GRID:
        cell = results[f"sift/{key}"]
        simulated[key] = cell
        speedup = cell["ops_per_sec"] / plain if plain else 0.0
        rows.append(
            (
                f"sift/{key}",
                f"{cell['ops_per_sec']:12,.0f} ops/s  ({speedup:.3f}x plain)",
            )
        )
    print(kv_table("Figure 5 (ablation): append coalescing x doorbell batching", rows))
    full = simulated["coalesce+doorbell"]["ops_per_sec"]
    if not full > plain:
        print(
            "WARNING: the full batching stack is not faster than the "
            f"plain stack ({full:,.0f} <= {plain:,.0f} ops/s)",
            file=sys.stderr,
        )
        args._failed = True
    return {
        "simulated": simulated,
        "params": {
            "cores": 12,
            "workload": "write-only",
            "clients": 24,
            "grid": [list(entry) for entry in FIG5ABLATE_GRID],
        },
    }


def cmd_fig8(_args, _scale):
    groups = [10, 100, 500, 1000, 2000, 3000]
    backups = [0, 2, 4, 6, 8, 12, 16, 20]
    sweep = sweep_backup_pool(groups, backups, repetitions=10)
    series = {
        f"{g} groups": [(c.backups, c.recovery_time_per_fault_s) for c in row]
        for g, row in sweep.items()
    }
    print(series_table("Figure 8: recovery time per fault", "backups", "s/fault", series))
    return {
        "simulated": {
            name: [[b, v] for b, v in points] for name, points in series.items()
        },
        "params": {"groups": groups, "backups": backups, "repetitions": 10},
    }


def cmd_fig8live(args, scale):
    """The live counterpart of fig8: real groups, a real promoting pool.

    Where fig8 replays a failure trace through the capacity model, this
    runs staggered coordinator crashes against a live
    :class:`~repro.shard.ShardedKvService` and reconciles the measured
    promotion waits with the same :class:`PoolAccountant` the model
    uses.  ``--shards`` overrides the swept shard counts.
    """
    params = fig8live_params(args.smoke)
    points = fig8live_points(scale, args.seed, args.smoke, shard_counts=args.shards)
    results = run_points(points, jobs=args.jobs, progress=_progress)
    rows = []
    for point in points:
        cell = results[point.key]
        rows.append(
            (
                point.key,
                f"live {cell['live_per_fault_us'] / 1e6:7.3f} s/fault  "
                f"model {cell['model_per_fault_us'] / 1e6:7.3f} s/fault  "
                f"{'agrees' if cell['agrees'] else 'DISAGREES'} "
                f"(tolerance {cell['tolerance_us'] / 1e6:.3f} s)",
            )
        )
    print(kv_table("Figure 8 (live): shared pool vs trace model", rows))
    if not all(results[point.key]["agrees"] for point in points):
        print("WARNING: live pool diverged from the trace model", file=sys.stderr)
        args._failed = True  # main() turns this into a non-zero exit
    return {
        "simulated": {point.key: results[point.key] for point in points},
        "params": {
            "backups": params["backups"],
            "provisioning_delay_us": params["provisioning_delay_us"],
            "fault_gap_us": params["fault_gap_us"],
            "repetitions": params["repetitions"],
            "shards": [p.kwargs["shards"] for p in points],
        },
    }


def cmd_figMclients(args, scale):
    """Open-loop saturation sweep: a million-client population.

    Sweeps the offered arrival rate from underload through the
    saturation knee into firm overload against the sharded spec, driven
    by the vectorized :class:`~repro.workloads.openloop.OpenLoopEngine`
    (ROADMAP item 5: "heavy traffic from millions of users" as a
    regression-gated artifact).  Gates: the population is at least one
    million simulated clients, the underload point achieves its offered
    rate without shedding, and the overload point sheds (admission
    control working) while achieved throughput stays pinned at the
    service's capacity rather than following the offered curve.
    """
    params = figMclients_params(args.smoke)
    points = figMclients_points(scale, args.seed, args.smoke)
    results = run_points(points, jobs=args.jobs, progress=_progress)
    rows = []
    for point in points:
        cell = results[point.key]
        shed_total = sum(cell["shed"].values())
        p99s = "  ".join(
            f"{shard} p99 {ops.get('read', ops.get('write', {})).get('p99', 0.0):7.0f}us"
            for shard, ops in sorted(cell["slo"].items())
        )
        rows.append(
            (
                point.key,
                f"offered {cell['offered_ops_per_sec']:9,.0f}  "
                f"achieved {cell['achieved_ops_per_sec']:9,.0f} ops/s  "
                f"shed {shed_total:6d}  err {cell['errors']:4d}  {p99s}",
            )
        )
    print(kv_table("Figure Mclients: open-loop offered-load sweep", rows))
    underload = results[points[0].key]
    overload = results[points[-1].key]
    if params["n_clients"] < 1_000_000:
        print("WARNING: population below one million simulated clients",
              file=sys.stderr)
        args._failed = True
    if sum(underload["shed"].values()) or (
        underload["achieved_ops_per_sec"]
        < 0.9 * underload["offered_ops_per_sec"]
    ):
        print("WARNING: the underload point shed or fell short of its "
              "offered rate", file=sys.stderr)
        args._failed = True
    if not sum(overload["shed"].values()) or not (
        overload["achieved_ops_per_sec"] < overload["offered_ops_per_sec"]
    ):
        print("WARNING: the overload point did not shed — admission "
              "control is not engaging", file=sys.stderr)
        args._failed = True
    for point in points:
        if not results[point.key]["slo"]:
            print(f"WARNING: {point.key} recorded no SLO histograms",
                  file=sys.stderr)
            args._failed = True
    return {
        "simulated": {point.key: results[point.key] for point in points},
        "params": {
            "cores": 12,
            "shards": params["shards"],
            "workload": params["workload"],
            "n_clients": params["n_clients"],
            "base_ops_per_sec": params["base_ops_per_sec"],
            "levels": params["levels"],
            "max_inflight": params["max_inflight"],
            "queue_limit": params["queue_limit"],
            "throttle_ratio": params["throttle_ratio"],
            "window_us": params["window_us"],
        },
    }


def cmd_figHotspot(args, scale):
    """Elastic control plane under a mid-run hotspot shift.

    Two cells share one seed and one scenario — a warmup coordinator
    fault burst, then a Zipf hotspot retargeted onto one shard at fixed
    offered load — and differ only in the control plane: *static* keeps
    a peak-provisioned backup pool and fixed topology, *autoscaled*
    starts lean and must reconcile (resize the pool from the observed
    burst, split the hot shard under live load).  Gates: after the
    shift the autoscaled cell's worst p99.9 strictly beats the static
    cell's; its pool cost stays below static peak provisioning; the
    reconciler actually split and resized; both cells lose zero acked
    writes and pass the linearizability check across the migration.
    """
    params = figHotspot_params(args.smoke)
    points = figHotspot_points(scale, args.seed, args.smoke)
    results = run_points(points, jobs=args.jobs, progress=_progress)
    rows = []
    for point in points:
        cell = results[point.key]
        rows.append(
            (
                point.key,
                f"after p99.9 {cell['tails']['after']['p99.9']:8.0f}us  "
                f"pool {cell['pool']['vm_seconds']:5.2f} VM-s  "
                f"shards {cell['control']['shards']}  "
                f"splits {cell['control']['splits']}  "
                f"lost {cell['probe']['lost'] + cell['probe']['missing']}  "
                f"lincheck {'ok' if cell['probe']['lincheck_ok'] else 'FAIL'}",
            )
        )
    print(kv_table("Figure Hotspot: elastic vs static under a load shift", rows))
    static = results[points[0].key]
    auto = results[points[1].key]
    if not (
        auto["tails"]["after"]["p99.9"] < static["tails"]["after"]["p99.9"]
    ):
        print("WARNING: the autoscaled cell's post-shift p99.9 does not "
              "beat the static cell's", file=sys.stderr)
        args._failed = True
    if not auto["pool"]["vm_seconds"] < static["pool"]["vm_seconds"]:
        print("WARNING: the autoscaled pool cost is not below static peak "
              "provisioning", file=sys.stderr)
        args._failed = True
    if auto["control"]["splits"] < 1 or auto["control"]["ring_version"] < 1:
        print("WARNING: the reconciler never split the hot shard",
              file=sys.stderr)
        args._failed = True
    if auto["control"]["pool_resizes"] < 1:
        print("WARNING: the reconciler never resized the pool",
              file=sys.stderr)
        args._failed = True
    for point in points:
        cell = results[point.key]
        if cell["probe"]["lost"] or cell["probe"]["missing"]:
            print(f"WARNING: {point.key} lost acked writes",
                  file=sys.stderr)
            args._failed = True
        if not cell["probe"]["lincheck_ok"]:
            print(f"WARNING: {point.key} failed the linearizability check "
                  f"(key {cell['probe']['offending_key']})", file=sys.stderr)
            args._failed = True
    return {
        "simulated": {point.key: results[point.key] for point in points},
        "params": {"cores": 12, **{k: v for k, v in params.items()}},
    }


def cmd_fig9(_args, _scale):
    costs = {p: relative_costs(p, 1) for p in ("aws", "gcp")}
    labels = list(costs["aws"])
    print(bar_table(
        "Figure 9: cost vs Raft-R (%), F=1", labels,
        {p: [costs[p][l] for l in labels] for p in costs}, unit="%",
    ))
    return {"simulated": costs, "params": {"f": 1}}


def cmd_fig10(_args, _scale):
    costs = {p: relative_costs(p, 2) for p in ("aws", "gcp")}
    labels = list(costs["aws"])
    print(bar_table(
        "Figure 10: cost vs Raft-R (%), F=2", labels,
        {p: [costs[p][l] for l in labels] for p in costs}, unit="%",
    ))
    return {"simulated": costs, "params": {"f": 2}}


def cmd_fig11(args, scale):
    # One point: the timeline is a single run (see points.fig11_timings
    # for the full-size vs --smoke schedules).
    kill_at, restart_at, duration, clients = fig11_timings(args.smoke)
    results = run_points(
        fig11_points(scale, args.seed, args.smoke), jobs=args.jobs,
        progress=_progress,
    )
    simulated = results["sift/memnode-failure"]
    series = [(t, ops) for t, ops in simulated["series"]]
    events = [(t, label) for t, label in simulated["events"]]
    print(
        series_table(
            "Figure 11: read-heavy throughput during a memory node failure",
            "seconds",
            "ops/sec",
            {"sift": series},
        )
    )
    print("timeline:", sparkline([ops for _t, ops in series]))
    print("events:", events, "recovery completed:",
          simulated["recovery_s"] is not None)
    return {
        "simulated": simulated,
        "params": {
            "cores": 12,
            "clients": clients,
            "kill_at_us": kill_at,
            "restart_at_us": restart_at,
            "duration_us": duration,
            "workload": "read-heavy",
        },
    }


def cmd_fig11sweep(args, scale):
    """Recovery time vs ``recovery_partitions`` (RAMCloud-style sweep).

    Re-runs the fig11 timeline at Fm = 2 for each partition count and
    gates on the RAMCloud property: recovery time must *strictly*
    decrease as partitions grow, because each doubling doubles the
    source links streaming the image back.  The ``sift/memnode-failure``
    anchor point re-runs fig11 itself (Fm = 1, single stream) and must
    match the fig11 artifact byte-for-byte.
    """
    kill_at, restart_at, duration, clients = fig11_timings(args.smoke)
    points = fig11sweep_points(scale, args.seed, args.smoke)
    results = run_points(points, jobs=args.jobs, progress=_progress)
    rows = []
    sweep_keys = [f"sift/recovery-f2-p{p}" for p in RECOVERY_SWEEP_PARTITIONS]
    for key in sweep_keys:
        cell = results[key]
        copy_ms = (cell["copy_us"] or 0) / 1e3
        rows.append(
            (
                key,
                f"recovery {cell['recovery_s']:7.3f} s   "
                f"copy {copy_ms:8.3f} ms   "
                f"sources {len(cell['sources'] or [])}",
            )
        )
    print(kv_table("Figure 11 sweep: recovery time vs partitions (Fm=2)", rows))
    recovery_times = [results[key]["recovery_s"] for key in sweep_keys]
    if any(t is None for t in recovery_times):
        print("WARNING: a sweep point never finished recovery", file=sys.stderr)
        args._failed = True
    elif not all(a > b for a, b in zip(recovery_times, recovery_times[1:])):
        print(
            "WARNING: recovery time is not strictly decreasing in "
            f"partitions: {recovery_times}",
            file=sys.stderr,
        )
        args._failed = True
    return {
        "simulated": {point.key: results[point.key] for point in points},
        "params": {
            "f": 2,
            "cores": 12,
            "clients": clients,
            "kill_at_us": kill_at,
            "restart_at_us": restart_at,
            "duration_us": duration,
            "workload": "read-heavy",
            "partitions": list(RECOVERY_SWEEP_PARTITIONS),
        },
    }


def cmd_throughput(args, scale):
    spec = build_spec(args.system, scale, cores=args.cores)
    result = run_throughput(
        spec, WORKLOADS[args.workload], scale=scale, seed=args.seed
    )
    print(kv_table(
        f"{args.system} / {args.workload}",
        [("throughput", f"{result.ops_per_sec:,.0f} ops/s"),
         ("completed", str(result.completed)),
         ("errors", str(result.errors))],
    ))
    return {
        "simulated": {
            "ops_per_sec": result.ops_per_sec,
            "completed": result.completed,
            "errors": result.errors,
        },
        "params": {"system": args.system, "workload": args.workload,
                   "cores": args.cores},
    }


COMMANDS = {
    "table1": cmd_table1,
    "table2": cmd_table2,
    "fig5": cmd_fig5,
    "fig5ablate": cmd_fig5ablate,
    "fig6": cmd_fig6,
    "fig6path": cmd_fig6path,
    "fig8": cmd_fig8,
    "fig8live": cmd_fig8live,
    "figHotspot": cmd_figHotspot,
    "figMclients": cmd_figMclients,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "fig11": cmd_fig11,
    "fig11sweep": cmd_fig11sweep,
    "throughput": cmd_throughput,
}


def _baselines_dir() -> str:
    """``benchmarks/baselines/`` at the repo root, found from this file."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "benchmarks", "baselines")


def _run_one(name: str, args, scale: BenchScale):
    """Run one experiment under a fresh registry; write its artifact."""
    command = COMMANDS[name]
    registry = MetricsRegistry()
    started = time.monotonic()
    with collecting(registry):
        payload = command(args, scale)
    wall_clock_s = time.monotonic() - started
    if payload is None or args.no_artifact:
        return None
    params = dict(payload.get("params") or {})
    params["scale"] = _scale_params(scale)
    path = write_artifact(
        args.out_dir,
        name,
        payload["simulated"],
        seeds=[args.seed],
        params=params,
        registry=registry,
        wall_clock_s=wall_clock_s,
    )
    print(f"  wrote {path}", file=sys.stderr)
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.cli",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help=f"one or more of: {', '.join(COMMANDS)} "
             "(fig7/fig12 run via pytest benchmarks/)",
    )
    parser.add_argument("--system", default="sift",
                        choices=["sift", "sift-ec", "raft-r", "epaxos", "sharded"])
    parser.add_argument(
        "--shards", type=int, nargs="+", default=None, metavar="G",
        help="shard counts swept by fig8live (default: per-scale preset)",
    )
    parser.add_argument("--workload", default="read-heavy", choices=list(WORKLOADS))
    parser.add_argument("--cores", type=int, default=None)
    parser.add_argument("--seed", type=int, default=1,
                        help="experiment seed recorded in the artifact")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent figure points "
             "(artifacts are byte-identical at any job count)",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="pinned CI scale (ignores REPRO_BENCH_* env)")
    parser.add_argument("--out-dir", default="bench_artifacts",
                        help="directory for BENCH_<figure>.json artifacts")
    parser.add_argument("--no-artifact", action="store_true",
                        help="print figures only, write nothing")
    parser.add_argument(
        "--refresh-baselines", action="store_true",
        help="regenerate benchmarks/baselines/ (all gated figures, smoke scale)",
    )
    args = parser.parse_args(argv)

    if args.refresh_baselines:
        args.smoke = True
        args.no_artifact = False
        args.out_dir = _baselines_dir()
        experiments = list(BASELINE_FIGURES)
    else:
        experiments = args.experiments
        if not experiments:
            parser.error("no experiments given")

    scale = SMOKE_SCALE if args.smoke else BenchScale()
    for experiment in experiments:
        if experiment not in COMMANDS:
            parser.error(f"unknown experiment: {experiment}")
        _run_one(experiment, args, scale)
        print()
    return 1 if getattr(args, "_failed", False) else 0


if __name__ == "__main__":
    raise SystemExit(main())
