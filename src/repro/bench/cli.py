"""Command-line experiment runner.

``python -m repro.bench.cli <experiment>`` regenerates one of the
paper's tables/figures (or an ablation) and prints it, without going
through pytest.  Scale is controlled by the same ``REPRO_BENCH_*``
environment variables the benchmarks use.

Examples::

    python -m repro.bench.cli table1
    python -m repro.bench.cli fig9 fig10
    REPRO_BENCH_MEASURE_MS=300 python -m repro.bench.cli fig5
    python -m repro.bench.cli throughput --system sift-ec --workload mixed
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines import characteristics_table
from repro.bench.calibration import BenchScale
from repro.bench.report import bar_table, kv_table, series_table
from repro.bench.runner import run_throughput
from repro.bench.systems import epaxos_spec, raft_spec, sift_spec
from repro.cluster import relative_costs
from repro.cluster.backups import sweep_backup_pool
from repro.cluster.provision import TARGET_THROUGHPUT, machine_table
from repro.workloads import WORKLOADS

__all__ = ["main"]


def _spec(name: str, scale: BenchScale, cores=None):
    if name == "sift":
        return sift_spec(cores=cores, scale=scale)
    if name == "sift-ec":
        return sift_spec(erasure_coding=True, cores=cores, scale=scale)
    if name == "raft-r":
        return raft_spec(cores=cores or 8, scale=scale)
    if name == "epaxos":
        return epaxos_spec(cores=cores or 8, scale=scale)
    raise SystemExit(f"unknown system: {name}")


def cmd_table1(_args, _scale) -> None:
    print(characteristics_table())


def cmd_table2(_args, _scale) -> None:
    rows = []
    for f in (1, 2):
        rows.append((f"-- F={f} (target {TARGET_THROUGHPUT[f]:,} ops/s) --", ""))
        for name, spec in machine_table(f):
            rows.append((name, f"{spec.cores} cores, {spec.memory_gb} GB"))
    print(kv_table("Table 2: normalized machine configurations", rows))


def cmd_fig5(_args, scale) -> None:
    mixes = list(WORKLOADS)
    rows = {}
    for name in ("epaxos", "sift-ec", "sift", "raft-r"):
        spec = _spec(name, scale, cores=12)
        clients = scale.clients * 3 if name == "epaxos" else scale.clients
        rows[name] = [
            run_throughput(spec, WORKLOADS[mix], n_clients=clients, scale=scale).ops_per_sec
            for mix in mixes
        ]
        print(f"  [{name}] done", file=sys.stderr)
    print(bar_table("Figure 5: throughput by workload (F=1)", mixes, rows))


def cmd_fig8(_args, _scale) -> None:
    groups = [10, 100, 500, 1000, 2000, 3000]
    backups = [0, 2, 4, 6, 8, 12, 16, 20]
    sweep = sweep_backup_pool(groups, backups, repetitions=10)
    series = {
        f"{g} groups": [(c.backups, c.recovery_time_per_fault_s) for c in row]
        for g, row in sweep.items()
    }
    print(series_table("Figure 8: recovery time per fault", "backups", "s/fault", series))


def cmd_fig9(_args, _scale) -> None:
    costs = {p: relative_costs(p, 1) for p in ("aws", "gcp")}
    labels = list(costs["aws"])
    print(bar_table(
        "Figure 9: cost vs Raft-R (%), F=1", labels,
        {p: [costs[p][l] for l in labels] for p in costs}, unit="%",
    ))


def cmd_fig10(_args, _scale) -> None:
    costs = {p: relative_costs(p, 2) for p in ("aws", "gcp")}
    labels = list(costs["aws"])
    print(bar_table(
        "Figure 10: cost vs Raft-R (%), F=2", labels,
        {p: [costs[p][l] for l in labels] for p in costs}, unit="%",
    ))


def cmd_throughput(args, scale) -> None:
    spec = _spec(args.system, scale, cores=args.cores)
    result = run_throughput(spec, WORKLOADS[args.workload], scale=scale)
    print(kv_table(
        f"{args.system} / {args.workload}",
        [("throughput", f"{result.ops_per_sec:,.0f} ops/s"),
         ("completed", str(result.completed)),
         ("errors", str(result.errors))],
    ))


COMMANDS = {
    "table1": cmd_table1,
    "table2": cmd_table2,
    "fig5": cmd_fig5,
    "fig8": cmd_fig8,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "throughput": cmd_throughput,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.cli",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="+",
        help=f"one or more of: {', '.join(COMMANDS)} "
             "(fig6/fig7/fig11/fig12 run via pytest benchmarks/)",
    )
    parser.add_argument("--system", default="sift",
                        choices=["sift", "sift-ec", "raft-r", "epaxos"])
    parser.add_argument("--workload", default="read-heavy", choices=list(WORKLOADS))
    parser.add_argument("--cores", type=int, default=None)
    args = parser.parse_args(argv)
    scale = BenchScale()
    for experiment in args.experiments:
        command = COMMANDS.get(experiment)
        if command is None:
            parser.error(f"unknown experiment: {experiment}")
        command(args, scale)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
