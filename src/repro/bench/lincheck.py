"""Per-key linearizability checking for KV operation histories.

Consensus repositories live or die by their consistency story, so the
test suite records real client histories — invocation time, response
time, operation, outcome — during fault injection and checks them with
a Wing-Gong style linearizability search specialised to a per-key
read/write register:

* operations on different keys are independent (the store has no
  multi-key operations), so the history factors per key;
* an operation that never received a response may have taken effect at
  any point after its invocation (or never); the checker treats such
  ops as optional.

The search walks the history's minimal-operation frontier with
memoisation on (completed-set, register-value); per-key histories from
the tests are small, so this stays fast.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set, Tuple

__all__ = ["Op", "History", "check_key_history", "check_history"]

PUT = "put"
GET = "get"
DELETE = "delete"


class Op(NamedTuple):
    """One client operation as observed at the client."""

    key: bytes
    kind: str  # put | get | delete
    value: Optional[bytes]  # put argument, or get result (None = missing)
    invoked_at: float
    responded_at: Optional[float]  # None: no response observed (may or may not have happened)


class History:
    """A collection of recorded operations."""

    def __init__(self) -> None:
        self.ops: List[Op] = []

    def record(self, op: Op) -> None:
        self.ops.append(op)

    def per_key(self) -> Dict[bytes, List[Op]]:
        out: Dict[bytes, List[Op]] = {}
        for op in self.ops:
            out.setdefault(op.key, []).append(op)
        return out


def check_history(history: History, initial: Optional[bytes] = None) -> Tuple[bool, Optional[bytes]]:
    """Check every key's sub-history; returns (ok, offending_key)."""
    for key, ops in history.per_key().items():
        if not check_key_history(ops, initial=initial):
            return False, key
    return True, None


def check_key_history(ops: List[Op], initial: Optional[bytes] = None) -> bool:
    """Wing-Gong linearizability for one key's register history.

    Returns True iff there is a total order of (a subset including all
    *responded* of) the operations that respects real-time order and
    register semantics, where never-responded operations may be
    included or dropped.
    """
    completed = [op for op in ops if op.responded_at is not None]
    pending = [op for op in ops if op.responded_at is None]
    ordered = sorted(completed, key=lambda op: op.invoked_at)
    all_ops = ordered + pending
    n = len(all_ops)
    if n > 64:
        raise ValueError("history too large for the exhaustive checker")

    full_mask = (1 << n) - 1
    seen: Set[Tuple[int, Optional[bytes]]] = set()

    def precedes(a: Op, b: Op) -> bool:
        """a finished before b was invoked (strict real-time order)."""
        return a.responded_at is not None and a.responded_at < b.invoked_at

    def search(done_mask: int, value: Optional[bytes]) -> bool:
        if done_mask & ((1 << len(ordered)) - 1) == (1 << len(ordered)) - 1:
            return True  # every completed op linearised (pending are optional)
        state = (done_mask, value)
        if state in seen:
            return False
        seen.add(state)
        for index, op in enumerate(all_ops):
            bit = 1 << index
            if done_mask & bit:
                continue
            # Minimality: every op that strictly precedes `op` in real
            # time must already be linearised.
            blocked = False
            for j, other in enumerate(all_ops):
                if j != index and not (done_mask & (1 << j)) and precedes(other, op):
                    blocked = True
                    break
            if blocked:
                continue
            if op.kind == GET:
                if op.responded_at is None:
                    # A get with no observed response constrains nothing.
                    if search(done_mask | bit, value):
                        return True
                    continue
                if op.value != value:
                    continue  # cannot linearise here
                if search(done_mask | bit, value):
                    return True
            elif op.kind == PUT:
                if search(done_mask | bit, op.value):
                    return True
            elif op.kind == DELETE:
                if search(done_mask | bit, None):
                    return True
        return False

    return search(0, initial)
