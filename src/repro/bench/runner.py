"""Experiment drivers.

Three drivers cover every figure:

* :func:`run_throughput` — peak throughput of one (system, workload)
  point: build, preload, warm up, measure (Figs. 5 and 7).
* :func:`run_latency` — latency distribution at a fixed client count
  (Fig. 6: 1 client, and ~90% of peak via a calibrated client count).
* :func:`run_timeline` — a long run with fault-injection callbacks and
  100 ms throughput windows (Figs. 11 and 12).

Each experiment runs in a brand-new simulator with seeded RNG streams;
two invocations with identical parameters produce identical numbers.
"""

from __future__ import annotations

import gc
from typing import Callable, List, NamedTuple, Optional, Tuple

from repro.bench.calibration import DEFAULT_SCALE, BenchScale
from repro.bench.metrics import Metrics
from repro.bench.systems import SystemSpec
from repro.net.fabric import Fabric
from repro.obs import state as obs_state
from repro.obs.publish import publish_run
from repro.obs.trace import Tracer, set_tracer
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS, SEC
from repro.workloads.clients import ClientPool
from repro.workloads.generator import (
    KeySampler,
    StripedZipfSampler,
    WorkloadMix,
    ZipfSampler,
)
from repro.workloads.openloop import AdmissionControl, OpenLoopEngine
from repro.workloads.retry import RetryPolicy

__all__ = [
    "ThroughputResult",
    "LatencyResult",
    "TimelineResult",
    "OpenLoopResult",
    "run_throughput",
    "run_latency",
    "run_timeline",
    "run_openloop",
    "SIMULATOR_FACTORY",
]

#: Constructor used for every experiment's event loop.  Perfbench swaps
#: in :class:`repro.sim.reference.Simulator` to measure the same driver
#: on the pre-fast-path engine; everything else should leave this alone.
SIMULATOR_FACTORY: Callable[[], Simulator] = Simulator


class ThroughputResult(NamedTuple):
    """One Figure 5 / Figure 7 data point."""

    system: str
    workload: str
    ops_per_sec: float
    completed: int
    errors: int


class LatencyResult(NamedTuple):
    """One Figure 6 data point (microseconds)."""

    system: str
    clients: int
    read_p50: Optional[float]
    read_p95: Optional[float]
    write_p50: Optional[float]
    write_p95: Optional[float]
    ops_per_sec: float


class OpenLoopResult(NamedTuple):
    """One figMclients data point: an offered-load level on one spec."""

    system: str
    offered_ops_per_sec: float  #: configured arrival rate
    achieved_ops_per_sec: float  #: completions over the measured window
    generated: int  #: arrivals drawn (the realised offered load)
    admitted: int  #: arrivals that made it into a shard queue
    completed: int
    errors: int
    retries: int
    shed: dict  #: {reason: count} — "throttle" and "queue"
    clients_active: int  #: distinct simulated clients that issued an op
    clients_population: int
    inflight_peaks: dict  #: {shard: peak concurrently issued ops}
    slo: dict  #: {shard: {op: p50/p99/p99.9 summary}}


class TimelineResult(NamedTuple):
    """A Figure 11 / 12 series."""

    system: str
    series: List[Tuple[float, float]]  # (seconds, ops/sec) per 100ms window
    events: List[Tuple[float, str]]  # (seconds, label) of injected faults
    base_us: float = 0.0  # absolute sim time of t=0 (for rebasing marks)


def _setup(spec: SystemSpec, scale: BenchScale, seed: int):
    sim = SIMULATOR_FACTORY()
    fabric = Fabric(sim, rng=RngStreams(seed=seed))
    cluster = spec.build(fabric)
    return sim, fabric, cluster


def _items(scale: BenchScale):
    value = b"v" * scale.value_bytes
    sampler = KeySampler(scale.keys)
    return ((sampler.key(i), value) for i in range(scale.keys))


def _drive(
    spec: SystemSpec,
    mix: WorkloadMix,
    n_clients: int,
    scale: BenchScale,
    seed: int,
    sampler: Optional[KeySampler] = None,
    tracer: Optional[Tracer] = None,
):
    """Common build -> preload -> warmup -> measure flow; returns metrics.

    With *tracer* the measurement window runs traced: the tracer is
    installed after warmup and removed after the window, so preload and
    warmup spans never pollute it.  Tracing draws no randomness and
    never schedules, so the measured numbers are byte-identical with or
    without it (pinned by ``tests/test_obs_determinism.py``).  Ops in
    flight at install time show up as parentless milestone instants;
    :mod:`repro.obs.critpath` skips those incomplete roots.
    """
    sim, fabric, cluster = _setup(spec, scale, seed)
    # Derive the reservoir-sampling RNG from the experiment seed: every
    # source of randomness in a run traces back to the one seed argument.
    metrics = Metrics(seed=seed)
    sampler = sampler or ZipfSampler(scale.keys, scale.zipf_theta)
    pool = ClientPool(
        fabric, cluster, n_clients, mix, sampler, metrics,
        value_bytes=scale.value_bytes, client_factory=spec.client_factory,
    )

    ready = sim.spawn(spec.wait_ready(cluster), name="wait-ready")
    ready.add_callback(lambda _ev: None)  # we inspect the outcome below
    sim.run_until_settled(ready, deadline=5 * SEC)
    if not ready.ok:
        raise RuntimeError(f"{spec.name} never became ready: {ready.exception}")
    spec.preload(cluster, _items(scale))
    pool.start()
    sim.run(until=sim.now + scale.warmup_us)
    previous = None
    gc_was_enabled = False
    if tracer is not None:
        # Collector-driven teardown of an *earlier* run's dead process
        # graph (a previous figure point in this worker) can execute old
        # engine code mid-window — e.g. a closed generator's cleanup
        # resumes another dead process, which crashes and records a
        # ``proc.crash`` instant into the freshly installed tracer.
        # That injects spans at GC-timing-dependent positions, making
        # the span stream depend on worker history.  Drain the garbage
        # now and keep automatic collection off for the window so the
        # trace depends on the simulated schedule only.
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        previous = set_tracer(tracer)
    try:
        metrics.begin(sim.now)
        sim.run(until=sim.now + scale.measure_us)
        metrics.end(sim.now)
    finally:
        if tracer is not None:
            set_tracer(previous)
            if gc_was_enabled:
                gc.enable()
    pool.stop()
    if obs_state.REGISTRY is not None:
        metrics.publish(obs_state.REGISTRY)
        publish_run(obs_state.REGISTRY, fabric, cluster)
    return metrics


def run_throughput(
    spec: SystemSpec,
    mix: WorkloadMix,
    n_clients: Optional[int] = None,
    scale: BenchScale = DEFAULT_SCALE,
    seed: int = 1,
) -> ThroughputResult:
    """Peak (or fixed-client) throughput for one system and workload."""
    clients = n_clients if n_clients is not None else scale.clients
    metrics = _drive(spec, mix, clients, scale, seed)
    return ThroughputResult(
        system=spec.name,
        workload=mix.name,
        ops_per_sec=metrics.throughput(),
        completed=metrics.completed,
        errors=metrics.errors,
    )


def run_latency(
    spec: SystemSpec,
    mix: WorkloadMix,
    n_clients: int,
    scale: BenchScale = DEFAULT_SCALE,
    seed: int = 1,
    tracer: Optional[Tracer] = None,
) -> LatencyResult:
    """Latency percentiles at a fixed load level.

    Pass *tracer* to trace the measurement window (see :func:`_drive`);
    the caller then walks the tracer with :mod:`repro.obs.critpath`.
    """
    metrics = _drive(spec, mix, n_clients, scale, seed, tracer=tracer)

    def maybe(op: str, p: float) -> Optional[float]:
        if metrics.latencies.get(op):
            return metrics.latency(op, p)
        return None

    return LatencyResult(
        system=spec.name,
        clients=n_clients,
        read_p50=maybe("read", 50),
        read_p95=maybe("read", 95),
        write_p50=maybe("write", 50),
        write_p95=maybe("write", 95),
        ops_per_sec=metrics.throughput(),
    )


def run_timeline(
    spec: SystemSpec,
    mix: WorkloadMix,
    n_clients: int,
    duration_us: float,
    events: List[Tuple[float, str, Callable]],
    scale: BenchScale = DEFAULT_SCALE,
    seed: int = 1,
) -> TimelineResult:
    """Throughput timeline with fault injection (Figs. 11-12).

    *events* is a list of ``(at_us, label, fn)``; ``fn(cluster)`` runs at
    simulated time *at_us* measured from the start of the measurement.
    A :class:`repro.chaos.FaultSchedule` is accepted directly — its
    actions become the event list, injected through a
    :class:`repro.chaos.adapters.ChaosController`.
    """
    if hasattr(events, "to_timeline_events"):
        events = events.to_timeline_events()
    sim, fabric, cluster = _setup(spec, scale, seed)
    metrics = Metrics(seed=seed)
    sampler = ZipfSampler(scale.keys, scale.zipf_theta)
    pool = ClientPool(
        fabric, cluster, n_clients, mix, sampler, metrics,
        value_bytes=scale.value_bytes, client_factory=spec.client_factory,
    )

    ready = sim.spawn(spec.wait_ready(cluster), name="wait-ready")
    ready.add_callback(lambda _ev: None)  # we inspect the outcome below
    sim.run_until_settled(ready, deadline=5 * SEC)
    if not ready.ok:
        raise RuntimeError(f"{spec.name} never became ready: {ready.exception}")
    spec.preload(cluster, _items(scale))
    pool.start()
    sim.run(until=sim.now + scale.warmup_us)

    base = sim.now
    metrics.begin(base)
    injected: List[Tuple[float, str]] = []
    for at_us, label, fn in sorted(events):
        sim.run(until=base + at_us)
        fn(cluster)
        injected.append(((sim.now - base) / 1e6, label))
    sim.run(until=base + duration_us)
    metrics.end(sim.now)
    pool.stop()
    if obs_state.REGISTRY is not None:
        metrics.publish(obs_state.REGISTRY)
        publish_run(obs_state.REGISTRY, fabric, cluster)
    series = metrics.timeline(base, sim.now)
    rebased = [(t - base / 1e6, ops) for t, ops in series]
    return TimelineResult(
        system=spec.name, series=rebased, events=injected, base_us=base
    )


def run_openloop(
    spec: SystemSpec,
    mix: WorkloadMix,
    offered_ops_per_sec: float,
    n_clients: int,
    scale: BenchScale = DEFAULT_SCALE,
    seed: int = 1,
    window_us: float = None,
    admission: Optional[AdmissionControl] = None,
    retry: Optional[RetryPolicy] = None,
) -> OpenLoopResult:
    """Open-loop arrivals at a fixed offered rate (figMclients).

    Same build -> preload -> warmup -> measure flow as :func:`_drive`,
    but the load comes from :class:`~repro.workloads.openloop.
    OpenLoopEngine` — vectorized Poisson arrival windows over an
    *n_clients*-strong simulated population — instead of closed-loop
    client coroutines.  Sharded clusters get a
    :class:`StripedZipfSampler` over the service ring so each arrival's
    shard is one vectorized modulo; anything else runs single-lane with
    the plain Zipf sampler.
    """
    if window_us is None:
        window_us = 1 * MS
    sim, fabric, cluster = _setup(spec, scale, seed)
    ring = getattr(cluster, "ring", None)
    if getattr(cluster, "groups", None) and ring is not None:
        sampler = StripedZipfSampler(scale.keys, ring, scale.zipf_theta)
    else:
        sampler = ZipfSampler(scale.keys, scale.zipf_theta)
    engine = OpenLoopEngine(
        fabric,
        cluster,
        mix,
        sampler,
        offered_ops_per_sec=offered_ops_per_sec,
        n_clients=n_clients,
        window_us=window_us,
        admission=admission,
        retry=retry,
        value_bytes=scale.value_bytes,
    )

    ready = sim.spawn(spec.wait_ready(cluster), name="wait-ready")
    ready.add_callback(lambda _ev: None)  # we inspect the outcome below
    sim.run_until_settled(ready, deadline=5 * SEC)
    if not ready.ok:
        raise RuntimeError(f"{spec.name} never became ready: {ready.exception}")
    # Preload the *sampler's* keys: a striped sampler renders different
    # wire keys than the plain preload set, and reads must hit.
    value = b"v" * scale.value_bytes
    spec.preload(cluster, ((sampler.key(i), value) for i in range(scale.keys)))
    engine.start()
    sim.run(until=sim.now + scale.warmup_us)
    engine.begin_measurement()
    sim.run(until=sim.now + scale.measure_us)
    engine.end_measurement()
    engine.stop()
    if obs_state.REGISTRY is not None:
        engine.publish(obs_state.REGISTRY)
        publish_run(obs_state.REGISTRY, fabric, cluster)
    return OpenLoopResult(
        system=spec.name,
        offered_ops_per_sec=offered_ops_per_sec,
        achieved_ops_per_sec=engine.achieved_ops_per_sec(),
        generated=engine.counts["offered"],
        admitted=engine.counts["admitted"],
        completed=engine.counts["completed"],
        errors=engine.counts["errors"],
        retries=engine.counts["retries"],
        shed=dict(engine.shed),
        clients_active=engine.clients_active,
        clients_population=engine.generator.n_clients,
        inflight_peaks=engine.inflight_peaks(),
        slo=engine.slo_summary(),
    )
