"""System-under-test factories.

Each spec builds a fresh cluster on a fresh fabric with a uniform
interface, so the experiment drivers in :mod:`repro.bench.runner` can
treat Sift, Sift EC, Raft-R and EPaxos identically:

* ``build(fabric)`` — construct and start the cluster;
* ``wait_ready(cluster)`` — process that returns when requests are served;
* ``preload(cluster, items)`` — synchronous §6.2 pre-population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Tuple

from repro.baselines.epaxos import EPaxosCluster, EPaxosConfig
from repro.baselines.raft import RaftCluster, RaftConfig
from repro.bench.calibration import DEFAULT_SCALE, BenchScale
from repro.core.group import SiftGroup
from repro.kv.config import KvConfig
from repro.kv.store import kv_app_factory
from repro.net.fabric import Fabric
from repro.sim.units import SEC

__all__ = ["SystemSpec", "sift_spec", "raft_spec", "epaxos_spec", "sharded_spec"]


@dataclass(frozen=True)
class SystemSpec:
    """A buildable system-under-test."""

    name: str
    build: Callable[[Fabric], object]
    wait_ready: Callable[[object], object]  # (cluster) -> process generator
    preload: Callable[[object, Iterable[Tuple[bytes, bytes]]], None]
    #: Client constructor ``(host, fabric, cluster)``; None -> KvClient.
    client_factory: Optional[Callable] = None


# ---------------------------------------------------------------------------
# Sift / Sift EC
# ---------------------------------------------------------------------------


def sift_spec(
    f: int = 1,
    erasure_coding: bool = False,
    cores: Optional[int] = None,
    scale: BenchScale = DEFAULT_SCALE,
    kv_overrides: Optional[dict] = None,
    recovery_partitions: int = 1,
    sift_overrides: Optional[dict] = None,
) -> SystemSpec:
    """A Sift group serving the paper's KV store.

    *kv_overrides* tweaks :class:`KvConfig` fields (cache fraction,
    apply workers, coalesce_appends, ...) for ablation experiments;
    *sift_overrides* does the same for :class:`SiftConfig` fields
    (doorbell_batching, timeouts, ...).
    *recovery_partitions* selects the memory-node recovery strategy:
    1 is the paper's coordinator-driven stream, above 1 enables the
    RAMCloud-style partitioned source→target copy (the fig11 sweep).
    """
    kv_kwargs = dict(
        max_keys=scale.keys + 1024,
        wal_entries=scale.kv_wal_entries,
    )
    kv_kwargs.update(kv_overrides or {})
    kv_config = KvConfig(**kv_kwargs)
    if cores is None:
        cores = 12 if erasure_coding else 10  # Table 2 defaults
    name = f"sift{'-ec' if erasure_coding else ''}"

    def build(fabric: Fabric) -> SiftGroup:
        sift_kwargs = dict(
            wal_entries=scale.wal_entries,
            cpu_node_cores=cores,
            recovery_partitions=recovery_partitions,
        )
        sift_kwargs.update(sift_overrides or {})
        sift_config = kv_config.sift_config(
            fm=f,
            fc=f,
            erasure_coding=erasure_coding,
            **sift_kwargs,
        )
        group = SiftGroup(
            fabric, sift_config, name=name, app_factory=kv_app_factory(kv_config)
        )
        group.start()
        return group

    def wait_ready(group: SiftGroup):
        coordinator = yield from group.wait_until_serving(timeout_us=5 * SEC)
        return coordinator

    def preload(group: SiftGroup, items) -> None:
        coordinator = group.serving_coordinator()
        if coordinator is None:
            raise RuntimeError("preload requires a serving coordinator")
        coordinator.app.preload(items)

    return SystemSpec(name=name, build=build, wait_ready=wait_ready, preload=preload)


# ---------------------------------------------------------------------------
# Raft-R
# ---------------------------------------------------------------------------


def sharded_spec(
    shards: int = 2,
    backups: int = 1,
    provisioning_delay_us: float = 100 * SEC,
    cores: Optional[int] = None,
    scale: BenchScale = DEFAULT_SCALE,
    kv_overrides: Optional[dict] = None,
    **service_overrides,
) -> SystemSpec:
    """The multi-group sharded KV service over a live shared backup pool."""
    from collections import defaultdict

    from repro.shard.service import ShardedKvService

    kv_kwargs = dict(
        max_keys=scale.keys + 1024,
        wal_entries=scale.kv_wal_entries,
    )
    kv_kwargs.update(kv_overrides or {})
    kv_config = KvConfig(**kv_kwargs)
    if cores is not None:
        service_overrides.setdefault("cpu_node_cores", cores)

    def build(fabric: Fabric) -> ShardedKvService:
        service = ShardedKvService(
            fabric,
            shards=shards,
            backups=backups,
            kv_config=kv_config,
            provisioning_delay_us=provisioning_delay_us,
            wal_entries=scale.wal_entries,
            **service_overrides,
        )
        service.start()
        return service

    def wait_ready(service: ShardedKvService):
        result = yield from service.wait_until_serving(timeout_us=10 * SEC)
        return result

    def preload(service: ShardedKvService, items) -> None:
        by_shard = defaultdict(list)
        for key, value in items:
            by_shard[service.shard_for(key)].append((key, value))
        for shard_name, shard_items in by_shard.items():
            coordinator = service._group(shard_name).serving_coordinator()
            if coordinator is None:
                raise RuntimeError(f"preload requires {shard_name} to be serving")
            coordinator.app.preload(shard_items)

    from repro.shard.router import ShardRouter

    return SystemSpec(
        name="sharded",
        build=build,
        wait_ready=wait_ready,
        preload=preload,
        client_factory=ShardRouter,
    )


def raft_spec(
    f: int = 1,
    cores: int = 8,
    scale: BenchScale = DEFAULT_SCALE,
) -> SystemSpec:
    """The Raft-R comparison system (§6.3.1)."""

    def build(fabric: Fabric) -> RaftCluster:
        config = RaftConfig(f=f, cores=cores)
        cluster = RaftCluster(fabric, config, name="raft")
        cluster.start()
        return cluster

    def wait_ready(cluster: RaftCluster):
        leader = yield from cluster.wait_until_serving(timeout_us=5 * SEC)
        return leader

    def preload(cluster: RaftCluster, items) -> None:
        cluster.preload(items)

    return SystemSpec(name="raft-r", build=build, wait_ready=wait_ready, preload=preload)


# ---------------------------------------------------------------------------
# EPaxos
# ---------------------------------------------------------------------------


def epaxos_spec(
    f: int = 1,
    cores: int = 8,
    scale: BenchScale = DEFAULT_SCALE,
) -> SystemSpec:
    """The EPaxos comparison system (§6.3.1)."""

    def build(fabric: Fabric) -> EPaxosCluster:
        config = EPaxosConfig(f=f, cores=cores)
        cluster = EPaxosCluster(fabric, config, name="epaxos")
        cluster.start()
        return cluster

    def wait_ready(cluster: EPaxosCluster):
        replica = yield from cluster.wait_until_serving()
        return replica

    def preload(cluster: EPaxosCluster, items) -> None:
        cluster.preload(items)

    return SystemSpec(name="epaxos", build=build, wait_ready=wait_ready, preload=preload)
