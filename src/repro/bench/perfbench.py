"""Wall-clock performance harness for the simulator itself.

Everything else in :mod:`repro.bench` measures *simulated* time, which
is deterministic and host-independent.  This module measures the other
axis — how fast the host chews through simulated events — so engine
changes can be justified (or caught regressing) with numbers:

* **Engine microbenchmarks** (events/sec) run the same workload on the
  current engine and on :mod:`repro.sim.reference` (the verbatim
  pre-fast-path engine): pure heap churn, zero-delay callback cascades
  (the ready-deque path), and cancelled-timer churn (the lazy
  cancellation path that heartbeat/election/RPC-guard timers hit).
* **RDMA loopback** drives read/write verbs through a queue pair
  between two hosts and reports verbs/sec.
* **fig5 smoke driver** times one (sift, read-heavy) Figure 5 point at
  ``--smoke`` scale on both engines via
  :data:`repro.bench.runner.SIMULATOR_FACTORY`, checks the simulated
  numbers are identical, and reports the engine speedup.
* **Parallel sweep scaling** times a two-point sweep at ``--jobs 1``
  and ``--jobs 2``; the ratio only exceeds ~1.0 on multi-core hosts,
  which is why the artifact records ``host.cpu_count``.

Results go to ``PERF_perfbench.json`` (:func:`repro.obs.artifact.
write_perf_artifact`).  Absolute rates are host properties and never
strictly compared, but the fast-vs-reference *ratios* are host
independent enough to gate on: ``--gate`` loads the committed floors
(``benchmarks/perf/perf_floors.json``), checks every floored metric,
and exits non-zero if any ratio regressed below its floor.  Floors are
set well under the measured ratios to absorb CI-host noise; a genuine
engine regression (e.g. losing lazy cancellation) undershoots them by
integer factors.

Example::

    PYTHONPATH=src python -m repro.bench.perfbench --out-dir bench_artifacts
    PYTHONPATH=src python -m repro.bench.perfbench --quick --gate  # CI lane
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.bench import runner
from repro.bench.calibration import SMOKE_SCALE
from repro.bench.parallel import Point, run_points
from repro.bench.points import throughput_point
from repro.bench.report import kv_table
from repro.bench.runner import run_throughput
from repro.bench.systems import sift_spec
from repro.net.fabric import Fabric
from repro.obs.artifact import write_perf_artifact
from repro.rdma.listener import RdmaListener
from repro.rdma.memory import MemoryRegion
from repro.rdma.nic import Rnic
from repro.rdma.qp import QueuePair
from repro.sim import engine, reference
from repro.sim.rng import RngStreams
from repro.workloads import WORKLOADS

__all__ = ["main", "run_perfbench", "load_floors", "check_floors"]

ENGINES = {"fast": engine.Simulator, "reference": reference.Simulator}


def _timed(fn: Callable[[], int], repeat: int) -> Dict[str, float]:
    """Best-of-*repeat* wall time for *fn*; returns work count and rates."""
    best = float("inf")
    count = 0
    for _ in range(repeat):
        gc.collect()
        started = time.perf_counter()
        count = fn()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return {"count": count, "wall_s": best, "per_s": count / best}


# -- engine microbenchmarks --------------------------------------------------


def _noop():
    return None


def _heap_churn(sim_factory: Callable, n: int) -> int:
    """Pure timestamped scheduling: n events through the heap."""
    sim = sim_factory()
    fired = [0]

    def tick():
        fired[0] += 1

    for i in range(n):
        sim.schedule(1.0 + (i * 7919) % 997, tick)
    sim.run()
    assert fired[0] == n
    return n


def _cascade(sim_factory: Callable, n: int) -> int:
    """Zero-delay callback chains: the ready-deque fast path.

    The heap is preloaded with pending far-future timers first — a
    steady-state run keeps thousands queued (heartbeats, retransmit
    guards), and that depth is what a zero-delay heappush/heappop pays
    on the all-heap engine.  The run stops before the background timers
    fire, so both engines do identical non-cascade work.
    """
    sim = sim_factory()
    noop = _noop
    for i in range(10_000):
        sim.schedule(1e9 + i, noop)
    left = [n]

    def tick():
        if left[0]:
            left[0] -= 1
            sim.schedule(0.0, tick)

    sim.schedule(0.0, tick)
    sim.run(until=1_000_000.0)
    assert left[0] == 0
    return n


def _timer_churn(sim_factory: Callable, n: int) -> int:
    """Guard-timer traffic: most timeouts are cancelled before firing.

    This is the shape RPC guards, heartbeats and election timers
    produce.  The reference engine cannot cancel (``cancel`` is a
    no-op there, as pre-fast-path code never removed entries), so it
    pays full heap churn for every dead timer — exactly the cost the
    lazy-cancellation path removes.
    """
    sim = sim_factory()
    fired = [0]
    for i in range(n):
        timer = sim.timeout(50.0 + (i % 13))
        timer.add_callback(lambda _ev: fired.__setitem__(0, fired[0] + 1))
        if i % 10:
            timer.cancel()
    sim.run()
    # The reference engine cannot cancel, so every timer fires there;
    # the fast engine fires only the kept 10%.
    assert fired[0] >= (n + 9) // 10
    return n


def _wheel_churn(sim_factory: Callable, n: int) -> int:
    """Cross-level wheel traffic.

    Delays span level-0, level-1 and level-2 slots (~1.7 simulated
    seconds); a quarter of the timers are cancelled and replaced by
    refires past the 2^24us horizon, so the overflow heap cascades back
    down through every level.  On the fast engine this exercises slot
    appends, cascades, lazy cancellation inside buckets and overflow
    refills; the reference engine pays plain heap churn for the same
    schedule.  The fired count is engine-independent: cancelled timers
    never carried a callback.
    """
    sim = sim_factory()
    fired = [0]

    def tick(_ev):
        fired[0] += 1

    doomed = []
    for i in range(n):
        delay = 1.0 + (i % 509) * 3301.0
        timer = sim.timeout(delay)
        if i % 4:
            timer.add_callback(tick)
        else:
            doomed.append(timer)
            refire = sim.timeout(delay + 16_777_216.0)
            refire.add_callback(tick)
    for timer in doomed:
        timer.cancel()
    sim.run()
    assert fired[0] == n
    return n


ENGINE_BENCHES = {
    "heap_churn": _heap_churn,
    "cascade": _cascade,
    "timer_churn": _timer_churn,
    "wheel_churn": _wheel_churn,
}


def _engine_section(n: int, repeat: int, log) -> Dict[str, Dict[str, float]]:
    section: Dict[str, Dict[str, float]] = {}
    for name, bench in ENGINE_BENCHES.items():
        # Interleave the engines within each repetition (A/B/A/B...)
        # so slow drift in host load biases neither side.
        best = {label: float("inf") for label in ENGINES}
        for _ in range(repeat):
            for label, factory in ENGINES.items():
                gc.collect()
                started = time.perf_counter()
                bench(factory, n)
                best[label] = min(best[label], time.perf_counter() - started)
        row: Dict[str, float] = {"events": n}
        for label in ENGINES:
            row[f"{label}_wall_s"] = best[label]
            row[f"{label}_events_per_s"] = n / best[label]
        row["speedup"] = row["reference_wall_s"] / row["fast_wall_s"]
        section[name] = row
        log(f"engine/{name}: {row['fast_events_per_s']:,.0f} ev/s "
            f"({row['speedup']:.2f}x vs reference)")
    return section


# -- RDMA loopback -----------------------------------------------------------


def _rdma_loopback(n: int) -> int:
    """n write+read verb pairs across a queue pair; returns verb count."""
    sim = engine.Simulator()
    fabric = Fabric(sim, rng=RngStreams(seed=1))
    target = fabric.add_host("target", cores=1)
    requester = fabric.add_host("requester", cores=2)
    listener = RdmaListener(target)
    region = MemoryRegion("data", 4096)
    listener.export(region)
    qp = QueuePair(Rnic(requester, fabric), listener)
    payload = b"x" * 64

    def proc():
        yield requester.spawn(qp.connect(["data"]))
        for _ in range(n):
            yield qp.write("data", 0, payload)
            yield qp.read("data", 0, 64)

    done = sim.spawn(proc(), name="rdma-loopback")
    sim.run()
    assert done.ok, done.exception
    return 2 * n


# -- fig5 smoke driver A/B ---------------------------------------------------


def _fig5_smoke(engine_name: str):
    """One (sift, read-heavy) Figure 5 point on the given engine."""
    previous = runner.SIMULATOR_FACTORY
    runner.SIMULATOR_FACTORY = ENGINES[engine_name]
    try:
        return run_throughput(
            sift_spec(cores=12, scale=SMOKE_SCALE),
            WORKLOADS["read-heavy"],
            n_clients=SMOKE_SCALE.clients,
            scale=SMOKE_SCALE,
            seed=1,
        )
    finally:
        runner.SIMULATOR_FACTORY = previous


def _fig5_section(repeat: int, log) -> Dict[str, object]:
    results = {}
    walls = {name: float("inf") for name in ENGINES}
    for _ in range(repeat):  # engines interleaved per repetition
        for name in ENGINES:
            gc.collect()
            started = time.perf_counter()
            results[name] = _fig5_smoke(name)
            walls[name] = min(walls[name], time.perf_counter() - started)
    fast, ref = results["fast"], results["reference"]
    identical = (fast.ops_per_sec, fast.completed, fast.errors) == (
        ref.ops_per_sec, ref.completed, ref.errors
    )
    if not identical:
        raise AssertionError(
            f"engines disagree on simulated numbers: fast={fast} reference={ref}"
        )
    section = {
        "system": "sift",
        "workload": "read-heavy",
        "simulated_ops_per_sec": fast.ops_per_sec,
        "completed": fast.completed,
        "fast_wall_s": walls["fast"],
        "reference_wall_s": walls["reference"],
        "fast_driver_ops_per_s": fast.completed / walls["fast"],
        "reference_driver_ops_per_s": fast.completed / walls["reference"],
        "speedup": walls["reference"] / walls["fast"],
        "simulated_identical": identical,
    }
    log(f"fig5-smoke: {section['fast_driver_ops_per_s']:,.0f} ops/s driven "
        f"({section['speedup']:.2f}x vs reference engine)")
    return section


# -- coalesced fig5 driver (the doorbell/coalescing payoff) ------------------

COALESCED_WORKLOAD = "write-only"
COALESCED_CLIENTS = 24


def _coalesced_point(engine_name: str, coalesced: bool):
    """One write-only Figure 5 point; *coalesced* turns on the batching
    stack (doorbell verb flushes + WAL-append coalescing)."""
    previous = runner.SIMULATOR_FACTORY
    runner.SIMULATOR_FACTORY = ENGINES[engine_name]
    try:
        spec = sift_spec(
            cores=12,
            scale=SMOKE_SCALE,
            kv_overrides={"coalesce_appends": True} if coalesced else None,
            sift_overrides={"doorbell_batching": True} if coalesced else None,
        )
        return run_throughput(
            spec,
            WORKLOADS[COALESCED_WORKLOAD],
            n_clients=COALESCED_CLIENTS,
            scale=SMOKE_SCALE,
            seed=1,
        )
    finally:
        runner.SIMULATOR_FACTORY = previous


def _coalesced_fig5_section(repeat: int, log) -> Dict[str, object]:
    """Four-way grid: {fast, reference} engine x {plain, coalesced} stack.

    Within each stack the two engines must agree on the simulated
    numbers bit-for-bit (the A/B guarantee); across stacks the simulated
    numbers legitimately differ — that is the modelled amortization.
    ``driven_speedup`` is the headline: the pre-batching stack
    (reference engine, per-record appends, per-verb doorbells) against
    the full stack (timer wheel + doorbell batching + append coalescing)
    driving the same workload.
    """
    grid = [(name, mode) for name in ENGINES for mode in (False, True)]
    results: Dict[tuple, object] = {}
    walls = {key: float("inf") for key in grid}
    for _ in range(repeat):  # engines and stacks interleaved per repetition
        for key in grid:
            gc.collect()
            started = time.perf_counter()
            results[key] = _coalesced_point(*key)
            walls[key] = min(walls[key], time.perf_counter() - started)
    for mode in (False, True):
        fast, ref = results[("fast", mode)], results[("reference", mode)]
        if (fast.ops_per_sec, fast.completed, fast.errors) != (
            ref.ops_per_sec, ref.completed, ref.errors
        ):
            raise AssertionError(
                f"engines disagree on simulated numbers (coalesced={mode}): "
                f"fast={fast} reference={ref}"
            )
    plain = results[("fast", False)]
    coal = results[("fast", True)]
    section = {
        "system": "sift",
        "workload": COALESCED_WORKLOAD,
        "clients": COALESCED_CLIENTS,
        "plain_ops_per_sec": plain.ops_per_sec,
        "coalesced_ops_per_sec": coal.ops_per_sec,
        "simulated_speedup": coal.ops_per_sec / plain.ops_per_sec,
        "fast_plain_wall_s": walls[("fast", False)],
        "fast_coalesced_wall_s": walls[("fast", True)],
        "reference_plain_wall_s": walls[("reference", False)],
        "reference_coalesced_wall_s": walls[("reference", True)],
        "engine_speedup": walls[("reference", False)] / walls[("fast", False)],
        "amortization_speedup": walls[("fast", False)] / walls[("fast", True)],
        "driven_speedup": walls[("reference", False)] / walls[("fast", True)],
        "simulated_identical": True,
    }
    log(
        f"coalesced-fig5: {section['coalesced_ops_per_sec']:,.0f} ops/s simulated "
        f"({section['simulated_speedup']:.2f}x vs plain), driven "
        f"{section['driven_speedup']:.2f}x vs pre-batching stack"
    )
    return section


# -- open-loop arrival generation vs per-client scalar loop ------------------

OPENLOOP_SHARDS = 2
OPENLOOP_WINDOW = 4_096
OPENLOOP_POPULATION = 1_000_000


def _openloop_generators():
    """Two :class:`ArrivalGenerator` instances on identical seeds.

    Both draw from the same named RNG streams, so the vectorized batch
    path and the scalar per-op path (what a closed-loop client pool
    performs per operation: one Zipf CDF inversion, one coin flip, one
    client draw, one key render + SHA-1 ring walk) must produce
    identical columns — "equal simulated results".
    """
    from repro.shard.hashing import HashRing
    from repro.workloads.generator import StripedZipfSampler
    from repro.workloads.openloop import ArrivalGenerator

    def build():
        sim = engine.Simulator()
        fabric = Fabric(sim, rng=RngStreams(seed=1))
        ring = HashRing([f"shard{i}" for i in range(OPENLOOP_SHARDS)])
        sampler = StripedZipfSampler(SMOKE_SCALE.keys, ring)
        generator = ArrivalGenerator(
            fabric,
            WORKLOADS["read-heavy"],
            sampler,
            n_clients=OPENLOOP_POPULATION,
            n_shards=OPENLOOP_SHARDS,
        )
        return generator, ring

    return build


def _openloop_generator_section(arrivals: int, repeat: int, log) -> Dict[str, object]:
    """Arrival-generation throughput: vectorized batches vs scalar loop.

    The scalar side charges exactly the per-op work of today's
    closed-loop pool inner loop (``ZipfSampler.sample`` + coin + ring
    walk); the vectorized side is the open-loop engine's per-window
    batch.  Column equality is asserted outside the timed region, so
    the ratio compares equal work, not approximately-similar work.
    """
    import numpy as np

    build = _openloop_generators()
    windows = max(1, arrivals // OPENLOOP_WINDOW)
    count = windows * OPENLOOP_WINDOW

    # Equality check (untimed): the two paths draw identical columns.
    vector_gen, _ = build()
    scalar_gen, ring = build()
    probe = min(OPENLOOP_WINDOW, count)
    vector_batch = vector_gen.batch(probe)
    scalar_batch = scalar_gen.scalar_batch(probe, ring=ring)
    identical = all(
        np.array_equal(a, b) for a, b in zip(vector_batch, scalar_batch)
    )
    if not identical:
        raise AssertionError(
            "vectorized and scalar arrival columns disagree on equal seeds"
        )

    # Timed region: generation only.  The generators are built once —
    # consuming further along the same streams costs the same per draw,
    # and sampler construction is figure *setup*, not arrival throughput.
    def vector_run() -> int:
        for _ in range(windows):
            vector_gen.batch(OPENLOOP_WINDOW)
        return count

    def scalar_run() -> int:
        for _ in range(windows):
            scalar_gen.scalar_batch(OPENLOOP_WINDOW, ring=ring)
        return count

    vector = _timed(vector_run, repeat)
    scalar = _timed(scalar_run, repeat)
    section = {
        "arrivals": count,
        "window": OPENLOOP_WINDOW,
        "shards": OPENLOOP_SHARDS,
        "clients_population": OPENLOOP_POPULATION,
        "vector_wall_s": vector["wall_s"],
        "scalar_wall_s": scalar["wall_s"],
        "vector_arrivals_per_s": vector["per_s"],
        "scalar_arrivals_per_s": scalar["per_s"],
        "generation_speedup": scalar["wall_s"] / vector["wall_s"],
        "columns_identical": identical,
    }
    log(
        f"openloop generator: {vector['per_s']:,.0f} arrivals/s vectorized "
        f"({section['generation_speedup']:.1f}x the scalar per-client loop)"
    )
    return section


# -- parallel sweep scaling --------------------------------------------------


def _sweep_points():
    return [
        Point(
            key=f"{system}/read-heavy",
            fn=throughput_point,
            kwargs={
                "system": system,
                "workload": "read-heavy",
                "clients": SMOKE_SCALE.clients,
                "cores": 12,
                "scale": SMOKE_SCALE,
                "seed": 1,
            },
        )
        for system in ("sift", "raft-r")
    ]


def _parallel_section(log) -> Dict[str, float]:
    walls = {}
    values = {}
    for jobs in (1, 2):
        gc.collect()
        started = time.perf_counter()
        values[jobs] = run_points(_sweep_points(), jobs=jobs)
        walls[jobs] = time.perf_counter() - started
    if values[1] != values[2]:
        raise AssertionError(
            f"job counts disagree: jobs1={values[1]} jobs2={values[2]}"
        )
    section = {
        "points": 2,
        "jobs1_wall_s": walls[1],
        "jobs2_wall_s": walls[2],
        "scaling": walls[1] / walls[2],
        "results_identical": True,
    }
    log(f"parallel sweep: jobs=2 is {section['scaling']:.2f}x jobs=1 "
        "(expect ~1.0 on a single-core host)")
    return section


# -- perf-regression gate ----------------------------------------------------

FLOORS_PATH = Path(__file__).resolve().parents[3] / "benchmarks" / "perf" / "perf_floors.json"


def load_floors(path: Optional[Path] = None) -> Dict[str, float]:
    """Load the committed ratio floors (``{"floors": {dotted.path: min}}``)."""
    with open(path or FLOORS_PATH) as fh:
        data = json.load(fh)
    return {str(key): float(value) for key, value in data["floors"].items()}


def check_floors(
    results: Dict[str, object], floors: Dict[str, float]
) -> List[str]:
    """Check every floored metric; returns human-readable violations.

    Keys are dotted paths into the results dict
    (``engine.heap_churn.speedup``).  A missing path is itself a
    violation — a renamed or dropped scenario must not silently pass.
    """
    violations: List[str] = []
    for dotted, floor in sorted(floors.items()):
        node: object = results
        for part in dotted.split("."):
            if not isinstance(node, dict) or part not in node:
                violations.append(f"{dotted}: metric missing from results")
                node = None
                break
            node = node[part]
        if node is None:
            continue
        value = float(node)  # type: ignore[arg-type]
        if value < floor:
            violations.append(f"{dotted}: {value:.2f} < floor {floor:.2f}")
    return violations


# -- harness -----------------------------------------------------------------


def run_perfbench(
    events: int = 200_000,
    rdma_verbs: int = 5_000,
    repeat: int = 3,
    arrivals: int = 100_000,
    log: Callable[[str], None] = lambda line: print(line, file=sys.stderr),
) -> Dict[str, object]:
    """Run every section; returns the artifact's results dict."""
    results: Dict[str, object] = {}
    results["engine"] = _engine_section(events, repeat, log)
    timing = _timed(lambda: _rdma_loopback(rdma_verbs), repeat)
    results["rdma_loopback"] = {
        "verbs": timing["count"],
        "wall_s": timing["wall_s"],
        "verbs_per_s": timing["per_s"],
    }
    log(f"rdma loopback: {timing['per_s']:,.0f} verbs/s")
    results["fig5_smoke"] = _fig5_section(repeat, log)
    results["coalesced_fig5"] = _coalesced_fig5_section(repeat, log)
    results["openloop_generator"] = _openloop_generator_section(
        arrivals, repeat, log
    )
    results["parallel_sweep"] = _parallel_section(log)
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perfbench",
        description="Measure host events/sec, verbs/sec and engine speedups.",
    )
    parser.add_argument("--out-dir", default="bench_artifacts",
                        help="directory for the PERF_perfbench.json artifact")
    parser.add_argument("--events", type=int, default=200_000,
                        help="events per engine microbenchmark")
    parser.add_argument("--rdma-verbs", type=int, default=5_000,
                        help="verb pairs for the RDMA loopback benchmark")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per measurement (best-of)")
    parser.add_argument("--arrivals", type=int, default=100_000,
                        help="arrivals for the open-loop generator benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="CI sizing: fewer events, single repetition")
    parser.add_argument("--gate", action="store_true",
                        help="check fast-vs-reference ratios against the "
                             "committed floors and exit non-zero on any miss")
    parser.add_argument("--floors", default=None,
                        help="override the floors file "
                             f"(default: {FLOORS_PATH})")
    args = parser.parse_args(argv)
    if args.quick:
        args.events = min(args.events, 50_000)
        args.rdma_verbs = min(args.rdma_verbs, 2_000)
        args.arrivals = min(args.arrivals, 32_768)
        args.repeat = 1
    if args.gate:
        # Ratios from a single repetition are too noisy to gate on
        # (best-of-1 conflates engine speed with scheduler jitter).
        args.repeat = max(args.repeat, 2)
        floors = load_floors(Path(args.floors) if args.floors else None)

    results = run_perfbench(
        events=args.events, rdma_verbs=args.rdma_verbs, repeat=args.repeat,
        arrivals=args.arrivals,
    )
    engine_rows = [
        (f"engine/{name}",
         f"{row['fast_events_per_s']:,.0f} ev/s, {row['speedup']:.2f}x")
        for name, row in results["engine"].items()
    ]
    fig5 = results["fig5_smoke"]
    coalesced = results["coalesced_fig5"]
    openloop = results["openloop_generator"]
    sweep = results["parallel_sweep"]
    print(kv_table(
        "perfbench: wall-clock rates (fast engine, speedup vs reference)",
        engine_rows + [
            ("rdma loopback",
             f"{results['rdma_loopback']['verbs_per_s']:,.0f} verbs/s"),
            ("fig5 smoke point",
             f"{fig5['fast_driver_ops_per_s']:,.0f} ops/s, "
             f"{fig5['speedup']:.2f}x"),
            ("coalesced fig5 point",
             f"{coalesced['simulated_speedup']:.2f}x simulated, "
             f"{coalesced['driven_speedup']:.2f}x driven"),
            ("openloop generator",
             f"{openloop['vector_arrivals_per_s']:,.0f} arrivals/s, "
             f"{openloop['generation_speedup']:.1f}x scalar loop"),
            ("sweep jobs=2 vs jobs=1", f"{sweep['scaling']:.2f}x"),
        ],
    ))
    path = write_perf_artifact(
        args.out_dir,
        "perfbench",
        results,
        params={
            "events": args.events,
            "rdma_verbs": args.rdma_verbs,
            "repeat": args.repeat,
            "arrivals": args.arrivals,
            "scale": "smoke",
        },
    )
    print(f"  wrote {path}", file=sys.stderr)
    if args.gate:
        violations = check_floors(results, floors)
        if violations:
            for violation in violations:
                print(f"PERF-GATE FAIL {violation}", file=sys.stderr)
            return 1
        print(f"PERF-GATE OK ({len(floors)} floors held)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
