"""The common exception hierarchy.

Every modelled failure the harness can surface — protocol errors
(:mod:`repro.core.errors`), network faults (:mod:`repro.net.errors`),
RDMA verb failures (:mod:`repro.rdma.errors`), and client-level request
failures — derives from :class:`ReproError`, so callers can catch one
base class and branch on :attr:`ReproError.retryable` instead of
memorising which subsystem raised what:

    try:
        yield from client.put(key, value)
    except ReproError as exc:
        if not exc.retryable:
            raise

``retryable`` means "the same request may succeed if reissued (possibly
against another node) without any operator intervention": timeouts,
deposed coordinators, and unreachable hosts are retryable; protection
faults and misuse of the API are not.  The historical per-subsystem
names (``SiftError``, ``NetworkError``, ``RdmaError``,
``KvRequestFailed``, ...) remain importable from their original modules
as subclasses, so existing ``except`` clauses keep working unchanged.
"""

from __future__ import annotations

__all__ = ["ReproError"]


class ReproError(Exception):
    """Base class for every modelled failure in the harness.

    Subclasses set :attr:`retryable` as a class attribute; it is a
    property of the failure *kind*, not of one instance.
    """

    retryable: bool = False
