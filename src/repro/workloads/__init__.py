"""Workload generation (§6.2).

Four workload mixes — write-only, mixed (50/50), read-heavy (90/10) and
read-only — over a Zipfian (theta = 0.99) or uniform key popularity
distribution, driven either by pools of closed-loop clients
(:class:`ClientPool`) or by the vectorized open-loop arrival engine
(:class:`OpenLoopEngine`, millions of simulated clients per run).
"""

from repro.workloads.clients import ClientPool
from repro.workloads.generator import (
    WORKLOADS,
    KeySampler,
    StripedZipfSampler,
    UniformSampler,
    WorkloadMix,
    ZipfSampler,
    flip_batch,
    uniform_batch,
)
from repro.workloads.openloop import (
    AdmissionControl,
    ArrivalBatch,
    ArrivalGenerator,
    OpenLoopEngine,
    ShardLane,
    TokenBucket,
    poisson_count,
)
from repro.workloads.retry import DEFAULT_RETRY_POLICY, RetryOutcome, RetryPolicy

__all__ = [
    "AdmissionControl",
    "ArrivalBatch",
    "ArrivalGenerator",
    "ClientPool",
    "DEFAULT_RETRY_POLICY",
    "KeySampler",
    "OpenLoopEngine",
    "RetryOutcome",
    "RetryPolicy",
    "ShardLane",
    "StripedZipfSampler",
    "TokenBucket",
    "UniformSampler",
    "WORKLOADS",
    "WorkloadMix",
    "ZipfSampler",
    "flip_batch",
    "poisson_count",
    "uniform_batch",
]
