"""Workload generation (§6.2).

Four workload mixes — write-only, mixed (50/50), read-heavy (90/10) and
read-only — over a Zipfian (theta = 0.99) or uniform key popularity
distribution, driven by pools of closed-loop clients.
"""

from repro.workloads.clients import ClientPool
from repro.workloads.generator import (
    WORKLOADS,
    KeySampler,
    StripedZipfSampler,
    UniformSampler,
    WorkloadMix,
    ZipfSampler,
)

__all__ = [
    "ClientPool",
    "KeySampler",
    "StripedZipfSampler",
    "UniformSampler",
    "WORKLOADS",
    "WorkloadMix",
    "ZipfSampler",
]
