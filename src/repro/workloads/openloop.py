"""Vectorized open-loop load generation (ROADMAP item 5).

The closed-loop :class:`~repro.workloads.clients.ClientPool` runs one
Python generator per client, so a run can afford tens of clients — and
a closed-loop client, by construction, slows its arrival rate down to
whatever the service can absorb, hiding exactly the queueing collapse
the "millions of users" claim is about.  This module models the client
population as an open-loop arrival *process* instead:

* arrivals are drawn per timer window in bulk — a deterministic
  Poisson count (:func:`poisson_count`), then one vectorized batch of
  Zipf ranks, read/write coins, client ids and shard assignments
  (:class:`ArrivalGenerator`) — so a window costs O(one numpy batch),
  not O(one coroutine step per client);
* admission control sheds what the configured policy refuses to queue
  (token-bucket throttle, bounded per-shard backlog) and *counts* the
  sheds instead of silently slowing down;
* a bounded in-flight window per shard (:class:`ShardLane` +
  ``max_inflight`` dispatcher processes) issues the admitted ops
  through ordinary :class:`~repro.kv.client.KvClient` calls, with
  failures routed through a :class:`~repro.workloads.retry.RetryPolicy`;
* completions feed per-shard ``openloop.latency_us`` SLO histograms
  (p50/p99/p99.9) and offered/admitted/shed/achieved accounting.

Everything is deterministic in the fabric seed: arrival counts and all
per-arrival draws come from named :class:`~repro.sim.rng.RngStreams`
via :func:`~repro.workloads.generator.uniform_batch`, which reproduces
the scalar ``rng.random()`` stream bit for bit.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Dict, List, NamedTuple, Optional

import numpy as np

from repro.kv.client import KvClient
from repro.net.fabric import Fabric
from repro.obs import state as obs_state
from repro.sim.units import MS
from repro.workloads.generator import (
    KeySampler,
    WorkloadMix,
    flip_batch,
    uniform_batch,
)
from repro.workloads.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "poisson_count",
    "ArrivalBatch",
    "ArrivalGenerator",
    "TokenBucket",
    "AdmissionControl",
    "ShardLane",
    "OpenLoopEngine",
]

#: Poisson chunk cap: exp(-500) ~ 7e-218 keeps the Knuth threshold far
#: from double-precision underflow while letting one chunk cover most
#: realistic per-window rates in a single vectorized block.
_POISSON_CHUNK = 500.0


def poisson_count(rng, lam: float) -> int:
    """One Poisson(*lam*) draw from *rng*, deterministic and fast.

    Exact Knuth sampling — count uniforms until their running product
    falls below ``exp(-lam)`` — with two twists for the open-loop
    engine's per-window rates: *lam* is split into chunks of at most
    :data:`_POISSON_CHUNK` (Poisson is additive, and the per-chunk
    threshold then never approaches underflow), and each chunk consumes
    its uniforms through :func:`uniform_batch` + ``np.cumprod`` rather
    than one scalar ``rng.random()`` call per event.  ``np.cumprod``
    emits every prefix product, so within a chunk the stopping index —
    and therefore the count — is bit-identical to the scalar loop's
    (pinned by ``tests/test_openloop.py``); only the *number of
    uniforms consumed* differs, because blocks over-draw past the
    stopping point.  For multi-chunk rates (lam above the cap, which
    no per-window engine rate reaches) that over-draw shifts where the
    next chunk starts on the stream, so the total matches a scalar
    replay only chunk-wise, not end-to-end — still fully deterministic
    in the seed.

    numpy's own Poisson generator is deliberately not used: stream
    reproducibility across numpy versions is not part of this repo's
    determinism contract — the python-``random`` Mersenne Twister
    stream is.
    """
    if lam <= 0.0:
        return 0
    total = 0
    remaining = float(lam)
    while remaining > 0.0:
        step = min(remaining, _POISSON_CHUNK)
        remaining -= step
        threshold = math.exp(-step)
        # First block covers the mean plus ~8 sigma; extensions are rare.
        block = int(step + 8.0 * math.sqrt(step)) + 16
        product = 1.0
        count = 0
        while True:
            prefix = product * np.cumprod(uniform_batch(rng, block))
            below = np.flatnonzero(prefix <= threshold)
            if len(below):
                count += int(below[0])
                break
            count += block
            product = float(prefix[-1])
            block = 64
        total += count
    return total


class TokenBucket:
    """A deterministic token bucket (*rate* tokens/s, *burst* capacity)."""

    __slots__ = ("rate_per_sec", "burst", "tokens")

    def __init__(self, rate_per_sec: float, burst: float):
        if rate_per_sec < 0 or burst < 0:
            raise ValueError("token bucket rate and burst must be non-negative")
        self.rate_per_sec = rate_per_sec
        self.burst = burst
        self.tokens = burst  # starts full

    def refill(self, elapsed_us: float) -> None:
        """Credit *elapsed_us* of rate, clamped at the burst capacity."""
        self.tokens = min(
            self.burst, self.tokens + self.rate_per_sec * elapsed_us / 1e6
        )

    def take(self, n: int) -> int:
        """Admit up to *n* whole ops; returns how many got tokens."""
        admitted = min(int(n), int(self.tokens))
        if admitted > 0:
            self.tokens -= admitted
            return admitted
        return 0


class AdmissionControl(NamedTuple):
    """Client-side backpressure policy for the open-loop engine.

    ``max_inflight`` bounds concurrently issued ops per shard (it is the
    number of dispatcher processes per lane); ``queue_limit`` bounds the
    backlog waiting behind them — arrivals past it are shed with reason
    ``queue``.  ``rate_ops_per_sec`` adds a token-bucket throttle ahead
    of the queues (reason ``throttle``); ``None`` disables it.  The
    default burst is 50 ms of rate.
    """

    max_inflight: int = 16
    queue_limit: int = 512
    rate_ops_per_sec: Optional[float] = None
    burst_ops: Optional[float] = None

    def bucket(self) -> Optional[TokenBucket]:
        if self.rate_ops_per_sec is None:
            return None
        burst = self.burst_ops
        if burst is None:
            burst = self.rate_ops_per_sec * 0.05
        return TokenBucket(self.rate_ops_per_sec, burst)


class ArrivalBatch(NamedTuple):
    """One window's arrivals, column-wise."""

    ranks: np.ndarray  #: int64 key ranks
    writes: np.ndarray  #: bool write flags
    shards: np.ndarray  #: int64 owning-shard indices
    clients: np.ndarray  #: int64 issuing-client ids in [0, n_clients)

    @property
    def count(self) -> int:
        return len(self.ranks)


class ArrivalGenerator:
    """Vectorized draws for a population of *n_clients* open-loop clients.

    Four named RNG streams (arrivals, keys, coins, clients) keep every
    column's randomness independent and seed-deterministic.  Shard
    assignment uses the sampler's ``shard_index_batch`` when it has one
    (the striped-Zipf ``rank % G`` invariant); single-target clusters
    get shard 0 for every arrival.

    :meth:`scalar_batch` draws the same columns one op at a time — the
    closed-loop pool's inner loop, consuming the same streams to the
    same values — and exists for the equivalence tests and the
    perfbench closed-loop baseline.
    """

    def __init__(
        self,
        fabric: Fabric,
        mix: WorkloadMix,
        sampler: KeySampler,
        n_clients: int,
        n_shards: int = 1,
        name: str = "openloop",
    ):
        if n_clients < 1:
            raise ValueError(f"need at least one client, got {n_clients}")
        sampler_shards = getattr(sampler, "n_shards", None)
        if sampler_shards is not None and sampler_shards != n_shards:
            raise ValueError(
                f"sampler stripes {sampler_shards} shards, engine has {n_shards}"
            )
        self.mix = mix
        self.sampler = sampler
        self.n_clients = n_clients
        self.n_shards = n_shards
        self._arrival_rng = fabric.rng.stream(f"{name}:arrivals")
        self._key_rng = fabric.rng.stream(f"{name}:keys")
        self._coin_rng = fabric.rng.stream(f"{name}:coins")
        self._client_rng = fabric.rng.stream(f"{name}:clients")

    def window_count(self, lam: float) -> int:
        """Poisson arrival count for one window of offered load *lam*."""
        return poisson_count(self._arrival_rng, lam)

    def _assign_shards(self, ranks: np.ndarray) -> np.ndarray:
        assign = getattr(self.sampler, "shard_index_batch", None)
        if assign is not None:
            return assign(ranks)
        return np.zeros(len(ranks), dtype=np.int64)

    def batch(self, n: int) -> ArrivalBatch:
        """Draw *n* arrivals in one vectorized pass."""
        ranks = self.sampler.sample_batch(self._key_rng, n)
        writes = flip_batch(self._coin_rng, n, self.mix.write_fraction)
        clients = (uniform_batch(self._client_rng, n) * self.n_clients).astype(
            np.int64
        )
        return ArrivalBatch(ranks, writes, self._assign_shards(ranks), clients)

    def scalar_batch(self, n: int, ring=None) -> ArrivalBatch:
        """Draw *n* arrivals one scalar op at a time (same streams).

        With *ring* the shard column is resolved the way a closed-loop
        router would — render the key, SHA-1 it, walk the ring — instead
        of through the striped ``rank % G`` invariant; the result is
        identical for striped samplers, which is the point: perfbench
        charges the baseline the work a real per-client loop performs.
        """
        ranks = np.empty(n, dtype=np.int64)
        writes = np.empty(n, dtype=bool)
        shards = np.empty(n, dtype=np.int64)
        clients = np.empty(n, dtype=np.int64)
        sampler = self.sampler
        write_fraction = self.mix.write_fraction
        shard_ids = (
            {name: index for index, name in enumerate(ring.shards)}
            if ring is not None
            else None
        )
        for i in range(n):
            rank = sampler.sample(self._key_rng)
            ranks[i] = rank
            writes[i] = self._coin_rng.random() < write_fraction
            clients[i] = int(self._client_rng.random() * self.n_clients)
            if ring is not None:
                shards[i] = shard_ids[ring.shard_for(sampler.key(rank))]
            elif self.n_shards > 1:
                shards[i] = rank % self.n_shards
            else:
                shards[i] = 0
        return ArrivalBatch(ranks, writes, shards, clients)


class ShardLane(object):
    """One shard's bounded backlog and in-flight window."""

    __slots__ = (
        "sim",
        "index",
        "name",
        "queue_limit",
        "pending",
        "wake",
        "inflight",
        "inflight_peak",
        "queued_peak",
    )

    def __init__(self, sim, index: int, name: str, queue_limit: int):
        self.sim = sim
        self.index = index
        self.name = name
        self.queue_limit = queue_limit
        self.pending: deque = deque()
        self.wake = sim.event()
        self.inflight = 0
        self.inflight_peak = 0
        self.queued_peak = 0

    def kick(self) -> None:
        """Wake every dispatcher parked on this lane."""
        wake, self.wake = self.wake, self.sim.event()
        wake.trigger()


class OpenLoopEngine:
    """Open-loop load against one cluster (sharded or single-group).

    One ticker process draws each window's arrivals in bulk; per shard,
    ``admission.max_inflight`` dispatcher processes (each with its own
    client host) drain the lane's backlog through the retry policy.
    Between :meth:`begin_measurement` and :meth:`end_measurement`,
    completions are recorded into per-shard ``openloop.latency_us`` SLO
    histograms (latency includes queue wait — arrivals are stamped at
    their window tick) and the offered/admitted/shed/completed
    counters.
    """

    def __init__(
        self,
        fabric: Fabric,
        cluster,
        mix: WorkloadMix,
        sampler: KeySampler,
        offered_ops_per_sec: float,
        n_clients: int,
        window_us: float = 1 * MS,
        admission: Optional[AdmissionControl] = None,
        retry: Optional[RetryPolicy] = None,
        value_bytes: int = 992,
        name: str = "openloop",
        client_factory: Optional[Callable] = None,
        elastic: bool = False,
    ):
        if offered_ops_per_sec < 0:
            raise ValueError("offered load must be non-negative")
        if window_us <= 0:
            raise ValueError("window must be positive")
        self.fabric = fabric
        self.sim = fabric.sim
        self.cluster = cluster
        self.mix = mix
        self.offered_ops_per_sec = offered_ops_per_sec
        self.window_us = window_us
        self.admission = admission or AdmissionControl()
        self.retry = retry or DEFAULT_RETRY_POLICY
        self.name = name
        self._value = b"v" * value_bytes
        self._client_factory = client_factory or KvClient
        groups = getattr(cluster, "groups", None)
        self._targets: List = list(groups) if groups else [cluster]
        self.generator = ArrivalGenerator(
            fabric, mix, sampler, n_clients,
            n_shards=len(self._targets), name=name,
        )
        self.lanes = [
            ShardLane(
                self.sim,
                index,
                getattr(target, "name", f"shard{index}"),
                self.admission.queue_limit,
            )
            for index, target in enumerate(self._targets)
        ]
        # Elastic mode (opt-in, off for the committed fixed-topology
        # baselines): follow the service's ring version, adding lanes and
        # dispatchers for shards the control plane splits in, and route
        # each arrival by its key's *current* owner instead of the
        # striping invariant — keys whose arcs moved land on the new
        # shard's lane the window after cutover.
        self.elastic = elastic
        self._ring_version = -1
        self._lane_pos = {lane.name: lane.index for lane in self.lanes}
        self._key_lane: Optional[np.ndarray] = None
        if elastic:
            if getattr(cluster, "ring", None) is None:
                raise ValueError("elastic mode needs a sharded cluster")
            if not hasattr(sampler, "all_keys"):
                raise ValueError("elastic mode needs a striped key sampler")
        self._bucket = self.admission.bucket()
        self._seen = np.zeros(n_clients, dtype=bool)
        self.counts: Dict[str, int] = {
            "offered": 0, "admitted": 0, "completed": 0,
            "errors": 0, "retries": 0,
        }
        self.shed: Dict[str, int] = {"throttle": 0, "queue": 0}
        self.ops: Dict[str, int] = {"read": 0, "write": 0}
        self.measuring = False
        self.running = False
        self.measure_start_us = 0.0
        self.measure_end_us = 0.0
        self._slo_cache: Dict = {}
        self._slo_phase: Optional[str] = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Spawn the arrival ticker and every lane's dispatchers."""
        self.running = True
        self.sim.spawn(self._ticker(), name=f"{self.name}-ticker")
        for lane, target in zip(self.lanes, self._targets):
            self._spawn_lane(lane, target)

    def _spawn_lane(self, lane: "ShardLane", target) -> None:
        for slot in range(self.admission.max_inflight):
            host = self.fabric.add_host(
                f"{self.name}-{lane.name}-d{slot}", cores=2
            )
            client = self._client_factory(host, self.fabric, target)
            if hasattr(client, "prefer"):
                client.prefer(slot)
            host.spawn(
                self._dispatcher(lane, client),
                name=f"{self.name}-{lane.name}-d{slot}",
            )

    def _elastic_sync(self) -> None:
        """Converge lanes and routing onto the service's current ring."""
        ring = self.cluster.ring
        if ring.version == self._ring_version:
            return
        for shard in ring.shards:
            if shard not in self._lane_pos:
                lane = ShardLane(
                    self.sim, len(self.lanes), shard, self.admission.queue_limit
                )
                self.lanes.append(lane)
                self._lane_pos[shard] = lane.index
                target = self.cluster._group(shard)
                self._targets.append(target)
                if self.running:
                    self._spawn_lane(lane, target)
        # Route by current ownership: one vectorized ring lookup over
        # the (fixed) key table per ring version, then O(1) per arrival.
        owners = ring.shard_index_batch(self.generator.sampler.all_keys())
        positions = np.array(
            [self._lane_pos[name] for name in ring.shards], dtype=np.int64
        )
        self._key_lane = positions[owners]
        self._ring_version = ring.version

    def stop(self) -> None:
        """Stop generating; parked dispatchers exit, in-flight ops drain."""
        self.running = False
        for lane in self.lanes:
            lane.kick()

    def begin_measurement(self, phase: Optional[str] = None) -> None:
        """Zero the accounting; subsequent completions are recorded.

        *phase* names the window: it rides along as an extra SLO-metric
        label, so multi-window runs (figHotspot's before/after shift)
        get independent tail histograms instead of one accumulated one.
        Left unset, metric keys are unchanged from single-window runs.
        """
        self._slo_phase = phase
        for key in self.counts:
            self.counts[key] = 0
        for key in self.shed:
            self.shed[key] = 0
        for key in self.ops:
            self.ops[key] = 0
        self._slo_cache = {}
        self.measure_start_us = self.sim.now
        self.measuring = True

    def end_measurement(self) -> None:
        self.measuring = False
        self.measure_end_us = self.sim.now

    # -- derived numbers ---------------------------------------------------------

    @property
    def clients_active(self) -> int:
        """Distinct simulated clients that issued at least one arrival."""
        return int(self._seen.sum())

    def achieved_ops_per_sec(self) -> float:
        window_us = self.measure_end_us - self.measure_start_us
        if window_us <= 0:
            return 0.0
        return self.counts["completed"] / (window_us / 1e6)

    def inflight_peaks(self) -> Dict[str, int]:
        return {lane.name: lane.inflight_peak for lane in self.lanes}

    def snapshot(self):
        """Engine accounting under the shared stats protocol."""
        from repro.obs.stats import StatsSnapshot

        counters = {key: float(value) for key, value in self.counts.items()}
        for reason, value in self.shed.items():
            counters[f"shed_{reason}"] = float(value)
        for op, value in self.ops.items():
            counters[f"completed_{op}"] = float(value)
        return StatsSnapshot(
            kind="openloop",
            name=self.name,
            counters=counters,
            gauges={
                "offered_ops_per_sec": float(self.offered_ops_per_sec),
                "achieved_ops_per_sec": self.achieved_ops_per_sec(),
                "clients_active": float(self.clients_active),
                "lanes": float(len(self.lanes)),
                "ring_version": float(self._ring_version),
            },
        )

    def slo_summary(self) -> Dict[str, Dict[str, dict]]:
        """``{shard: {op: SloHistogram.summary()}}`` for measured ops."""
        out: Dict[str, Dict[str, dict]] = {}
        for (lane_name, op), histogram in sorted(self._slo_cache.items()):
            out.setdefault(lane_name, {})[op] = histogram.summary()
        return out

    def publish(self, registry, prefix: str = "openloop") -> None:
        """Write the run's accounting into *registry* (once, at the end)."""
        for key, value in self.counts.items():
            registry.counter(f"{prefix}.{key}").inc(value)
        for reason, value in self.shed.items():
            registry.counter(f"{prefix}.shed", reason=reason).inc(value)
        for op, value in self.ops.items():
            registry.counter(f"{prefix}.completed_ops", op=op).inc(value)
        registry.gauge(f"{prefix}.offered_ops_per_sec").set(
            self.offered_ops_per_sec
        )
        registry.gauge(f"{prefix}.achieved_ops_per_sec").set(
            self.achieved_ops_per_sec()
        )
        registry.gauge(f"{prefix}.clients_active").set(self.clients_active)
        registry.gauge(f"{prefix}.clients_population").set(
            self.generator.n_clients
        )
        for lane in self.lanes:
            registry.gauge(f"{prefix}.inflight_peak", shard=lane.name).set(
                lane.inflight_peak
            )
            registry.gauge(f"{prefix}.queued_peak", shard=lane.name).set(
                lane.queued_peak
            )

    # -- processes ---------------------------------------------------------------

    def _ticker(self):
        sim = self.sim
        while self.running:
            self._tick()
            yield sim.timeout(self.window_us)

    def _tick(self) -> None:
        """Draw one window's arrivals, admit, enqueue, wake lanes."""
        if self.elastic:
            self._elastic_sync()
        lam = self.offered_ops_per_sec * self.window_us / 1e6
        n = self.generator.window_count(lam)
        if self.measuring:
            self.counts["offered"] += n
        if n == 0:
            return
        batch = self.generator.batch(n)
        self._seen[batch.clients] = True
        admitted = n
        if self._bucket is not None:
            self._bucket.refill(self.window_us)
            admitted = self._bucket.take(n)
            if self.measuring:
                self.shed["throttle"] += n - admitted
            if admitted == 0:
                return
        now = self.sim.now
        if self._key_lane is not None:
            key_indices = self.generator.sampler.key_index_batch(
                batch.ranks[:admitted]
            )
            shards = self._key_lane[key_indices]
        else:
            shards = batch.shards[:admitted]
        for lane in self.lanes:
            lane_indices = np.flatnonzero(shards == lane.index)
            if not len(lane_indices):
                continue
            pending = lane.pending
            space = lane.queue_limit - len(pending)
            if space < len(lane_indices):
                if self.measuring:
                    self.shed["queue"] += len(lane_indices) - max(space, 0)
                if space <= 0:
                    continue
                lane_indices = lane_indices[:space]
            lane_ranks = batch.ranks[lane_indices].tolist()
            lane_writes = batch.writes[lane_indices].tolist()
            for rank, is_write in zip(lane_ranks, lane_writes):
                pending.append((rank, is_write, now))
            if self.measuring:
                self.counts["admitted"] += len(lane_ranks)
            if len(pending) > lane.queued_peak:
                lane.queued_peak = len(pending)
            lane.kick()

    def _dispatcher(self, lane: ShardLane, client):
        sim = self.sim
        while True:
            if lane.pending:
                rank, is_write, enqueued_us = lane.pending.popleft()
                lane.inflight += 1
                if lane.inflight > lane.inflight_peak:
                    lane.inflight_peak = lane.inflight
                outcome = yield from self.retry.execute(
                    sim, lambda: self._op(client, rank, is_write)
                )
                lane.inflight -= 1
                self._finish(lane, is_write, enqueued_us, outcome)
            elif self.running:
                yield lane.wake
            else:
                return

    def _op(self, client, rank: int, is_write: bool):
        key = self.generator.sampler.key(rank)
        if is_write:
            return (yield from client.put(key, self._value))
        return (yield from client.get(key))

    def _finish(self, lane: ShardLane, is_write: bool, enqueued_us, outcome):
        if not self.measuring:
            return
        self.counts["retries"] += outcome.retries
        if not outcome.ok:
            self.counts["errors"] += 1
            return
        op = "write" if is_write else "read"
        self.counts["completed"] += 1
        self.ops[op] += 1
        histogram = self._slo_cache.get((lane.name, op))
        if histogram is None:
            registry = obs_state.REGISTRY
            if registry is None:
                return
            labels = {"op": op, "shard": lane.name}
            if self._slo_phase is not None:
                labels["phase"] = self._slo_phase
            histogram = registry.slo(f"{self.name}.latency_us", **labels)
            self._slo_cache[(lane.name, op)] = histogram
        histogram.observe(self.sim.now - enqueued_us)
