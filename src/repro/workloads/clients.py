"""Closed-loop client pools.

Each client host runs one loop: draw a key from the popularity
distribution, flip the read/write coin, issue the op, record the
completion, repeat.  Throughput is controlled by the number of clients
(closed-loop load generation, as in the paper's client processes).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, List, Optional

if TYPE_CHECKING:  # only for annotations; importing repro.bench here
    from repro.bench.metrics import Metrics  # would be circular

from repro.kv.client import KvClient, KvRequestFailed
from repro.net.fabric import Fabric
from repro.workloads.generator import KeySampler, WorkloadMix

__all__ = ["ClientPool"]


class ClientPool:
    """N closed-loop clients driving one cluster."""

    def __init__(
        self,
        fabric: Fabric,
        cluster,
        n_clients: int,
        mix: WorkloadMix,
        sampler: KeySampler,
        metrics: Metrics,
        value_bytes: int = 992,
        name: str = "clients",
        client_factory: Optional[Callable] = None,
    ):
        self.fabric = fabric
        self.cluster = cluster
        self.n_clients = n_clients
        self.mix = mix
        self.sampler = sampler
        self.metrics = metrics
        self.value_bytes = value_bytes
        self.name = name
        self.client_factory = client_factory or KvClient
        self.running = False
        self._value = b"v" * value_bytes
        self._clients: List[KvClient] = []

    def start(self) -> None:
        """Spawn every client loop."""
        self.running = True
        n_targets = max(1, len(getattr(self.cluster, "cpu_nodes", []) or [1]))
        for index in range(self.n_clients):
            host = self.fabric.add_host(f"{self.name}-{index}", cores=2)
            client = self.client_factory(host, self.fabric, self.cluster)
            # Spread clients across serving nodes; leader-based systems
            # converge onto the leader after one retry, while EPaxos keeps
            # its clients "evenly distributed across the nodes" (§6.3.2).
            # KvClient.prefer computes the same index as the legacy
            # direct assignment; ShardRouter fans it out per shard.
            if hasattr(client, "prefer"):
                client.prefer(index)
            else:
                client._preferred = index % n_targets
            self._clients.append(client)
            rng = self.fabric.rng.stream(f"{self.name}:{index}")
            host.spawn(self._loop(client, rng), name=f"{self.name}-{index}")

    def stop(self) -> None:
        """Ask the loops to exit after their current operation."""
        self.running = False

    def _loop(self, client: KvClient, rng: random.Random):
        sim = self.fabric.sim
        while self.running:
            key = self.sampler.key(self.sampler.sample(rng))
            is_write = rng.random() < self.mix.write_fraction
            start = sim.now
            try:
                if is_write:
                    yield from client.put(key, self._value)
                    self.metrics.record("write", start, sim.now)
                else:
                    yield from client.get(key)
                    self.metrics.record("read", start, sim.now)
            except KvRequestFailed:
                self.metrics.record_error()
