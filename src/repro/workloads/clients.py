"""Closed-loop client pools.

Each client host runs one loop: draw a key from the popularity
distribution, flip the read/write coin, issue the op, record the
completion, repeat.  Throughput is controlled by the number of clients
(closed-loop load generation, as in the paper's client processes).

Failures route through the same :class:`~repro.workloads.retry.
RetryPolicy` the open-loop engine uses: retryable errors back off and
try again (the latency sample then spans the whole logical operation),
non-retryable errors — and exhausted budgets — count one error.  The
success path is untouched (no extra yields, no extra randomness), so
runs without failures are byte-identical to the pre-policy pool.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, List, Optional

if TYPE_CHECKING:  # only for annotations; importing repro.bench here
    from repro.bench.metrics import Metrics  # would be circular

from repro.kv.client import KvClient
from repro.net.fabric import Fabric
from repro.workloads.generator import KeySampler, WorkloadMix
from repro.workloads.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = ["ClientPool"]


class ClientPool:
    """N closed-loop clients driving one cluster."""

    def __init__(
        self,
        fabric: Fabric,
        cluster,
        n_clients: int,
        mix: WorkloadMix,
        sampler: KeySampler,
        metrics: Metrics,
        value_bytes: int = 992,
        name: str = "clients",
        client_factory: Optional[Callable] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        self.fabric = fabric
        self.cluster = cluster
        self.n_clients = n_clients
        self.mix = mix
        self.sampler = sampler
        self.metrics = metrics
        self.value_bytes = value_bytes
        self.name = name
        self.client_factory = client_factory or KvClient
        self.retry = retry or DEFAULT_RETRY_POLICY
        self.running = False
        self.retries = 0  #: tries beyond the first, across all clients
        self._value = b"v" * value_bytes
        self._clients: List[KvClient] = []

    def start(self) -> None:
        """Spawn every client loop."""
        self.running = True
        for index in range(self.n_clients):
            host = self.fabric.add_host(f"{self.name}-{index}", cores=2)
            client = self.client_factory(host, self.fabric, self.cluster)
            # Spread clients across serving nodes; leader-based systems
            # converge onto the leader after one retry, while EPaxos keeps
            # its clients "evenly distributed across the nodes" (§6.3.2).
            # Clients without a prefer hook balance themselves.
            if hasattr(client, "prefer"):
                client.prefer(index)
            self._clients.append(client)
            rng = self.fabric.rng.stream(f"{self.name}:{index}")
            host.spawn(self._loop(client, rng), name=f"{self.name}-{index}")

    def stop(self) -> None:
        """Ask the loops to exit after their current operation."""
        self.running = False

    def _loop(self, client: KvClient, rng: random.Random):
        sim = self.fabric.sim
        while self.running:
            key = self.sampler.key(self.sampler.sample(rng))
            is_write = rng.random() < self.mix.write_fraction
            start = sim.now
            if is_write:
                attempt = lambda: client.put(key, self._value)
                op = "write"
            else:
                attempt = lambda: client.get(key)
                op = "read"
            outcome = yield from self.retry.execute(sim, attempt)
            self.retries += outcome.retries
            if outcome.ok:
                self.metrics.record(op, start, sim.now)
            else:
                self.metrics.record_error()
