"""Client-side retry policy: capped exponential backoff.

Both load generators — the closed-loop :class:`ClientPool` and the
open-loop engine — fail the same way: an operation raises a
:class:`~repro.errors.ReproError` subclass whose ``retryable`` flag
says whether trying again can possibly help.  :class:`RetryPolicy`
centralises that decision: retryable errors are retried up to a cap
with exponentially growing (capped) backoff, non-retryable errors fail
the operation immediately, and anything that is not a ``ReproError``
propagates — it is a bug, not a service condition.

The success path adds **zero** simulator yields and zero RNG draws on
top of the attempted operation itself, so routing a generator's ops
through a policy leaves a run with no failures byte-identical.
"""

from __future__ import annotations

from typing import Any, Callable, NamedTuple, Optional

from repro.errors import ReproError
from repro.sim.units import MS

__all__ = ["RetryOutcome", "RetryPolicy", "DEFAULT_RETRY_POLICY"]


class RetryOutcome(NamedTuple):
    """What became of one logical operation after retries."""

    ok: bool
    value: Any
    attempts: int  #: total tries made (1 = first attempt succeeded)
    error: Optional[BaseException]  #: the final error when ``not ok``

    @property
    def retries(self) -> int:
        """Tries beyond the first — what the retry counters report."""
        return self.attempts - 1


class RetryPolicy:
    """Capped exponential backoff over ``ReproError.retryable`` failures."""

    def __init__(
        self,
        max_attempts: int = 4,
        base_backoff_us: float = 1 * MS,
        multiplier: float = 2.0,
        cap_us: float = 20 * MS,
    ):
        if max_attempts < 1:
            raise ValueError(f"need at least one attempt, got {max_attempts}")
        if base_backoff_us < 0 or cap_us < 0:
            raise ValueError("backoff durations must be non-negative")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        self.max_attempts = max_attempts
        self.base_backoff_us = base_backoff_us
        self.multiplier = multiplier
        self.cap_us = cap_us

    def backoff_us(self, failures: int) -> float:
        """Backoff after the *failures*-th consecutive failure (1-based)."""
        if failures < 1:
            return 0.0
        return min(self.cap_us, self.base_backoff_us * self.multiplier ** (failures - 1))

    def execute(self, sim, attempt: Callable[[], Any]):
        """Process: run ``attempt()`` (a generator factory) with retries.

        Returns a :class:`RetryOutcome`; never raises for ``ReproError``
        failures.  A non-retryable error or an exhausted budget produces
        ``ok=False`` with the final error attached.
        """
        error: Optional[ReproError] = None
        for attempt_number in range(1, self.max_attempts + 1):
            try:
                value = yield from attempt()
            except ReproError as exc:
                error = exc
                if not exc.retryable or attempt_number == self.max_attempts:
                    return RetryOutcome(False, None, attempt_number, exc)
                yield sim.timeout(self.backoff_us(attempt_number))
            else:
                return RetryOutcome(True, value, attempt_number, None)
        return RetryOutcome(False, None, self.max_attempts, error)  # pragma: no cover

    def __repr__(self) -> str:
        return (
            f"<RetryPolicy attempts={self.max_attempts} "
            f"base={self.base_backoff_us}us x{self.multiplier} cap={self.cap_us}us>"
        )


#: Shared default: 4 attempts, 1 ms doubling to a 20 ms cap.
DEFAULT_RETRY_POLICY = RetryPolicy()
