"""Key samplers and operation mixes.

The evaluation "utilize[s] a Zipfian distribution with a parameter of
0.99 to generate a skewed workload unless otherwise noted" (§6.2); the
four mixes are defined in the same section.
"""

from __future__ import annotations

import random
from typing import NamedTuple

import numpy as np

__all__ = [
    "WorkloadMix",
    "WORKLOADS",
    "KeySampler",
    "ZipfSampler",
    "StripedZipfSampler",
    "UniformSampler",
]


class WorkloadMix(NamedTuple):
    """An operation mix: what fraction of operations are writes."""

    name: str
    write_fraction: float


WORKLOADS = {
    "write-only": WorkloadMix("write-only", 1.0),
    "mixed": WorkloadMix("mixed", 0.5),  # "50% reads and writes"
    "read-heavy": WorkloadMix("read-heavy", 0.1),  # "90% reads and 10% writes"
    "read-only": WorkloadMix("read-only", 0.0),
}


class KeySampler:
    """Base class: draws key indices in ``[0, n_keys)``."""

    def __init__(self, n_keys: int):
        if n_keys < 1:
            raise ValueError(f"need at least one key, got {n_keys}")
        self.n_keys = n_keys

    def sample(self, rng: random.Random) -> int:
        raise NotImplementedError

    def key(self, index: int) -> bytes:
        """Render a key index as the wire key."""
        return b"key%024d" % index  # 27 bytes, within the 32-byte limit


class UniformSampler(KeySampler):
    """Every key equally popular."""

    def sample(self, rng: random.Random) -> int:
        return rng.randrange(self.n_keys)


class ZipfSampler(KeySampler):
    """Zipfian popularity with parameter theta (0.99 in the paper).

    Sampling inverts the precomputed CDF with a binary search; rank *r*
    (0-based) has weight ``1 / (r + 1)^theta``.  Ranks map directly to
    key indices, so key 0 is the hottest — experiments that care about
    *where* hot keys live in memory (Fig. 11) rely on this.
    """

    def __init__(self, n_keys: int, theta: float = 0.99):
        super().__init__(n_keys)
        self.theta = theta
        weights = 1.0 / np.power(np.arange(1, n_keys + 1, dtype=np.float64), theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, rng: random.Random) -> int:
        return int(np.searchsorted(self._cdf, rng.random(), side="right"))

    def hot_fraction(self, top: int) -> float:
        """Probability mass of the *top* most popular keys."""
        if top <= 0:
            return 0.0
        return float(self._cdf[min(top, self.n_keys) - 1])


class StripedZipfSampler(ZipfSampler):
    """Zipfian popularity striped evenly across the shards of a ring.

    Consistent hashing balances the *number* of keys per shard but not
    their *popularity*: under theta=0.99 the few hottest keys carry most
    of the load, and nothing stops ranks 0..2 all hashing to one shard.
    This sampler renders rank ``r`` as a key that provably lives on
    shard ``r % G`` — for each rank it walks nonce-suffixed candidates
    until the ring places one on the target shard — so every shard owns
    an equal slice of each popularity band.  Construction is
    deterministic (no RNG): same ring + n_keys -> same keys.
    """

    def __init__(self, n_keys: int, ring, theta: float = 0.99):
        super().__init__(n_keys, theta=theta)
        self.ring = ring
        shards = ring.shards
        keys = []
        for rank in range(n_keys):
            target = shards[rank % len(shards)]
            nonce = 0
            while True:
                candidate = b"key%018d.%04d" % (rank, nonce)
                if ring.shard_for(candidate) == target:
                    break
                nonce += 1
            keys.append(candidate)
        self._keys = keys

    def key(self, index: int) -> bytes:
        return self._keys[index]
