"""Key samplers and operation mixes.

The evaluation "utilize[s] a Zipfian distribution with a parameter of
0.99 to generate a skewed workload unless otherwise noted" (§6.2); the
four mixes are defined in the same section.
"""

from __future__ import annotations

import random
from typing import NamedTuple

import numpy as np

__all__ = [
    "WorkloadMix",
    "WORKLOADS",
    "KeySampler",
    "ZipfSampler",
    "StripedZipfSampler",
    "HotspotZipfSampler",
    "UniformSampler",
    "uniform_batch",
    "flip_batch",
]

#: genrand_res53 constants (CPython ``random.random``): a 53-bit double
#: from two consecutive 32-bit Mersenne Twister words.
_RES53_HI = 67108864.0  # 2**26
_RES53_SCALE = 1.0 / 9007199254740992.0  # 2**-53


def uniform_batch(rng: random.Random, n: int) -> np.ndarray:
    """*n* uniforms from *rng*, bit-identical to ``rng.random()`` calls.

    CPython's ``random()`` is ``genrand_res53``: it folds two
    consecutive 32-bit Mersenne Twister words into one double.
    ``getrandbits(32 * m)`` emits those same words packed little-endian
    into one int, so one bulk draw plus a vectorized fold reproduces the
    scalar stream exactly — ``uniform_batch(rng, n)`` consumes the same
    generator state and returns the same values as ``[rng.random() for
    _ in range(n)]``, at a tiny fraction of the cost.  Interleaving
    batch and scalar draws on one stream therefore stays aligned.
    """
    if n <= 0:
        return np.empty(0, dtype=np.float64)
    raw = rng.getrandbits(64 * n).to_bytes(8 * n, "little")
    words = np.frombuffer(raw, dtype="<u4")
    a = words[0::2] >> np.uint32(5)
    b = words[1::2] >> np.uint32(6)
    return (a * _RES53_HI + b) * _RES53_SCALE


def flip_batch(rng: random.Random, n: int, fraction: float) -> np.ndarray:
    """*n* coin flips, equivalent to ``rng.random() < fraction`` calls."""
    return uniform_batch(rng, n) < fraction


class WorkloadMix(NamedTuple):
    """An operation mix: what fraction of operations are writes."""

    name: str
    write_fraction: float


WORKLOADS = {
    "write-only": WorkloadMix("write-only", 1.0),
    "mixed": WorkloadMix("mixed", 0.5),  # "50% reads and writes"
    "read-heavy": WorkloadMix("read-heavy", 0.1),  # "90% reads and 10% writes"
    "read-only": WorkloadMix("read-only", 0.0),
}


class KeySampler:
    """Base class: draws key indices in ``[0, n_keys)``."""

    def __init__(self, n_keys: int):
        if n_keys < 1:
            raise ValueError(f"need at least one key, got {n_keys}")
        self.n_keys = n_keys

    def sample(self, rng: random.Random) -> int:
        raise NotImplementedError

    def sample_batch(self, rng: random.Random, n: int) -> np.ndarray:
        """*n* key indices as an int64 array.

        Contract (pinned by ``tests/test_openloop.py``): drawing a batch
        consumes *rng* exactly as *n* :meth:`sample` calls would and
        returns the same indices — the open-loop engine and the scalar
        closed-loop pool see identical key streams from identical seeds.
        Subclasses with a vectorizable inverse override this; the base
        implementation just loops.
        """
        return np.fromiter(
            (self.sample(rng) for _ in range(n)), dtype=np.int64, count=n
        )

    def key(self, index: int) -> bytes:
        """Render a key index as the wire key."""
        return b"key%024d" % index  # 27 bytes, within the 32-byte limit


class UniformSampler(KeySampler):
    """Every key equally popular."""

    def sample(self, rng: random.Random) -> int:
        return rng.randrange(self.n_keys)


class ZipfSampler(KeySampler):
    """Zipfian popularity with parameter theta (0.99 in the paper).

    Sampling inverts the precomputed CDF with a binary search; rank *r*
    (0-based) has weight ``1 / (r + 1)^theta``.  Ranks map directly to
    key indices, so key 0 is the hottest — experiments that care about
    *where* hot keys live in memory (Fig. 11) rely on this.
    """

    def __init__(self, n_keys: int, theta: float = 0.99):
        super().__init__(n_keys)
        self.theta = theta
        weights = 1.0 / np.power(np.arange(1, n_keys + 1, dtype=np.float64), theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, rng: random.Random) -> int:
        return int(np.searchsorted(self._cdf, rng.random(), side="right"))

    def sample_batch(self, rng: random.Random, n: int) -> np.ndarray:
        """*n* ranks through one CDF inversion (see :class:`KeySampler`).

        :func:`uniform_batch` reproduces the exact ``rng.random()``
        stream, and one ``np.searchsorted`` over the whole batch replaces
        the per-op scalar call — the hot loop of the open-loop engine.
        """
        return np.searchsorted(self._cdf, uniform_batch(rng, n), side="right")

    def hot_fraction(self, top: int) -> float:
        """Probability mass of the *top* most popular keys."""
        if top <= 0:
            return 0.0
        return float(self._cdf[min(top, self.n_keys) - 1])


class StripedZipfSampler(ZipfSampler):
    """Zipfian popularity striped evenly across the shards of a ring.

    Consistent hashing balances the *number* of keys per shard but not
    their *popularity*: under theta=0.99 the few hottest keys carry most
    of the load, and nothing stops ranks 0..2 all hashing to one shard.
    This sampler renders rank ``r`` as a key that provably lives on
    shard ``r % G`` — for each rank it walks nonce-suffixed candidates
    until the ring places one on the target shard — so every shard owns
    an equal slice of each popularity band.  Construction is
    deterministic (no RNG): same ring + n_keys -> same keys.
    """

    def __init__(self, n_keys: int, ring, theta: float = 0.99):
        super().__init__(n_keys, theta=theta)
        self.ring = ring
        shards = ring.shards
        n_shards = len(shards)
        # Batched nonce walk: instead of hashing one candidate at a time
        # per rank (a python-level ring.shard_for call each), resolve
        # every still-unplaced rank's nonce-k candidate in one vectorized
        # ring lookup per nonce level.  Each rank still settles on the
        # lowest nonce whose candidate lands on its target shard, so the
        # key table is byte-identical to the scalar walk's.
        keys: list = [None] * n_keys
        # The rank half of every candidate is fixed; render it once per
        # rank and per nonce level append the (shared) nonce suffix —
        # the concatenation equals ``b"key%018d.%04d" % (rank, nonce)``
        # byte for byte, so the table matches the old scalar walk's.
        prefixes = [b"key%018d." % rank for rank in range(n_keys)]
        pending = list(range(n_keys))
        nonce = 0
        while pending:
            suffix = b"%04d" % nonce
            candidates = [prefixes[rank] + suffix for rank in pending]
            owners = ring.shard_index_batch(candidates).tolist()
            unresolved = []
            for rank, candidate, owner in zip(pending, candidates, owners):
                if owner == rank % n_shards:
                    keys[rank] = candidate
                else:
                    unresolved.append(rank)
            pending = unresolved
            nonce += 1
        self._keys = keys

    def key(self, index: int) -> bytes:
        return self._keys[index]

    def all_keys(self) -> list:
        """Every rendered key, indexed by key index (elastic-lane hook)."""
        return self._keys

    def key_index_batch(self, ranks: np.ndarray) -> np.ndarray:
        """Key index per rank (identity here; hotspot samplers remap)."""
        return ranks

    @property
    def n_shards(self) -> int:
        return len(self.ring.shards)

    def shard_index_batch(self, ranks: np.ndarray) -> np.ndarray:
        """Owning-shard index per rank, without touching the ring.

        Rank *r*'s key provably lives on shard ``r % G`` (the striping
        invariant above), so shard assignment over a whole arrival batch
        is one vectorized modulo instead of a SHA-1 + ring walk per key.
        """
        return ranks % self.n_shards

    def shard_name(self, index: int) -> str:
        return self.ring.shards[index]


class HotspotZipfSampler(StripedZipfSampler):
    """A striped Zipf sampler whose hot set can be re-aimed mid-run.

    Popularity ranks are drawn exactly as in the parent (the arrival
    RNG streams are untouched), but a rank-to-key-index permutation sits
    between rank and rendered key.  :meth:`retarget` rewires the top
    *hot_span* ranks onto key indices owned by one shard (under the
    striping invariant ``index % G``), concentrating the popularity
    mass there — the mid-run load shift behind ``figHotspot``.
    Retargeting consumes no RNG and changes no already-drawn rank, so
    two runs differing only in *when* (or whether) they retarget see
    byte-identical arrival streams.
    """

    def __init__(self, n_keys: int, ring, theta: float = 0.99):
        super().__init__(n_keys, ring, theta=theta)
        self._map = np.arange(n_keys, dtype=np.int64)
        self.hot_shard: int = -1
        self.hot_span: int = 0

    def key(self, index: int) -> bytes:
        return self._keys[int(self._map[index])]

    def key_index_batch(self, ranks: np.ndarray) -> np.ndarray:
        return self._map[ranks]

    def shard_index_batch(self, ranks: np.ndarray) -> np.ndarray:
        """Owner per rank under the *striping* ring (``index % G``)."""
        return self._map[ranks] % self.n_shards

    def retarget(self, shard_index: int, hot_span: int) -> None:
        """Swap the top *hot_span* ranks onto keys striped to one shard.

        The permutation is built by pairwise swaps, so it stays a
        bijection: every key index is still rendered by exactly one
        rank, and cold ranks inherit the keys the hot ranks vacated.
        """
        n_shards = self.n_shards
        if not 0 <= shard_index < n_shards:
            raise ValueError(f"shard index {shard_index} out of range")
        if not 0 <= hot_span <= self.n_keys // n_shards:
            raise ValueError(f"hot span {hot_span} exceeds the shard's keys")
        mapping = self._map
        inverse = np.empty_like(mapping)
        inverse[mapping] = np.arange(len(mapping), dtype=np.int64)
        for rank in range(hot_span):
            target = shard_index + n_shards * rank  # striped to shard_index
            holder = inverse[target]
            vacated = mapping[rank]
            mapping[rank], mapping[holder] = target, vacated
            inverse[target], inverse[vacated] = rank, holder
        self.hot_shard = shard_index
        self.hot_span = hot_span
