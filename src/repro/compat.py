"""Deprecation shims for renamed keyword arguments.

Duration-valued keyword arguments follow the ``*_us`` convention (all
simulated times are microseconds).  Entry points that historically
accepted bare names (``request_timeout``, ``timeout``, ``op_gap``, ...)
keep accepting them through :func:`resolve_us_kwargs`, which maps each
legacy name onto its ``*_us`` replacement and emits one
:class:`DeprecationWarning` per (call site, name) pair for the life of
the process — loud enough to notice, quiet enough not to flood a
closed-loop client's log.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Set, Tuple

__all__ = ["resolve_us_kwargs", "warn_deprecated"]

#: (owner, legacy name) pairs that already warned this process.
_WARNED: Set[Tuple[str, str]] = set()


def warn_deprecated(owner: str, name: str, replacement: str) -> None:
    """Emit one :class:`DeprecationWarning` per (owner, name) pair.

    The method-deprecation sibling of :func:`resolve_us_kwargs`: entry
    points that moved behind a redesigned surface (for example
    ``ShardedKvService.group`` behind ``Cluster.topology()``) call this
    from their shim so existing callers keep working and hear about the
    replacement exactly once per process.
    """
    key = (owner, name)
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(
        f"{owner}.{name} is deprecated, use {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


def resolve_us_kwargs(
    owner: str,
    legacy: Dict[str, Any],
    mapping: Dict[str, str],
    values: Dict[str, Any],
) -> Dict[str, Any]:
    """Fold deprecated duration kwargs into their ``*_us`` replacements.

    *legacy* is the ``**kwargs`` catch-all of the entry point, *mapping*
    maps each accepted legacy name to its ``*_us`` replacement, and
    *values* holds the current values of those ``*_us`` parameters.
    Returns *values* updated with any legacy spellings (legacy only
    applies when the caller did not also pass the new name).  Unknown
    keyword arguments raise :class:`TypeError`, exactly as a plain
    signature would.
    """
    for name, value in legacy.items():
        replacement = mapping.get(name)
        if replacement is None:
            raise TypeError(f"{owner}() got an unexpected keyword argument {name!r}")
        key = (owner, name)
        if key not in _WARNED:
            _WARNED.add(key)
            warnings.warn(
                f"{owner}: keyword {name!r} is deprecated, use {replacement!r} "
                "(durations are microseconds)",
                DeprecationWarning,
                stacklevel=3,
            )
        values[replacement] = value
    return values
