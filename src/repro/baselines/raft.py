"""Raft-R: the paper's RDMA-based Raft-like comparison system (§6.3.1).

"This Raft-like key-value store, which we call Raft-R, maintains a
complete replica on the leader.  Write requests are replicated to a
majority of nodes (including the leader) before they are committed.
Read requests are serviced locally from the leader's replica.  It uses a
partitioned map with 1000 partitions to reduce contention and
read/write locks to provide strong consistency."

Every node is provisioned like the leader (that is the resource-coupling
Sift attacks): a full in-memory replica plus enough cores to lead.
Replication uses two-sided RDMA SEND/RECV — messages ride the RDMA
latency profile but *the follower CPUs actively process every message*,
unlike Sift's passive memory nodes.

The implementation is a real (if compact) Raft: terms, randomized
election timeouts, RequestVote with the log-up-to-date check,
AppendEntries with the prev-index/term consistency check and follower
log truncation, and leader commit via the majority match index.
Snapshots and membership changes are out of scope (the paper's Raft-R is
a fixed group).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from repro.net.fabric import Fabric
from repro.net.host import Host
from repro.net.rpc import Reply, RpcEndpoint
from repro.obs import state as obs_state
from repro.rdma.messaging import RdmaMessenger
from repro.rdma.nic import Rnic
from repro.sim.engine import Event, ProcessKilled
from repro.sim.units import MS

__all__ = ["RaftCluster", "RaftConfig", "RaftNode"]


@dataclass(frozen=True)
class RaftCosts:
    """Per-message / per-op CPU charges (core-microseconds)."""

    msg_recv_us: float = 1.2
    """Reaping and parsing one SEND/RECV message."""

    log_append_us: float = 1.0
    """Appending one entry to the in-memory log (per entry)."""

    apply_us: float = 2.0
    """Applying one committed entry to the partitioned map."""

    map_read_us: float = 2.0
    """Partition lock + map lookup for a local read."""

    op_us: float = 4.0
    """Leader-side bookkeeping per client request."""

    write_op_us: float = 12.0
    """Extra leader work per write: copying the ~1 KiB entry into the
    per-follower replication buffers, partition write-lock handling, and
    commit bookkeeping.  Calibrated so Raft-R's write-only saturation
    sits ~3x below its read-only saturation, the ratio §6.3.2 reports."""


@dataclass(frozen=True)
class RaftConfig:
    """One Raft-R deployment."""

    f: int = 1
    cores: int = 8  # Table 2: Raft-R nodes get 8 cores
    partitions: int = 1000  # §6.3.1
    heartbeat_us: float = 2_000.0
    election_timeout_min_us: float = 12_000.0
    election_timeout_max_us: float = 24_000.0
    max_batch: int = 64
    """Entries per AppendEntries message (pipelined batching)."""

    costs: RaftCosts = field(default_factory=RaftCosts)

    @property
    def nodes(self) -> int:
        """2F + 1 coupled replicas."""
        return 2 * self.f + 1

    @property
    def quorum(self) -> int:
        return self.f + 1


class _LogEntry(NamedTuple):
    term: int
    op: Tuple  # ("put", key, value) | ("delete", key)


class _AppendEntries(NamedTuple):
    term: int
    leader: int
    prev_index: int
    prev_term: int
    entries: Tuple[_LogEntry, ...]
    commit: int


class _AppendReply(NamedTuple):
    term: int
    follower: int
    success: bool
    match: int


class _RequestVote(NamedTuple):
    term: int
    candidate: int
    last_index: int
    last_term: int


class _VoteReply(NamedTuple):
    term: int
    voter: int
    granted: bool


ENTRY_WIRE_BYTES = 1_060  # key + value + metadata on the wire
CTRL_WIRE_BYTES = 64


class RaftNode:
    """One Raft-R replica (any of which may lead)."""

    def __init__(self, cluster: "RaftCluster", index: int):
        self.cluster = cluster
        self.index = index
        self.config = cluster.config
        fabric = cluster.fabric
        self.host: Host = fabric.add_host(
            f"{cluster.name}-n{index}", cores=self.config.cores
        )
        self.nic = Rnic(self.host, fabric)
        self.messenger = RdmaMessenger(self.host, self.nic)
        self.endpoint = RpcEndpoint(self.host, fabric, name="kv")
        self.sim = self.host.sim
        self._rng = fabric.rng.stream(f"raft:{cluster.name}:{index}")

        # Persistent-ish Raft state (in-memory; fail-stop loses it, which
        # is fine for an in-memory state machine baseline).
        self.term = 0
        self.voted_for: Optional[int] = None
        self.log: List[_LogEntry] = []

        # Volatile state.
        self.role = "follower"
        self.commit_index = 0
        self.last_applied = 0
        self.leader_hint: Optional[int] = None
        self._last_heartbeat = 0.0
        self._votes: set = set()

        # Leader state.
        self.next_index: Dict[int, int] = {}
        self.match_index: Dict[int, int] = {}
        self._commit_waiters: Dict[int, List[Event]] = {}
        self._replicator_kicks: Dict[int, Event] = {}

        # The replicated state machine: a partitioned map (§6.3.1).
        self.partitions: List[Dict[bytes, bytes]] = [
            {} for _ in range(self.config.partitions)
        ]
        self.stats = {"puts": 0, "gets": 0, "applied": 0, "elections_won": 0}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn the message pump and the election timer."""
        self.host.spawn(self._message_pump(), name="raft-pump")
        self.host.spawn(self._election_timer(), name="raft-timer")
        self.endpoint.register("kv.put", self.handle_put)
        self.endpoint.register("kv.get", self.handle_get)
        self.endpoint.register("kv.delete", self.handle_delete)

    def crash(self) -> None:
        """Fail-stop (the in-memory replica is lost)."""
        self.host.crash()
        self.role = "follower"

    def restart(self) -> None:
        """Restart with empty state (the in-memory baseline persists nothing).

        The node rejoins as a term-0 follower with an empty log and map;
        the leader's AppendEntries consistency check walks its next-index
        back and replays the whole log, exactly as after a fresh start.
        """
        if self.host.alive:
            return
        self.term = 0
        self.voted_for = None
        self.log = []
        self.role = "follower"
        self.commit_index = 0
        self.last_applied = 0
        self.leader_hint = None
        self._votes = set()
        self.next_index = {}
        self.match_index = {}
        self._commit_waiters = {}
        self._replicator_kicks = {}
        self.partitions = [{} for _ in range(self.config.partitions)]
        self.host.restart()
        self._last_heartbeat = self.sim.now
        self.start()

    @property
    def last_index(self) -> int:
        return len(self.log)

    def _last_term(self) -> int:
        return self.log[-1].term if self.log else 0

    def _partition_of(self, key: bytes) -> Dict[bytes, bytes]:
        return self.partitions[hash(key) % self.config.partitions]

    # ------------------------------------------------------------------
    # Client handlers
    # ------------------------------------------------------------------

    def handle_put(self, payload: Tuple[bytes, bytes]):
        """Process: leader-only; commits via majority replication."""
        key, value = payload
        yield from self._commit_op(("put", bytes(key), bytes(value)))
        self.stats["puts"] += 1
        return Reply(("ok", self.commit_index), 32)

    def handle_delete(self, key: bytes):
        """Process: leader-only delete."""
        yield from self._commit_op(("delete", bytes(key)))
        return Reply(("ok", self.commit_index), 32)

    def handle_get(self, key: bytes):
        """Process: served locally from the leader's replica (§6.3.1)."""
        if self.role != "leader":
            raise NotLeader(self.leader_hint)
        yield self.host.execute(self.config.costs.op_us + self.config.costs.map_read_us)
        self.stats["gets"] += 1
        value = self._partition_of(key).get(bytes(key))
        if value is None:
            return Reply(("missing", None), 16)
        return Reply(("ok", value), 16 + len(value))

    def _commit_op(self, op: Tuple):
        if self.role != "leader":
            raise NotLeader(self.leader_hint)
        yield self.host.execute(
            self.config.costs.op_us
            + self.config.costs.write_op_us
            + self.config.costs.log_append_us
        )
        self.log.append(_LogEntry(self.term, op))
        index = self.last_index
        waiter = Event(self.sim)
        self._commit_waiters.setdefault(index, []).append(waiter)
        self._kick_replicators()
        yield waiter  # fails with NotLeader if we lose leadership
        yield from self._apply_to(self.commit_index)

    # ------------------------------------------------------------------
    # Message pump (the follower CPU work Sift eliminates)
    # ------------------------------------------------------------------

    def _message_pump(self):
        try:
            while True:
                message = yield self.messenger.recv()
                yield self.host.execute(self.config.costs.msg_recv_us)
                if isinstance(message, _AppendEntries):
                    yield from self._on_append(message)
                elif isinstance(message, _AppendReply):
                    self._on_append_reply(message)
                elif isinstance(message, _RequestVote):
                    self._on_request_vote(message)
                elif isinstance(message, _VoteReply):
                    self._on_vote_reply(message)
        except ProcessKilled:
            raise

    def _send(self, to: int, message: Any, size: int) -> None:
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.counter(
                "raft.messages", kind=type(message).__name__.lstrip("_")
            ).inc()
        self.messenger.send(self.cluster.nodes[to].messenger, message, size)

    # -- AppendEntries ---------------------------------------------------------

    def _on_append(self, msg: _AppendEntries):
        if msg.term < self.term:
            self._send(
                msg.leader, _AppendReply(self.term, self.index, False, 0), CTRL_WIRE_BYTES
            )
            return
        self._observe_term(msg.term)
        self.leader_hint = msg.leader
        self._last_heartbeat = self.sim.now
        if self.role != "follower":
            self.role = "follower"
        # Consistency check.
        if msg.prev_index > self.last_index or (
            msg.prev_index > 0 and self.log[msg.prev_index - 1].term != msg.prev_term
        ):
            self._send(
                msg.leader,
                _AppendReply(self.term, self.index, False, 0),
                CTRL_WIRE_BYTES,
            )
            return
        if msg.entries:
            yield self.host.execute(self.config.costs.log_append_us * len(msg.entries))
            # Raft's append rule: skip entries we already hold (a stale
            # duplicate from leader pipelining must not truncate newer
            # entries); truncate only at an actual term conflict.
            index = msg.prev_index
            for position, entry in enumerate(msg.entries):
                index = msg.prev_index + position + 1
                if index <= self.last_index:
                    if self.log[index - 1].term == entry.term:
                        continue  # already have it
                    del self.log[index - 1 :]  # conflict: drop the suffix
                self.log.append(entry)
        if msg.commit > self.commit_index:
            self.commit_index = min(msg.commit, self.last_index)
            yield from self._apply_to(self.commit_index)
        self._send(
            msg.leader,
            _AppendReply(self.term, self.index, True, self.last_index),
            CTRL_WIRE_BYTES,
        )

    def _on_append_reply(self, msg: _AppendReply) -> None:
        if msg.term > self.term:
            self._observe_term(msg.term)
            return
        if self.role != "leader":
            return
        if msg.success:
            self.match_index[msg.follower] = max(
                self.match_index.get(msg.follower, 0), msg.match
            )
            # Never move next_index backwards on success: acks for older
            # batches race the optimistic advance of pipelined sends.
            self.next_index[msg.follower] = max(
                self.next_index.get(msg.follower, 1),
                self.match_index[msg.follower] + 1,
            )
            self._advance_commit()
        else:
            self.next_index[msg.follower] = max(
                1, self.next_index.get(msg.follower, 1) - self.config.max_batch
            )
        kick = self._replicator_kicks.pop(msg.follower, None)
        if kick is not None:
            kick.try_trigger(None)

    def _advance_commit(self) -> None:
        matches = sorted(
            [self.last_index] + [self.match_index.get(i, 0) for i in self._peers()],
            reverse=True,
        )
        candidate = matches[self.config.quorum - 1]
        # Raft commit rule: only entries of the current term commit by count.
        if candidate > self.commit_index and self.log[candidate - 1].term == self.term:
            self.commit_index = candidate
            for index in list(self._commit_waiters):
                if index <= candidate:
                    for waiter in self._commit_waiters.pop(index):
                        waiter.try_trigger(None)
            # Apply even when no client is waiting (e.g. the election
            # no-op committing a previous term's entries): local reads
            # are served from this map.
            self.host.spawn(self._apply_to(self.commit_index), name="apply")

    def _apply_to(self, index: int):
        while self.last_applied < index:
            self.last_applied += 1
            entry = self.log[self.last_applied - 1]
            yield self.host.execute(self.config.costs.apply_us)
            op = entry.op
            if op[0] == "put":
                self._partition_of(op[1])[op[1]] = op[2]
            elif op[0] == "delete":
                self._partition_of(op[1]).pop(op[1], None)
            # "noop" entries exist only to commit earlier terms.
            self.stats["applied"] += 1

    # -- elections ---------------------------------------------------------------

    def _election_timer(self):
        try:
            while True:
                timeout = self._rng.uniform(
                    self.config.election_timeout_min_us,
                    self.config.election_timeout_max_us,
                )
                yield self.sim.timeout(timeout)
                if self.role == "leader":
                    continue
                if self.sim.now - self._last_heartbeat < timeout:
                    continue
                self._start_election()
        except ProcessKilled:
            raise

    def _start_election(self) -> None:
        self.term += 1
        self.role = "candidate"
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.counter("raft.elections_started").inc()
        if obs_state.TRACER is not None:
            obs_state.TRACER.instant(
                "raft.election", self.sim.now, node=self.index, term=self.term
            )
        self.voted_for = self.index
        self._votes = {self.index}
        request = _RequestVote(self.term, self.index, self.last_index, self._last_term())
        for peer in self._peers():
            self._send(peer, request, CTRL_WIRE_BYTES)

    def _on_request_vote(self, msg: _RequestVote) -> None:
        if msg.term > self.term:
            self._observe_term(msg.term)
        granted = False
        if msg.term == self.term and self.voted_for in (None, msg.candidate):
            up_to_date = (msg.last_term, msg.last_index) >= (
                self._last_term(),
                self.last_index,
            )
            if up_to_date:
                granted = True
                self.voted_for = msg.candidate
                self._last_heartbeat = self.sim.now
        self._send(msg.candidate, _VoteReply(self.term, self.index, granted), CTRL_WIRE_BYTES)

    def _on_vote_reply(self, msg: _VoteReply) -> None:
        if msg.term > self.term:
            self._observe_term(msg.term)
            return
        if self.role != "candidate" or msg.term != self.term or not msg.granted:
            return
        self._votes.add(msg.voter)
        if len(self._votes) >= self.config.quorum:
            self._become_leader()

    def _become_leader(self) -> None:
        self.role = "leader"
        self.leader_hint = self.index
        self.stats["elections_won"] += 1
        if obs_state.REGISTRY is not None:
            obs_state.REGISTRY.counter("raft.elections_won").inc()
        if obs_state.TRACER is not None:
            obs_state.TRACER.instant(
                "raft.leader", self.sim.now, node=self.index, term=self.term
            )
        # Raft's no-op entry: a leader may only count replicas for entries
        # of its own term, so committing this no-op is what (transitively)
        # commits every surviving entry from earlier terms.
        self.log.append(_LogEntry(self.term, ("noop",)))
        self.next_index = {peer: self.last_index + 1 for peer in self._peers()}
        self.match_index = {peer: 0 for peer in self._peers()}
        for peer in self._peers():
            self.host.spawn(self._replicator(peer), name=f"repl-{peer}")
        self._kick_replicators()

    def _observe_term(self, term: int) -> None:
        if term > self.term:
            self.term = term
            self.voted_for = None
            if self.role == "leader":
                self._fail_waiters()
            self.role = "follower"

    def _fail_waiters(self) -> None:
        for index in list(self._commit_waiters):
            for waiter in self._commit_waiters.pop(index):
                waiter.try_fail(NotLeader(self.leader_hint))

    # -- replication --------------------------------------------------------------

    def _peers(self) -> List[int]:
        return [i for i in range(self.config.nodes) if i != self.index]

    def _kick_replicators(self) -> None:
        for peer, kick in list(self._replicator_kicks.items()):
            del self._replicator_kicks[peer]
            kick.try_trigger(None)

    def _replicator(self, peer: int):
        """Leader process: stream AppendEntries batches to one follower.

        One message is in flight at a time; new entries accumulate while
        an ack is outstanding, which yields natural batching under load.
        Empty messages (pure heartbeats) are paced at the heartbeat
        interval rather than at ack frequency.
        """
        my_term = self.term
        last_send = -self.config.heartbeat_us
        try:
            while self.role == "leader" and self.term == my_term:
                next_index = self.next_index.get(peer, self.last_index + 1)
                entries = tuple(
                    self.log[next_index - 1 : next_index - 1 + self.config.max_batch]
                )
                if not entries:
                    remaining = self.config.heartbeat_us - (self.sim.now - last_send)
                    # Floor at 1us: a sub-resolution positive remainder
                    # (float error) would otherwise re-arm a timer that
                    # fires at the *same* simulated instant, forever.
                    if remaining >= 1.0:
                        # Idle: wake on a new entry or when a heartbeat is due.
                        kick = Event(self.sim)
                        self._replicator_kicks[peer] = kick
                        timer = self.sim.timeout(remaining)
                        timer.add_callback(lambda _ev, k=kick: k.try_trigger(None))
                        yield kick
                        # If an entry arrived first the timer is now dead
                        # weight; cancelling keeps it out of the heap.
                        timer.cancel()
                        continue
                prev_index = next_index - 1
                prev_term = self.log[prev_index - 1].term if prev_index > 0 else 0
                message = _AppendEntries(
                    self.term, self.index, prev_index, prev_term, entries, self.commit_index
                )
                size = CTRL_WIRE_BYTES + ENTRY_WIRE_BYTES * len(entries)
                self._send(peer, message, size)
                last_send = self.sim.now
                if entries:
                    # Optimistically advance so the next batch pipelines.
                    self.next_index[peer] = next_index + len(entries)
                # Wait for the ack (or a retry tick if it was lost).
                kick = Event(self.sim)
                self._replicator_kicks[peer] = kick
                timer = self.sim.timeout(self.config.heartbeat_us)
                timer.add_callback(lambda _ev, k=kick: k.try_trigger(None))
                yield kick
                timer.cancel()
        except ProcessKilled:
            raise


class NotLeader(Exception):
    """Raised to clients who contact a non-leader replica."""

    def __init__(self, hint: Optional[int] = None):
        self.hint = hint
        super().__init__(f"not the leader (hint: {hint})")


class RaftCluster:
    """A Raft-R deployment: 2F+1 identically provisioned replicas."""

    def __init__(self, fabric: Fabric, config: RaftConfig = RaftConfig(), name: str = "raft"):
        self.fabric = fabric
        self.config = config
        self.name = name
        self.nodes = [RaftNode(self, i) for i in range(config.nodes)]
        # KvClient compatibility: expose the replicas as "CPU nodes".
        self.cpu_nodes = self.nodes

    def start(self) -> None:
        """Start all replicas; an election follows within the timeout."""
        for node in self.nodes:
            node.start()

    def leader(self) -> Optional[RaftNode]:
        """The current leader, if one is elected."""
        for node in self.nodes:
            if node.role == "leader" and node.host.alive:
                return node
        return None

    def wait_until_serving(self, timeout_us: Optional[float] = None):
        """Process: poll until a leader exists; returns it."""
        sim = self.fabric.sim
        deadline = None if timeout_us is None else sim.now + timeout_us
        while True:
            leader = self.leader()
            if leader is not None:
                return leader
            if deadline is not None and sim.now >= deadline:
                raise TimeoutError(f"no Raft leader after {timeout_us}us")
            yield sim.timeout(1 * MS)

    def crash_leader(self) -> Optional[RaftNode]:
        """Kill the current leader."""
        leader = self.leader()
        if leader is not None:
            leader.crash()
        return leader

    def preload(self, items) -> None:
        """Synchronously pre-populate every replica (§6.2 scaffolding)."""
        for key, value in items:
            key, value = bytes(key), bytes(value)
            for node in self.nodes:
                node._partition_of(key)[key] = value
