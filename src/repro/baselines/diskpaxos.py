"""Disk Paxos (Gafni & Lamport, 2003) on the RDMA substrate.

Sift "borrows ideas from Disk Paxos to separate processing from storage"
(§1) and Table 1 contrasts the two, so the reproduction includes a
working Disk Paxos core: processes reach consensus by reading and
writing per-process *blocks* on passive disks, with no inter-process
messages.  We host the disk blocks on the same simulated memory nodes
Sift uses — a disk is a registered memory region, a disk access is a
one-sided verb — which makes the structural difference from Sift
directly observable in tests: Disk Paxos acceptors store only ballots
and proposals (no materialised state machine), so replacing a failed
proposer requires re-running consensus state forward, whereas a Sift
coordinator finds both the log and the state machine in place (§2.3).

Algorithm (per Gafni & Lamport): each process *p* owns block[p] on every
disk holding ``(mbal, bal, inp)``.  To choose a value, *p*:

1. **Phase 1**: writes its ballot to block[p] on every disk and reads
   all other blocks from a majority of disks; if any block shows a
   higher ``mbal``, *p* aborts and retries with a larger ballot.
2. **Phase 2**: adopts the ``inp`` of the highest ``bal`` seen (or its
   own input), writes ``(mbal, bal=mbal, inp)`` to a majority, re-reads;
   success means ``inp`` is chosen.

This module implements a single-decree instance; a sequence of instances
forms the SMR substrate (exercised in tests, not benchmarked — the paper
omits Disk Paxos performance because "it has different fault recovery
properties compared to Sift, making a direct comparison unfair", §6.3.1).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.net.fabric import Fabric
from repro.net.host import Host
from repro.rdma.errors import RdmaError
from repro.rdma.listener import RdmaListener
from repro.rdma.memory import MemoryRegion
from repro.rdma.nic import Rnic
from repro.rdma.qp import QueuePair
from repro.sim.engine import Event

__all__ = ["DiskPaxosDisk", "DiskPaxosProposer", "DiskPaxosInstance"]

_BLOCK = struct.Struct("<QQI")  # mbal, bal, value length
BLOCK_BYTES = 256
DISK_REGION = "dpx-blocks"


class DiskPaxosDisk:
    """A passive 'disk': one block per proposer, exported over RDMA."""

    def __init__(self, fabric: Fabric, name: str, proposers: int):
        self.fabric = fabric
        self.name = name
        self.proposers = proposers
        self.host: Host = fabric.add_host(name, cores=1)
        self.nic = Rnic(self.host, fabric)
        self.listener = RdmaListener(self.host)
        self.region = MemoryRegion(DISK_REGION, BLOCK_BYTES * proposers)
        self.listener.export(self.region, exclusive=False)

    def crash(self) -> None:
        """Fail-stop the disk."""
        self.host.crash()


def _encode_block(mbal: int, bal: int, value: bytes) -> bytes:
    if len(value) > BLOCK_BYTES - _BLOCK.size:
        raise ValueError("value too large for a Disk Paxos block")
    return _BLOCK.pack(mbal, bal, len(value)) + value


def _decode_block(raw: bytes) -> Tuple[int, int, bytes]:
    mbal, bal, length = _BLOCK.unpack_from(raw)
    value = bytes(raw[_BLOCK.size : _BLOCK.size + min(length, BLOCK_BYTES - _BLOCK.size)])
    return mbal, bal, value


class DiskPaxosProposer:
    """A proposer/learner process (what Disk Paxos calls a processor)."""

    def __init__(
        self,
        fabric: Fabric,
        name: str,
        proposer_id: int,
        disks: List[DiskPaxosDisk],
        cores: int = 2,
    ):
        self.fabric = fabric
        self.name = name
        self.proposer_id = proposer_id
        self.disks = disks
        self.host: Host = fabric.add_host(name, cores=cores)
        self.nic = Rnic(self.host, fabric)
        self._qps: Dict[int, QueuePair] = {}
        self._rng = fabric.rng.stream(f"diskpaxos:{name}")

    @property
    def quorum(self) -> int:
        return len(self.disks) // 2 + 1

    def connect(self):
        """Process: open a QP to every reachable disk."""
        for index, disk in enumerate(self.disks):
            qp = QueuePair(self.nic, disk.listener, name=f"dpx-{self.name}-{index}")
            try:
                yield self.host.spawn(qp.connect([DISK_REGION]))
            except Exception:
                continue
            self._qps[index] = qp
        if len(self._qps) < self.quorum:
            raise RdmaError("cannot reach a majority of disks")

    def propose(self, value: bytes, max_rounds: int = 64):
        """Process: run Disk Paxos until a value is *chosen*; returns it."""
        ballot = self.proposer_id + 1
        total = len(self.disks)
        for _round in range(max_rounds):
            outcome = yield from self._ballot_round(ballot, value)
            if outcome is not None:
                return outcome
            # Abort: someone saw a higher mbal.  Back off and retry higher.
            ballot += total + self._rng.randrange(1, 4) * total
            yield self.host.sim.timeout(self._rng.uniform(50.0, 500.0))
        raise RdmaError(f"no value chosen after {max_rounds} ballots")

    # -- one ballot --------------------------------------------------------------

    def _ballot_round(self, ballot: int, my_value: bytes):
        # Phase 1: write (mbal=ballot) to our block, read all blocks.
        mine = _encode_block(ballot, 0, b"")
        blocks = yield from self._write_and_read_all(mine)
        if blocks is None:
            return None
        highest_bal, adopted = 0, None
        for other_blocks in blocks:
            for pid, (mbal, bal, val) in other_blocks.items():
                if pid != self.proposer_id and mbal > ballot:
                    return None  # abort: a higher ballot is active
                if bal > highest_bal:
                    highest_bal, adopted = bal, val
        choice = adopted if adopted else my_value
        # Phase 2: write (mbal, bal=ballot, choice), re-read for conflicts.
        mine = _encode_block(ballot, ballot, choice)
        blocks = yield from self._write_and_read_all(mine)
        if blocks is None:
            return None
        for other_blocks in blocks:
            for pid, (mbal, _bal, _val) in other_blocks.items():
                if pid != self.proposer_id and mbal > ballot:
                    return None
        return choice

    def _write_and_read_all(self, my_block: bytes):
        """Write our block and read everyone's, on a majority of disks.

        Returns a list (one element per responding disk) of
        ``{proposer_id: decoded block}``, or None if no majority responded.
        """
        my_offset = self.proposer_id * BLOCK_BYTES
        results = []
        responded = 0
        pending: List[Tuple[int, Event]] = []
        for index, qp in list(self._qps.items()):
            write = qp.write(DISK_REGION, my_offset, my_block)
            pending.append((index, write))
        for index, write in pending:
            try:
                yield write
            except RdmaError:
                self._qps.pop(index, None)
                continue
            reads = {}
            failed = False
            for pid in range(self._proposer_count()):
                try:
                    raw = yield self._qps[index].read(
                        DISK_REGION, pid * BLOCK_BYTES, BLOCK_BYTES
                    )
                except (RdmaError, KeyError):
                    self._qps.pop(index, None)
                    failed = True
                    break
                reads[pid] = _decode_block(raw)
            if failed:
                continue
            results.append(reads)
            responded += 1
        if responded < self.quorum:
            return None
        return results

    def _proposer_count(self) -> int:
        return self.disks[0].proposers


class DiskPaxosInstance:
    """Convenience wrapper: disks + proposers for one consensus instance."""

    def __init__(
        self,
        fabric: Fabric,
        disks: int = 3,
        proposers: int = 2,
        name: str = "dpx",
    ):
        self.disks = [
            DiskPaxosDisk(fabric, f"{name}-disk{i}", proposers) for i in range(disks)
        ]
        self.proposers = [
            DiskPaxosProposer(fabric, f"{name}-p{i}", i, self.disks)
            for i in range(proposers)
        ]
