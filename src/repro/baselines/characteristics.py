"""Table 1: comparison of key consensus protocol characteristics.

The table is derived programmatically from the protocol implementations'
own configuration objects where possible (replication factors), with the
qualitative columns recorded as data.  The benchmark
``benchmarks/test_table1_characteristics.py`` renders and checks it.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["PROTOCOL_CHARACTERISTICS", "characteristics_table", "replication_factor"]

PROTOCOL_CHARACTERISTICS: List[Dict[str, str]] = [
    {
        "type": "Sift",
        "resource_location": "Disaggregated",
        "protocol": "1-sided RDMA",
        "erasure_coding": "Yes",
        "replication_factor": "2Fm + 1, Fc + 1",
    },
    {
        "type": "Raft",
        "resource_location": "Coupled",
        "protocol": "TCP",
        "erasure_coding": "No",
        "replication_factor": "2F + 1",
    },
    {
        "type": "DARE",
        "resource_location": "Coupled",
        "protocol": "1-sided RDMA",
        "erasure_coding": "No",
        "replication_factor": "2F + 1",
    },
    {
        "type": "RS-Paxos",
        "resource_location": "Coupled",
        "protocol": "TCP",
        "erasure_coding": "Yes",
        "replication_factor": "QR + QW - X",
    },
    {
        "type": "Disk Paxos",
        "resource_location": "Disaggregated*",
        "protocol": "Unspecified",
        "erasure_coding": "No",
        "replication_factor": "2F + 1 disks + P + L",
    },
]


def replication_factor(system: str, f: int) -> Dict[str, int]:
    """Concrete node counts for a fault tolerance level *f*.

    Cross-checked in tests against the implementations' own geometry
    (``SiftConfig.memory_node_count`` etc.).
    """
    if system == "sift":
        return {"memory_nodes": 2 * f + 1, "cpu_nodes": f + 1}
    if system in ("raft", "dare", "epaxos"):
        return {"nodes": 2 * f + 1}
    if system == "disk_paxos":
        return {"disks": 2 * f + 1, "proposers": f + 1}
    raise ValueError(f"unknown system: {system}")


def characteristics_table() -> str:
    """Render Table 1 as aligned text."""
    headers = ["Type", "Resource Location", "Protocol", "Erasure Coding", "Replication Factor"]
    keys = ["type", "resource_location", "protocol", "erasure_coding", "replication_factor"]
    rows = [[row[key] for key in keys] for row in PROTOCOL_CHARACTERISTICS]
    widths = [
        max(len(headers[i]), max(len(row[i]) for row in rows)) for i in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
