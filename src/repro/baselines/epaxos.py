"""EPaxos as evaluated in §6.3.

EPaxos [21] is leaderless: every replica services client requests, so no
node is under-utilised — but "both reads and writes require network
operations" (§6.3.2), which caps read throughput far below the
leader-local reads of Raft-R and Sift, while write throughput benefits
from spreading command leadership across all replicas.

We implement the protocol shape that determines the evaluation's
numbers:

* every replica is a *command leader* for the ops its clients send;
* ops are **batched** before consensus — "we have changed the batching
  parameter from 5 ms to 100 µs or 100 requests, whichever comes first"
  (§6.3.1);
* a batch runs PreAccept at all peers and commits on the **fast path**
  when a fast quorum replies without adding new dependencies; when a
  peer reports unseen dependencies (a conflicting command for the same
  key in flight elsewhere), the batch takes the **slow path** — one more
  Accept round at a classic majority (the Paxos-Accept fallback);
* committed batches execute in dependency order at the command leader
  and are announced asynchronously to peers.

Relative to full EPaxos we simplify execution: the dependency graph is
per-key sequence numbers rather than full graph SCC linearisation.  This
preserves the message/CPU/latency profile (what Figures 5 and 6 measure)
while keeping per-key ordering exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.net.fabric import Fabric
from repro.net.host import Host
from repro.net.rpc import Reply, RpcEndpoint
from repro.obs import state as obs_state
from repro.rdma.messaging import RdmaMessenger
from repro.rdma.nic import Rnic
from repro.sim.engine import Event, ProcessKilled

__all__ = ["EPaxosCluster", "EPaxosConfig"]


@dataclass(frozen=True)
class EPaxosCosts:
    """Per-message / per-op CPU charges (core-microseconds)."""

    msg_recv_us: float = 1.2
    op_us: float = 4.0
    preaccept_us: float = 1.5
    """Dependency-table lookup/update per command at a peer."""

    execute_us: float = 2.0


@dataclass(frozen=True)
class EPaxosConfig:
    """One EPaxos deployment."""

    f: int = 1
    cores: int = 8
    batch_window_us: float = 100.0  # §6.3.1
    batch_max: int = 100  # §6.3.1
    costs: EPaxosCosts = field(default_factory=EPaxosCosts)

    @property
    def nodes(self) -> int:
        return 2 * self.f + 1

    @property
    def slow_quorum(self) -> int:
        """Classic majority, including the command leader."""
        return self.f + 1

    @property
    def fast_quorum(self) -> int:
        """EPaxos fast-path quorum, including the command leader:
        F + floor((F+1)/2) (Moraru et al.; 2 of 3 at F=1, 3 of 5 at F=2)."""
        return self.f + (self.f + 1) // 2


class _Command(NamedTuple):
    op: str  # "put" | "get" | "delete"
    key: bytes
    value: Optional[bytes]


class _PreAccept(NamedTuple):
    sender: int
    batch_id: int
    commands: Tuple[_Command, ...]
    seqs: Tuple[int, ...]


class _PreAcceptReply(NamedTuple):
    sender: int
    batch_id: int
    deps_changed: bool
    seqs: Tuple[int, ...]


class _Accept(NamedTuple):
    sender: int
    batch_id: int
    commands: Tuple[_Command, ...]
    seqs: Tuple[int, ...]


class _AcceptReply(NamedTuple):
    sender: int
    batch_id: int


class _Commit(NamedTuple):
    sender: int
    batch_id: int
    commands: Tuple[_Command, ...]


CMD_WIRE_BYTES = 1_060
CTRL_WIRE_BYTES = 64


class _BatchState:
    __slots__ = ("replies", "deps_changed", "done", "accept_replies", "commands")

    def __init__(self, done: Event, commands: Tuple[_Command, ...], leader: int):
        # Replies are tracked per sender: a duplicated network message must
        # not count twice toward a quorum.
        self.replies = {leader}  # the command leader pre-accepts its own batch
        self.accept_replies = {leader}
        self.deps_changed = False
        self.done = done
        self.commands = commands


class EPaxosReplica:
    """One EPaxos replica: command leader for its own clients."""

    def __init__(self, cluster: "EPaxosCluster", index: int):
        self.cluster = cluster
        self.index = index
        self.config = cluster.config
        fabric = cluster.fabric
        self.host: Host = fabric.add_host(
            f"{cluster.name}-r{index}", cores=self.config.cores
        )
        self.nic = Rnic(self.host, fabric)
        self.messenger = RdmaMessenger(self.host, self.nic)
        self.endpoint = RpcEndpoint(self.host, fabric, name="kv")
        self.sim = self.host.sim

        self.store: Dict[bytes, bytes] = {}
        self.key_seq: Dict[bytes, int] = {}  # per-key dependency sequence
        self._batch: List[Tuple[_Command, Event]] = []
        self._batch_timer_armed = False
        self._batch_ids = count(1)
        self._inflight: Dict[int, _BatchState] = {}
        self.stats = {"ops": 0, "batches": 0, "fast_path": 0, "slow_path": 0}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        self.host.spawn(self._message_pump(), name="epaxos-pump")
        self.endpoint.register("kv.put", self.handle_put)
        self.endpoint.register("kv.get", self.handle_get)
        self.endpoint.register("kv.delete", self.handle_delete)

    def crash(self) -> None:
        self.host.crash()

    def restart(self) -> None:
        """Restart with empty state (in-flight batches at this replica die).

        Clients that were waiting on those batches observe RPC timeouts
        and retry elsewhere; peers' dependency tables already carry the
        sequence numbers this replica handed out, so ordering is safe.
        """
        if self.host.alive:
            return
        self.store = {}
        self.key_seq = {}
        self._batch = []
        self._batch_timer_armed = False
        self._inflight = {}
        self.host.restart()
        self.start()

    # ------------------------------------------------------------------
    # Client handlers: everything goes through consensus (§6.3.2)
    # ------------------------------------------------------------------

    def handle_put(self, payload: Tuple[bytes, bytes]):
        key, value = payload
        yield from self._submit(_Command("put", bytes(key), bytes(value)))
        self.stats["ops"] += 1
        return Reply(("ok", None), 32)

    def handle_get(self, key: bytes):
        yield from self._submit(_Command("get", bytes(key), None))
        self.stats["ops"] += 1
        value = self.store.get(bytes(key))
        if value is None:
            return Reply(("missing", None), 16)
        return Reply(("ok", value), 16 + len(value))

    def handle_delete(self, key: bytes):
        yield from self._submit(_Command("delete", bytes(key), None))
        self.stats["ops"] += 1
        return Reply(("ok", None), 32)

    def _submit(self, command: _Command):
        yield self.host.execute(self.config.costs.op_us)
        done = Event(self.sim)
        self._batch.append((command, done))
        if len(self._batch) >= self.config.batch_max:
            self._flush()
        elif not self._batch_timer_armed:
            self._batch_timer_armed = True
            self.sim.schedule(self.config.batch_window_us, self._flush_on_timer)
        yield done

    def _flush_on_timer(self) -> None:
        self._batch_timer_armed = False
        if self.host.alive:
            self._flush()

    def _flush(self) -> None:
        if not self._batch:
            return
        batch, self._batch = self._batch, []
        batch_id = next(self._batch_ids)
        commands = tuple(cmd for cmd, _done in batch)
        seqs = tuple(self._bump_seq(cmd.key) for cmd in commands)
        state = _BatchState(self._make_done(batch), commands, self.index)
        self._inflight[batch_id] = state
        self.stats["batches"] += 1
        message = _PreAccept(self.index, batch_id, commands, seqs)
        size = CTRL_WIRE_BYTES + CMD_WIRE_BYTES * len(commands)
        for peer in self._peers():
            self.messenger.send(self.cluster.replicas[peer].messenger, message, size)
        self._maybe_finish(batch_id)

    def _make_done(self, batch: List[Tuple[_Command, Event]]) -> Event:
        done = Event(self.sim)

        def finish(_event: Event) -> None:
            for command, waiter in batch:
                self._execute(command)
                waiter.try_trigger(None)

        done.add_callback(finish)
        return done

    def _bump_seq(self, key: bytes) -> int:
        seq = self.key_seq.get(key, 0) + 1
        self.key_seq[key] = seq
        return seq

    # ------------------------------------------------------------------
    # Message pump
    # ------------------------------------------------------------------

    def _message_pump(self):
        try:
            while True:
                message = yield self.messenger.recv()
                yield self.host.execute(self.config.costs.msg_recv_us)
                if isinstance(message, _PreAccept):
                    yield from self._on_preaccept(message)
                elif isinstance(message, _PreAcceptReply):
                    self._on_preaccept_reply(message)
                elif isinstance(message, _Accept):
                    self._on_accept(message)
                elif isinstance(message, _AcceptReply):
                    self._on_accept_reply(message)
                elif isinstance(message, _Commit):
                    yield from self._on_commit(message)
        except ProcessKilled:
            raise

    def _on_preaccept(self, msg: _PreAccept):
        yield self.host.execute(self.config.costs.preaccept_us * len(msg.commands))
        deps_changed = False
        new_seqs = []
        for command, seq in zip(msg.commands, msg.seqs):
            local = self.key_seq.get(command.key, 0)
            if local >= seq:
                # We have seen a conflicting command the leader has not.
                deps_changed = True
                seq = local + 1
            self.key_seq[command.key] = seq
            new_seqs.append(seq)
        reply = _PreAcceptReply(self.index, msg.batch_id, deps_changed, tuple(new_seqs))
        self.messenger.send(
            self.cluster.replicas[msg.sender].messenger, reply, CTRL_WIRE_BYTES
        )

    def _on_preaccept_reply(self, msg: _PreAcceptReply) -> None:
        state = self._inflight.get(msg.batch_id)
        if state is None or state.done.settled:
            return
        state.replies.add(msg.sender)
        state.deps_changed = state.deps_changed or msg.deps_changed
        self._maybe_finish(msg.batch_id)

    def _maybe_finish(self, batch_id: int) -> None:
        state = self._inflight.get(batch_id)
        if state is None or state.done.settled:
            return
        if not state.deps_changed and len(state.replies) >= self.config.fast_quorum:
            self.stats["fast_path"] += 1
            if obs_state.REGISTRY is not None:
                obs_state.REGISTRY.counter("epaxos.commits", path="fast").inc()
            self._commit(batch_id, state)
        elif state.deps_changed and len(state.replies) >= self.config.nodes:
            # Slow path: all PreAccept replies in, run the Accept round.
            self.stats["slow_path"] += 1
            if obs_state.REGISTRY is not None:
                obs_state.REGISTRY.counter("epaxos.commits", path="slow").inc()
            self._run_accept(batch_id, state)

    def _run_accept(self, batch_id: int, state: _BatchState) -> None:
        message = _Accept(self.index, batch_id, (), ())
        for peer in self._peers():
            self.messenger.send(
                self.cluster.replicas[peer].messenger, message, CTRL_WIRE_BYTES
            )

    def _on_accept(self, msg: _Accept) -> None:
        reply = _AcceptReply(self.index, msg.batch_id)
        self.messenger.send(
            self.cluster.replicas[msg.sender].messenger, reply, CTRL_WIRE_BYTES
        )

    def _on_accept_reply(self, msg: _AcceptReply) -> None:
        state = self._inflight.get(msg.batch_id)
        if state is None or state.done.settled:
            return
        state.accept_replies.add(msg.sender)
        if len(state.accept_replies) >= self.config.slow_quorum:
            self._commit(msg.batch_id, state)

    def _commit(self, batch_id: int, state: _BatchState) -> None:
        del self._inflight[batch_id]
        state.done.try_trigger(None)
        if obs_state.TRACER is not None:
            obs_state.TRACER.instant(
                "epaxos.commit",
                self.sim.now,
                replica=self.index,
                commands=len(state.commands),
            )
        # Async commit notification to peers (off the client's latency path).
        message = _Commit(self.index, batch_id, state.commands)
        size = CTRL_WIRE_BYTES + CMD_WIRE_BYTES * len(state.commands)
        for peer in self._peers():
            self.messenger.send(self.cluster.replicas[peer].messenger, message, size)

    def _on_commit(self, msg: _Commit):
        yield self.host.execute(self.config.costs.execute_us * len(msg.commands))
        for command in msg.commands:
            self._execute(command)

    def _execute(self, command: _Command) -> None:
        if command.op == "put":
            self.store[command.key] = command.value
        elif command.op == "delete":
            self.store.pop(command.key, None)

    def _peers(self) -> List[int]:
        return [i for i in range(self.config.nodes) if i != self.index]


class EPaxosCluster:
    """An EPaxos deployment: 2F+1 equal replicas, all serving clients."""

    def __init__(
        self, fabric: Fabric, config: EPaxosConfig = EPaxosConfig(), name: str = "epaxos"
    ):
        self.fabric = fabric
        self.config = config
        self.name = name
        self.replicas = [EPaxosReplica(self, i) for i in range(config.nodes)]
        self.cpu_nodes = self.replicas  # KvClient compatibility

    def start(self) -> None:
        for replica in self.replicas:
            replica.start()

    def wait_until_serving(self, timeout_us: Optional[float] = None):
        """Process: EPaxos serves immediately; provided for API symmetry."""
        if False:
            yield  # pragma: no cover - keeps this a generator
        return self.replicas[0]

    def preload(self, items) -> None:
        """Synchronously pre-populate every replica (§6.2 scaffolding)."""
        for key, value in items:
            key, value = bytes(key), bytes(value)
            for replica in self.replicas:
                replica.store[key] = value
