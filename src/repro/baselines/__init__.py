"""Comparison systems evaluated against Sift (§6).

* :mod:`~repro.baselines.raft` — **Raft-R**, "a basic Raft-like system
  using RDMA send/recv verbs" (§6.3.1): leader-based SMR with a complete
  replica at the leader, a partitioned in-memory map, and follower CPUs
  actively processing replication messages.
* :mod:`~repro.baselines.epaxos` — **EPaxos** as evaluated in §6.3: a
  leaderless protocol where every replica serves clients, commands carry
  dependencies, and both reads and writes require network operations.
* :mod:`~repro.baselines.diskpaxos` — a reference **Disk Paxos** model
  for the Table 1 comparison (passive acceptors, per-proposer blocks).
* :mod:`~repro.baselines.characteristics` — the protocol-characteristics
  matrix reproduced as Table 1.
"""

from repro.baselines.characteristics import PROTOCOL_CHARACTERISTICS, characteristics_table
from repro.baselines.epaxos import EPaxosCluster
from repro.baselines.raft import RaftCluster

__all__ = [
    "EPaxosCluster",
    "PROTOCOL_CHARACTERISTICS",
    "RaftCluster",
    "characteristics_table",
]
