#!/usr/bin/env python3
"""Quickstart: a fault-tolerant key-value store on one Sift group.

Boots a Sift group (3 memory nodes + 2 CPU nodes, F=1) on a simulated
RDMA fabric, serves puts/gets through the replicated KV store, then
kills the coordinator mid-workload and shows the backup CPU node taking
over with no data loss.

Run:  python examples/quickstart.py
"""

from repro.bench.report import kv_table
from repro.core import SiftGroup
from repro.kv import KvClient, KvConfig, kv_app_factory
from repro.net import Fabric
from repro.sim import SEC, Simulator


def main() -> None:
    sim = Simulator()
    fabric = Fabric(sim)

    # A small store: 8k keys, 32B keys / 992B values (the paper's sizes).
    kv_config = KvConfig(max_keys=8_192, wal_entries=2_048)
    sift_config = kv_config.sift_config(fm=1, fc=1, wal_entries=2_048)
    group = SiftGroup(fabric, sift_config, name="demo", app_factory=kv_app_factory(kv_config))
    group.start()

    client = KvClient(fabric.add_host("client", cores=4), fabric, group)

    def scenario():
        coordinator = yield from group.wait_until_serving(timeout_us=2 * SEC)
        print(f"coordinator elected: {coordinator.name} (term {coordinator.term})")

        yield from client.put(b"user:42", b"Ada Lovelace")
        yield from client.put(b"user:43", b"Charles Babbage")
        value = yield from client.get(b"user:42")
        print(f"get user:42 -> {value!r}")

        print(f"\ncrashing the coordinator {coordinator.name}...")
        coordinator.crash()

        # The client transparently retries until the backup CPU node wins
        # the election, replays the logs, and starts serving.
        value = yield from client.get(b"user:43")
        survivor = group.coordinator()
        print(f"get user:43 -> {value!r}  (served by {survivor.name}, term {survivor.term})")

        yield from client.put(b"user:44", b"Grace Hopper")
        value = yield from client.get(b"user:44")
        print(f"put+get after failover -> {value!r}")
        return survivor

    process = sim.spawn(scenario(), name="scenario")
    sim.run(until=30 * SEC)
    if not process.ok:
        raise SystemExit(f"scenario failed: {process.exception}")

    survivor = process.value
    print()
    print(
        kv_table(
            "Summary",
            [
                ("simulated time", f"{sim.now / 1e6:.3f} s"),
                ("coordinator after failover", survivor.name),
                ("client retries", str(survivor is not None and client.stats["retries"])),
                ("KV server applies", str(survivor.app.stats["applies"])),
                ("records replayed at takeover", str(survivor.app.stats["replayed"])),
            ],
        )
    )


if __name__ == "__main__":
    main()
