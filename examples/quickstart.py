#!/usr/bin/env python3
"""Quickstart: a fault-tolerant key-value store on one Sift group.

Boots a Sift group (3 memory nodes + 2 CPU nodes, F=1) through the
:mod:`repro.api` façade, serves puts/gets through the replicated KV
store, then kills the coordinator mid-workload and shows the backup CPU
node taking over with no data loss.

Run:  python examples/quickstart.py
"""

from repro.api import Cluster
from repro.bench.report import kv_table


def main() -> None:
    # One call builds simulator + fabric + group and starts it — the same
    # spec the benchmark harness uses (see repro.bench.systems).
    cluster = Cluster.build("sift", seed=42)
    group = cluster.inner
    client = cluster.client(name="client")

    def scenario():
        coordinator = yield from cluster.ready()
        print(f"coordinator elected: {coordinator.name} (term {coordinator.term})")

        yield from client.put(b"user:42", b"Ada Lovelace")
        yield from client.put(b"user:43", b"Charles Babbage")
        value = yield from client.get(b"user:42")
        print(f"get user:42 -> {value!r}")

        print(f"\ncrashing the coordinator {coordinator.name}...")
        coordinator.crash()

        # The client transparently retries until the backup CPU node wins
        # the election, replays the logs, and starts serving.
        value = yield from client.get(b"user:43")
        survivor = group.coordinator()
        print(f"get user:43 -> {value!r}  (served by {survivor.name}, term {survivor.term})")

        yield from client.put(b"user:44", b"Grace Hopper")
        value = yield from client.get(b"user:44")
        print(f"put+get after failover -> {value!r}")
        return survivor

    survivor = cluster.run(scenario())

    print()
    print(
        kv_table(
            "Summary",
            [
                ("simulated time", f"{cluster.sim.now / 1e6:.3f} s"),
                ("coordinator after failover", survivor.name),
                ("client retries", str(client.stats["retries"])),
                ("KV server applies", str(survivor.app.stats["applies"])),
                ("records replayed at takeover", str(survivor.app.stats["replayed"])),
            ],
        )
    )


if __name__ == "__main__":
    main()
