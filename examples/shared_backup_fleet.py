#!/usr/bin/env python3
"""Shared backup CPU nodes across consensus groups (§5.2).

Runs several single-CPU-node Sift groups plus a small shared backup
pool.  When a group's only CPU node dies, a pool monitor detects the
silent heartbeats and promotes an idle backup into the group, which
campaigns, recovers, and resumes service — G + B CPU nodes instead of
(F + 1) x G.

Run:  python examples/shared_backup_fleet.py
"""

from repro.core import BackupPool, SiftGroup
from repro.kv import KvClient, KvConfig, kv_app_factory
from repro.net import Fabric
from repro.sim import SEC, Simulator

N_GROUPS = 3


def main() -> None:
    sim = Simulator()
    fabric = Fabric(sim)

    kv_config = KvConfig(max_keys=2_048, wal_entries=512)
    groups = []
    for index in range(N_GROUPS):
        # fc=0: one CPU node per group; the pool supplies redundancy.
        sift_config = kv_config.sift_config(fm=1, fc=0, wal_entries=512)
        group = SiftGroup(
            fabric, sift_config, name=f"g{index}", app_factory=kv_app_factory(kv_config)
        )
        group.start()
        groups.append(group)

    pool = BackupPool(fabric, groups, size=2, provisioning_delay_us=2 * SEC)
    pool.start()
    clients = [
        KvClient(fabric.add_host(f"client{index}", cores=2), fabric, group)
        for index, group in enumerate(groups)
    ]

    def scenario():
        for index, group in enumerate(groups):
            yield from group.wait_until_serving(timeout_us=3 * SEC)
            yield from clients[index].put(b"group", b"g%d-data" % index)
        print(f"{N_GROUPS} groups serving with 1 CPU node each + {pool.idle_backups} shared backups")

        victim = groups[1]
        print(f"\nkilling the only CPU node of {victim.name}...")
        victim.cpu_nodes[0].crash()

        # The pool monitor notices the dead group and promotes a backup.
        value = yield from clients[1].get(b"group")
        print(f"{victim.name} recovered via backup promotion: get -> {value!r}")
        print(f"promotions: {pool.promotions}, idle backups now: {pool.idle_backups}")

        # Other groups were never disturbed.
        value = yield from clients[2].get(b"group")
        assert value == b"g2-data"
        print("unrelated groups unaffected.")

        # The pool replenishes itself after the provisioning delay.
        yield sim.timeout(3 * SEC)
        print(f"after provisioning: idle backups = {pool.idle_backups}")

    process = sim.spawn(scenario(), name="scenario")
    sim.run(until=60 * SEC)
    if not process.ok:
        raise SystemExit(f"scenario failed: {process.exception}")


if __name__ == "__main__":
    main()
