#!/usr/bin/env python3
"""Shared backup CPU nodes across consensus groups (§5.2) + elasticity.

Builds the sharded KV service through the :mod:`repro.api` façade:
several single-CPU-node Sift groups behind a consistent-hash router,
plus a small shared backup pool.  When a shard's only CPU node dies,
the pool monitor detects the silent heartbeats and promotes an idle
backup into the group, which campaigns, recovers, and resumes service —
G + B CPU nodes instead of (F + 1) x G.

The second act is elastic: ``cluster.scale(shards=...)`` live-splits a
hot shard onto a new group (copy, mirror, cutover, forwarding window)
and every key written before the split reads back afterwards.  All
placement facts come from ``cluster.topology()`` snapshots — no
reaching into the service object.

Run:  python examples/shared_backup_fleet.py
"""

from repro.api import Cluster
from repro.sim import SEC

N_SHARDS = 3
N_ITEMS = 12


def describe(topo) -> str:
    pool = topo.pool
    return (
        f"ring v{topo.ring_version}: {len(topo.shards)} shards, "
        f"{int(pool.gauges['idle'])}/{int(pool.gauges['capacity'])} "
        f"backups idle"
    )


def main() -> None:
    cluster = Cluster.build(
        "sharded",
        seed=7,
        shards=N_SHARDS,
        backups=2,
        provisioning_delay_us=2 * SEC,
    )
    service = cluster.inner
    router = cluster.client()  # a ShardRouter: routes each key to its shard

    def scenario():
        yield from cluster.ready()
        for index in range(N_ITEMS):
            yield from router.put(b"item:%d" % index, b"payload-%d" % index)
        print(describe(cluster.topology()))

        probe = b"item:0"
        victim = service.shard_for(probe)
        coordinator = cluster.topology().coordinator_of(victim)
        print(f"\nkilling {coordinator}, the only CPU node of {victim}...")
        service.crash_coordinator(victim)

        # The pool monitor notices the dead shard and promotes a backup;
        # the router's retry loop rides out the failover transparently.
        value = yield from router.get(probe)
        topo = cluster.topology()
        print(
            f"{victim} recovered via promotion of "
            f"{topo.coordinator_of(victim)}: get -> {value!r}"
        )
        print(describe(topo))

        # Keys on other shards were never disturbed.
        for index in range(N_ITEMS):
            key = b"item:%d" % index
            if service.shard_for(key) != victim:
                value = yield from router.get(key)
                assert value == b"payload-%d" % index
        print("unrelated shards unaffected.")

        # The pool replenishes itself after the provisioning delay.
        yield cluster.sim.timeout(3 * SEC)
        print(describe(cluster.topology()))

    cluster.run(scenario())

    # -- elasticity: live-split a shard without losing a write ------------
    before = cluster.topology()
    print(f"\nscaling out: {len(before.shards)} -> {len(before.shards) + 1} shards...")
    topo = cluster.scale(shards=N_SHARDS + 1)
    print(describe(topo))
    assert topo.ring_version == before.ring_version + 1
    assert len(topo.shards) == N_SHARDS + 1

    def readback():
        for index in range(N_ITEMS):
            value = yield from router.get(b"item:%d" % index)
            assert value == b"payload-%d" % index, index
        print("every pre-split write survived the migration.")

    cluster.run(readback())


if __name__ == "__main__":
    main()
