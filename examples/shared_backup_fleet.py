#!/usr/bin/env python3
"""Shared backup CPU nodes across consensus groups (§5.2).

Builds the sharded KV service through the :mod:`repro.api` façade:
several single-CPU-node Sift groups behind a consistent-hash router,
plus a small shared backup pool.  When a shard's only CPU node dies,
the pool monitor detects the silent heartbeats and promotes an idle
backup into the group, which campaigns, recovers, and resumes service —
G + B CPU nodes instead of (F + 1) x G.

Run:  python examples/shared_backup_fleet.py
"""

from repro.api import Cluster
from repro.sim import SEC

N_SHARDS = 3


def main() -> None:
    cluster = Cluster.build(
        "sharded",
        seed=7,
        shards=N_SHARDS,
        backups=2,
        provisioning_delay_us=2 * SEC,
    )
    service = cluster.inner
    router = cluster.client()  # a ShardRouter: routes each key to its shard

    def scenario():
        yield from cluster.ready()
        for index in range(12):
            yield from router.put(b"item:%d" % index, b"payload-%d" % index)
        pool = service.pool
        print(
            f"{N_SHARDS} shards serving with 1 CPU node each"
            f" + {pool.idle_backups} shared backups"
        )

        probe = b"item:0"
        victim = service.shard_for(probe)
        print(f"\nkilling the only CPU node of {victim} (owns {probe!r})...")
        service.crash_coordinator(victim)

        # The pool monitor notices the dead shard and promotes a backup;
        # the router's retry loop rides out the failover transparently.
        value = yield from router.get(probe)
        promo = pool.promotion_log[-1]
        print(f"{victim} recovered via promotion of {promo.host}: get -> {value!r}")
        print(f"promotions: {pool.promotions}, idle backups now: {pool.idle_backups}")

        # Keys on other shards were never disturbed.
        for index in range(12):
            key = b"item:%d" % index
            if service.shard_for(key) != victim:
                value = yield from router.get(key)
                assert value == b"payload-%d" % index
        print("unrelated shards unaffected.")

        # The pool replenishes itself after the provisioning delay.
        yield cluster.sim.timeout(3 * SEC)
        print(f"after provisioning: idle backups = {pool.idle_backups}")

    cluster.run(scenario())


if __name__ == "__main__":
    main()
