#!/usr/bin/env python3
"""Persistence beyond the memory nodes (§3.5).

Attaches the RocksDB-substitute persistence sink to the KV store: every
applied update is written to an on-disk store by a background thread.
After the whole simulated cluster is gone, the data is still on disk —
and a snapshot can seed a brand-new deployment (the paper's
snapshot-based memory-node recovery alternative).

Run:  python examples/persistent_store.py
"""

import tempfile

from repro.core import SiftGroup
from repro.kv import KvClient, KvConfig, kv_app_factory
from repro.net import Fabric
from repro.persist import PersistenceSink, RocksLite
from repro.sim import SEC, Simulator


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="sift-persist-")
    print(f"persistent store directory: {workdir}")

    sim = Simulator()
    fabric = Fabric(sim)
    kv_config = KvConfig(max_keys=2_048, wal_entries=512)
    stores = {}

    def persistence_factory(cpu_node):
        # Each CPU node keeps its own store directory, like a local disk.
        store = RocksLite(f"{workdir}/{cpu_node.name}")
        stores[cpu_node.name] = store
        return PersistenceSink(cpu_node.host, store)

    sift_config = kv_config.sift_config(fm=1, fc=1, wal_entries=512)
    group = SiftGroup(
        fabric,
        sift_config,
        name="durable",
        app_factory=kv_app_factory(kv_config, persistence_factory=persistence_factory),
    )
    group.start()
    client = KvClient(fabric.add_host("client", cores=2), fabric, group)

    def scenario():
        coordinator = yield from group.wait_until_serving(timeout_us=2 * SEC)
        for index in range(500):
            yield from client.put(b"event:%04d" % index, b"payload-%d" % index)
        # Let the background persistence thread drain.
        while coordinator.app.persistence.backlog:
            yield sim.timeout(10_000)
        return coordinator

    process = sim.spawn(scenario(), name="scenario")
    sim.run(until=30 * SEC)
    if not process.ok:
        raise SystemExit(f"scenario failed: {process.exception}")

    coordinator = process.value
    store = stores[coordinator.name]
    print(f"persisted records: {coordinator.app.persistence.persisted}")
    snapshot = store.checkpoint()
    store.close()
    print(f"checkpoint written: {snapshot}")

    # The cluster is gone; re-open the on-disk store cold.
    reopened = RocksLite(f"{workdir}/{coordinator.name}")
    value = reopened.get(b"event:0042")
    print(f"cold read from disk: event:0042 -> {value!r}")
    assert value == b"payload-42"
    print(f"store holds {len(reopened)} records after recovery from disk.")
    reopened.close()


if __name__ == "__main__":
    main()
