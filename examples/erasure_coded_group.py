#!/usr/bin/env python3
"""Sift EC: halve the memory bill, keep the fault tolerance (§5.1).

Builds a plain group and an erasure-coded group side by side, compares
the per-node memory footprint, then kills a data-shard memory node in
the EC group and shows reads rebuilding blocks from parity while the
coordinator re-copies the node in the background.

Run:  python examples/erasure_coded_group.py
"""

from repro.bench.report import kv_table
from repro.core import SiftGroup
from repro.kv import KvClient, KvConfig, kv_app_factory
from repro.net import Fabric
from repro.sim import MS, SEC, Simulator


def build(fabric, name, erasure_coding):
    kv_config = KvConfig(max_keys=4_096, wal_entries=1_024)
    sift_config = kv_config.sift_config(
        fm=1, fc=1, erasure_coding=erasure_coding, wal_entries=1_024,
        memnode_poll_interval_us=50 * MS,
    )
    group = SiftGroup(
        fabric, sift_config, name=name, app_factory=kv_app_factory(kv_config)
    )
    group.start()
    return group, sift_config


def main() -> None:
    sim = Simulator()
    fabric = Fabric(sim)
    plain, plain_config = build(fabric, "plain", erasure_coding=False)
    coded, coded_config = build(fabric, "coded", erasure_coding=True)

    encoded_per_node = coded_config.encoded_blocks * coded_config.chunk_bytes
    print(
        kv_table(
            "Per-memory-node footprint (same logical store, Fm=1)",
            [
                ("plain replication", f"{plain_config.node_data_bytes / 1e6:8.2f} MB"),
                ("erasure coded", f"{coded_config.node_data_bytes / 1e6:8.2f} MB"),
                (
                    "encoded zone per node",
                    f"{coded_config.encoded_bytes / 1e6:.2f} MB logical -> "
                    f"{encoded_per_node / 1e6:.2f} MB stored "
                    f"({coded_config.fm + 1}x reduction, Fm={coded_config.fm})",
                ),
            ],
        )
    )

    client = KvClient(fabric.add_host("client", cores=4), fabric, coded)

    def scenario():
        yield from coded.wait_until_serving(timeout_us=2 * SEC)
        for index in range(256):
            yield from client.put(b"doc:%d" % index, b"%d-" % index * 100)

        coordinator = coded.serving_coordinator()
        repmem = coordinator.repmem
        print(f"\nkilling data-shard memory node 0 of {coded.name}...")
        coded.crash_memory_node(0)

        # Reads keep working: a cache miss now rebuilds the block from
        # the surviving data shard plus parity (decode on coordinator).
        value = yield from repmem.read(
            repmem.config.direct_bytes + 4 * repmem.config.block_bytes,
            repmem.config.block_bytes,
        )
        assert len(value) == repmem.config.block_bytes
        value = yield from client.get(b"doc:123")
        assert value == b"123-" * 100
        print(f"degraded reads ok (parity decodes so far: {repmem.stats['ec_decodes']})")

        print("restarting the node; coordinator re-copies it in the background...")
        coded.restart_memory_node(0)
        deadline = sim.now + 30 * SEC
        while repmem.states[0] != "live" and sim.now < deadline:
            yield sim.timeout(20 * MS)
        print(f"node 0 state: {repmem.states[0]}; membership: {repmem.membership}")

        value = yield from client.get(b"doc:200")
        assert value == b"200-" * 100
        print("store intact after recovery.")

    process = sim.spawn(scenario(), name="scenario")
    sim.run(until=60 * SEC)
    if not process.ok:
        raise SystemExit(f"scenario failed: {process.exception}")


if __name__ == "__main__":
    main()
