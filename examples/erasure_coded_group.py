#!/usr/bin/env python3
"""Sift EC: halve the memory bill, keep the fault tolerance (§5.1).

Builds a plain group and an erasure-coded group side by side — two
:func:`repro.api.Cluster.build` calls sharing one fabric — compares the
per-node memory footprint, then kills a data-shard memory node in the
EC group and shows reads rebuilding blocks from parity while the
coordinator re-copies the node in the background.

Run:  python examples/erasure_coded_group.py
"""

from repro.api import Cluster
from repro.bench.report import kv_table
from repro.sim import MS, SEC

KV_OVERRIDES = dict(max_keys=4_096, wal_entries=1_024)


def main() -> None:
    plain = Cluster.build("sift", seed=11, kv_overrides=KV_OVERRIDES)
    coded = Cluster.build("sift-ec", fabric=plain.fabric, kv_overrides=KV_OVERRIDES)
    plain_config = plain.inner.config
    coded_config = coded.inner.config
    sim = plain.sim

    encoded_per_node = coded_config.encoded_blocks * coded_config.chunk_bytes
    print(
        kv_table(
            "Per-memory-node footprint (same logical store, Fm=1)",
            [
                ("plain replication", f"{plain_config.node_data_bytes / 1e6:8.2f} MB"),
                ("erasure coded", f"{coded_config.node_data_bytes / 1e6:8.2f} MB"),
                (
                    "encoded zone per node",
                    f"{coded_config.encoded_bytes / 1e6:.2f} MB logical -> "
                    f"{encoded_per_node / 1e6:.2f} MB stored "
                    f"({coded_config.fm + 1}x reduction, Fm={coded_config.fm})",
                ),
            ],
        )
    )

    group = coded.inner
    client = coded.client(name="client")

    def scenario():
        yield from coded.ready()
        for index in range(256):
            yield from client.put(b"doc:%d" % index, b"%d-" % index * 100)

        coordinator = group.serving_coordinator()
        repmem = coordinator.repmem
        print(f"\nkilling data-shard memory node 0 of {group.name}...")
        group.crash_memory_node(0)

        # Reads keep working: a cache miss now rebuilds the block from
        # the surviving data shard plus parity (decode on coordinator).
        value = yield from repmem.read(
            repmem.config.direct_bytes + 4 * repmem.config.block_bytes,
            repmem.config.block_bytes,
        )
        assert len(value) == repmem.config.block_bytes
        value = yield from client.get(b"doc:123")
        assert value == b"123-" * 100
        print(f"degraded reads ok (parity decodes so far: {repmem.stats['ec_decodes']})")

        print("restarting the node; coordinator re-copies it in the background...")
        group.restart_memory_node(0)
        deadline = sim.now + 30 * SEC
        while repmem.states[0] != "live" and sim.now < deadline:
            yield sim.timeout(20 * MS)
        print(f"node 0 state: {repmem.states[0]}; membership: {repmem.membership}")

        value = yield from client.get(b"doc:200")
        assert value == b"200-" * 100
        print("store intact after recovery.")

    coded.run(scenario())


if __name__ == "__main__":
    main()
