#!/usr/bin/env python3
"""Disk Paxos: the 2003 ancestor of Sift's disaggregation (§2.3).

Runs a single-decree Disk Paxos instance on the same simulated fabric:
two proposers race to choose a value by reading and writing per-process
blocks on three passive disks — no messages between proposers, exactly
like Sift's CPU nodes.  Then contrasts the recovery story: a Disk Paxos
acceptor holds only ballots/proposals, while a Sift memory node holds
the materialised state machine, which is why a Sift coordinator can be
replaced "without requiring any state reconstruction" (§1).

Run:  python examples/disk_paxos_demo.py
"""

from repro.baselines.diskpaxos import DiskPaxosInstance
from repro.net import Fabric
from repro.sim import SEC, Simulator


def main() -> None:
    sim = Simulator()
    fabric = Fabric(sim)
    instance = DiskPaxosInstance(fabric, disks=3, proposers=2)

    outcomes = {}

    def proposer(index, value):
        node = instance.proposers[index]
        yield from node.connect()
        chosen = yield from node.propose(value)
        outcomes[index] = chosen
        return chosen

    a = sim.spawn(proposer(0, b"value-from-p0"))
    b = sim.spawn(proposer(1, b"value-from-p1"))
    sim.run(until=30 * SEC)
    if not (a.ok and b.ok):
        raise SystemExit(f"proposals failed: {a.exception or b.exception}")

    print(f"proposer 0 decided: {outcomes[0]!r}")
    print(f"proposer 1 decided: {outcomes[1]!r}")
    assert outcomes[0] == outcomes[1], "agreement violated!"
    print("agreement holds: both proposers chose the same value,")
    print("with zero proposer-to-proposer messages (all I/O via passive disks).")

    # Fault tolerance: one disk of three may fail.
    instance.disks[2].crash()

    def late_proposer():
        node = instance.proposers[0]
        return (yield from node.propose(b"ignored-late-value"))

    late = sim.spawn(late_proposer())
    sim.run(until=sim.now + 30 * SEC)
    print(f"\nafter a disk failure, a re-proposal still learns: {late.value!r}")
    assert late.value == outcomes[0]
    print("(the chosen value is stable — exactly the §2.3 lineage Sift builds on)")


if __name__ == "__main__":
    main()
