#!/usr/bin/env python3
"""Replicated memory as a primitive: atomic bank transfers.

The paper's KV store is one application of the replicated memory layer;
this example builds another directly on the public API (§3.3): an array
of account balances in replicated memory, with transfers committed
atomically via ``multi_write`` so no interleaving (or crash) can observe
or persist a half-applied transfer.

Run:  python examples/replicated_counter.py
"""

from repro.core import SiftConfig, SiftGroup
from repro.core.membership import RESERVED_BYTES
from repro.net import Fabric
from repro.sim import SEC, Simulator

N_ACCOUNTS = 64
BALANCE_BYTES = 8
BASE = RESERVED_BYTES  # applications start above the reserved words
INITIAL = 1_000


def account_addr(index: int) -> int:
    return BASE + index * BALANCE_BYTES


def main() -> None:
    sim = Simulator()
    fabric = Fabric(sim)
    config = SiftConfig(fm=1, fc=1, data_bytes=64 * 1024, wal_entries=512)
    group = SiftGroup(fabric, config, name="bank")
    group.start()

    def read_balance(repmem, index):
        raw = yield from repmem.read(account_addr(index), BALANCE_BYTES)
        return int.from_bytes(raw, "little")

    def transfer(repmem, src, dst, amount):
        src_balance = yield from read_balance(repmem, src)
        dst_balance = yield from read_balance(repmem, dst)
        if src_balance < amount:
            return False
        # Both sides commit together or not at all (§3.3.2 multi-write).
        yield from repmem.multi_write(
            [
                (account_addr(src), (src_balance - amount).to_bytes(8, "little")),
                (account_addr(dst), (dst_balance + amount).to_bytes(8, "little")),
            ]
        )
        return True

    def scenario():
        coordinator = yield from group.wait_until_serving(timeout_us=2 * SEC)
        repmem = coordinator.repmem
        print(f"coordinator: {coordinator.name}")

        for index in range(N_ACCOUNTS):
            yield from repmem.write(account_addr(index), INITIAL.to_bytes(8, "little"))

        rng = fabric.rng.stream("transfers")
        transfers = 0
        for _ in range(500):
            src = rng.randrange(N_ACCOUNTS)
            dst = rng.randrange(N_ACCOUNTS)
            if src == dst:
                continue
            ok = yield from transfer(repmem, src, dst, rng.randrange(1, 200))
            transfers += 1 if ok else 0

        # Crash the coordinator mid-flight and verify conservation of money
        # after recovery: the new coordinator replays the log, so every
        # committed transfer is intact and no partial transfer survives.
        coordinator.crash()
        survivor = yield from group.wait_until_serving(timeout_us=3 * SEC)
        total = 0
        for index in range(N_ACCOUNTS):
            total += yield from read_balance(survivor.repmem, index)
        print(f"{transfers} transfers committed; coordinator failed over to {survivor.name}")
        print(f"total money: {total} (expected {N_ACCOUNTS * INITIAL})")
        assert total == N_ACCOUNTS * INITIAL, "conservation violated!"
        print("conservation holds across coordinator failure.")

    process = sim.spawn(scenario(), name="scenario")
    sim.run(until=30 * SEC)
    if not process.ok:
        raise SystemExit(f"scenario failed: {process.exception}")


if __name__ == "__main__":
    main()
