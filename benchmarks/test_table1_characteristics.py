"""Table 1: comparison of key consensus protocol characteristics.

Regenerates the qualitative comparison table and cross-checks the
replication factors against the implementations' actual geometry.
"""

from repro.baselines import PROTOCOL_CHARACTERISTICS, characteristics_table
from repro.baselines.characteristics import replication_factor
from repro.baselines.epaxos import EPaxosConfig
from repro.baselines.raft import RaftConfig
from repro.core import SiftConfig


def test_table1(once):
    table = once(characteristics_table)
    print()
    print("Table 1: key consensus protocol characteristics")
    print(table)

    rows = {row["type"]: row for row in PROTOCOL_CHARACTERISTICS}
    assert rows["Sift"]["resource_location"] == "Disaggregated"
    assert rows["Sift"]["protocol"] == "1-sided RDMA"
    assert rows["Sift"]["erasure_coding"] == "Yes"
    assert rows["Raft"]["resource_location"] == "Coupled"
    assert rows["DARE"]["protocol"] == "1-sided RDMA"
    assert rows["RS-Paxos"]["erasure_coding"] == "Yes"

    # Replication factors must match what the implementations deploy.
    for f in (1, 2):
        sift = SiftConfig(fm=f, fc=f)
        assert replication_factor("sift", f) == {
            "memory_nodes": sift.memory_node_count,
            "cpu_nodes": sift.cpu_node_count,
        }
        assert replication_factor("raft", f)["nodes"] == RaftConfig(f=f).nodes
        assert replication_factor("raft", f)["nodes"] == EPaxosConfig(f=f).nodes
