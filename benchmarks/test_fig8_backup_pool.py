"""Figure 8: backup-pool sizing from the failure-trace simulation.

"Results of a simulation over a Google cluster trace of machine
failures.  Estimates how many backup nodes are needed to prevent
additional recovery time due to VM provisioning."  (§6.4.2; our trace
is the synthetic equivalent described in DESIGN.md.)

Shape targets: recovery time per fault decreases monotonically with the
pool size and increases with the number of groups; ~6 backups suffice
for 1000 groups and ~20 for 3000 (the sizes §6.4.3's cost analysis
uses).
"""

import os

import pytest

from repro.bench.report import series_table
from repro.cluster.backups import sweep_backup_pool

GROUP_COUNTS = [10, 100, 500, 1000, 2000, 3000]
BACKUP_COUNTS = [0, 2, 4, 6, 8, 12, 16, 20]
REPETITIONS = int(os.environ.get("REPRO_BENCH_FIG8_REPS", "10"))


@pytest.fixture(scope="module")
def sweep():
    return sweep_backup_pool(GROUP_COUNTS, BACKUP_COUNTS, repetitions=REPETITIONS)


def test_fig8(sweep, once):
    series = {
        f"{groups} groups": [
            (cell.backups, cell.recovery_time_per_fault_s) for cell in row
        ]
        for groups, row in sweep.items()
    }
    print()
    print(
        once(
            lambda: series_table(
                f"Figure 8: recovery time per fault vs. backup pool "
                f"({REPETITIONS} repetitions)",
                "backup nodes",
                "seconds per fault",
                series,
            )
        )
    )

    def value(groups, backups):
        return dict((c.backups, c.recovery_time_per_fault_s) for c in sweep[groups])[backups]

    # Monotone in the pool size for every group count.
    for groups, row in sweep.items():
        times = [cell.recovery_time_per_fault_s for cell in row]
        for earlier, later in zip(times, times[1:]):
            assert later <= earlier + 1e-9, (groups, times)

    # Monotone in the group count at zero backups.
    zero_pool = [value(groups, 0) for groups in GROUP_COUNTS]
    assert zero_pool == sorted(zero_pool)

    # The paper's sizing: 6 backups for 1000 groups, 20 for 3000 give
    # (essentially) no additional recovery time; small fleets need ~2.
    assert value(1000, 6) < 0.25
    assert value(3000, 20) < 0.25
    assert value(100, 2) < 0.05
    # And a too-small pool clearly does not suffice for a big fleet.
    assert value(3000, 4) > value(3000, 20) + 0.25
