"""Table 2: machine configurations normalized for performance.

"Machine configurations for each system normalized for performance.
CPU resources are measured in cores, memory resources are measured in
GB" — with the read-heavy targets of 380k ops/s (F=1) and 350k (F=2)
from §6.4.3.  The table itself is reproduced exactly; the accompanying
simulation check verifies that, with Table 2's core counts, each
system's measured read-heavy throughput is in the same band — the
property the paper used to call the provisioning "normalized".
"""


from repro.bench import raft_spec, run_throughput, sift_spec
from repro.bench.calibration import BenchScale
from repro.bench.report import kv_table
from repro.cluster.provision import TABLE2, TARGET_THROUGHPUT, machine_table
from repro.workloads import WORKLOADS


def test_table2_values(once):
    tables = once(lambda: {f: machine_table(f) for f in (1, 2)})
    rows = []
    for f in (1, 2):
        rows.append((f"-- F={f} (target {TARGET_THROUGHPUT[f]:,} ops/s) --", ""))
        for name, spec in tables[f]:
            rows.append((name, f"{spec.cores} cores, {spec.memory_gb} GB"))
    print()
    print(kv_table("Table 2: normalized machine configurations", rows))

    assert TABLE2[("raft", 1)]["node"].cores == 8
    assert TABLE2[("sift", 1)]["cpu"].cores == 10
    assert TABLE2[("sift-ec", 1)]["cpu"].cores == 12
    assert TABLE2[("sift", 1)]["memory"].memory_gb == 64
    assert TABLE2[("sift-ec", 1)]["memory"].memory_gb == 32
    assert TABLE2[("sift-ec", 2)]["memory"].memory_gb == 22


def test_table2_normalisation_holds_in_simulation(once):
    """With Table 2 cores, the three systems land in one throughput band."""
    scale = BenchScale()

    def run_all():
        results = {}
        results["raft-r"] = run_throughput(
            raft_spec(cores=8, scale=scale), WORKLOADS["read-heavy"], scale=scale
        )
        results["sift"] = run_throughput(
            sift_spec(cores=10, scale=scale), WORKLOADS["read-heavy"], scale=scale
        )
        results["sift-ec"] = run_throughput(
            sift_spec(erasure_coding=True, cores=12, scale=scale),
            WORKLOADS["read-heavy"],
            scale=scale,
        )
        return results

    results = once(run_all)
    values = {name: r.ops_per_sec for name, r in results.items()}
    print()
    print(kv_table("Read-heavy throughput at Table 2 core counts", [
        (name, f"{ops:,.0f} ops/s") for name, ops in values.items()
    ]))
    top = max(values.values())
    bottom = min(values.values())
    assert bottom > 0.6 * top, values  # one band, not wildly apart
