"""Figure 6: read/write latency at low load and at ~90% of peak.

"Latencies at low load (1 client) and 90% of peak throughput" for
Raft-R, Sift, and Sift EC (EPaxos is reported in the text of §6.3.3 and
omitted from the figure for clarity — we print it too).

Shape targets from §6.3.3:

* at low load, write cost is similar for all systems (one RDMA round
  trip to replicate), with Sift EC slightly higher (encoding);
* read latencies at low load are similar for all RDMA systems (the
  cache serves most Sift reads);
* at 90% load, Sift's latencies rise more than Raft-R's (background
  apply contention);
* ~50 us of everything is the RPC layer.
"""

import pytest

from repro.bench import epaxos_spec, raft_spec, run_latency, sift_spec
from repro.bench.calibration import BenchScale
from repro.bench.report import series_table
from repro.workloads import WORKLOADS

SAME_HARDWARE_CORES = 12
HIGH_LOAD_CLIENTS = 28  # ~90% of the saturation client count


@pytest.fixture(scope="module")
def results():
    scale = BenchScale()
    specs = {
        "raft-r": raft_spec(cores=SAME_HARDWARE_CORES, scale=scale),
        "sift": sift_spec(cores=SAME_HARDWARE_CORES, scale=scale),
        "sift-ec": sift_spec(erasure_coding=True, cores=SAME_HARDWARE_CORES, scale=scale),
        "epaxos": epaxos_spec(cores=SAME_HARDWARE_CORES, scale=scale),
    }
    out = {}
    for name, spec in specs.items():
        out[name] = {
            "low": run_latency(spec, WORKLOADS["mixed"], 1, scale=scale),
            "high": run_latency(spec, WORKLOADS["mixed"], HIGH_LOAD_CLIENTS, scale=scale),
        }
    return out


def test_fig6(results, once):
    rows = []
    for name, data in results.items():
        for load in ("low", "high"):
            r = data[load]
            rows.append(
                (
                    f"{name}/{load}",
                    [
                        (1, r.read_p50 or 0.0),
                        (2, r.read_p95 or 0.0),
                        (3, r.write_p50 or 0.0),
                        (4, r.write_p95 or 0.0),
                    ],
                )
            )
    print()
    print(
        once(
            lambda: series_table(
                "Figure 6: latency (us) at 1 client and ~90% load",
                "metric (1=read p50, 2=read p95, 3=write p50, 4=write p95)",
                "microseconds",
                dict(rows),
            )
        )
    )

    low = {name: results[name]["low"] for name in results}
    high = {name: results[name]["high"] for name in results}

    # Low load: write medians within a factor ~2 of each other for the
    # RDMA systems ("the cost of writes is similar for all systems").
    writes = [low[name].write_p50 for name in ("raft-r", "sift", "sift-ec")]
    assert max(writes) / min(writes) < 2.0

    # Sift EC never beats plain Sift on writes; its encoding premium is
    # off the client's critical path here (the KV WAL commits unencoded,
    # §5.1) and surfaces in the background-apply contention at load.
    assert low["sift-ec"].write_p50 >= low["sift"].write_p50 - 2.0
    assert high["sift-ec"].write_p95 >= high["sift"].write_p95 - 5.0

    # Low-load reads similar for the RDMA systems (cache absorbs misses).
    reads = [low[name].read_p50 for name in ("raft-r", "sift", "sift-ec")]
    assert max(reads) / min(reads) < 2.0

    # The RPC layer accounts for ~50us: nothing beats that floor.
    for name in ("raft-r", "sift", "sift-ec"):
        assert low[name].read_p50 > 30.0

    # EPaxos: reads ~= writes at low load ("latencies for reads and
    # writes at low load are equivalent"), both above the RDMA systems.
    assert low["epaxos"].read_p50 == pytest.approx(low["epaxos"].write_p50, rel=0.5)
    assert low["epaxos"].read_p50 > low["sift"].read_p50

    # High load raises tail latencies for everyone.
    for name in ("raft-r", "sift", "sift-ec"):
        assert high[name].write_p95 >= low[name].write_p95
