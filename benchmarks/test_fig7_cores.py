"""Figure 7: throughput vs. provisioned cores, F in {1, 2}.

"Performance of Sift and Raft-R with a varied number of cores ...
These results show us how Raft nodes and Sift CPU nodes should be
provisioned to achieve equivalent performance."  Read-heavy workload;
the knees of these curves are what Table 2's 8/10/12-core choices and
§6.4's normalized cost comparison rest on.

Shape targets: throughput grows with cores then saturates; at equal
throughput Raft-R needs the fewest cores, Sift more, Sift EC the most.
"""

import pytest

from repro.bench import raft_spec, run_throughput, sift_spec
from repro.bench.calibration import BenchScale
from repro.bench.report import series_table
from repro.workloads import WORKLOADS

CORE_COUNTS = [6, 8, 10, 12]


@pytest.fixture(scope="module")
def results():
    scale = BenchScale()
    out = {}
    for f in (1, 2):
        for name, make in (
            ("raft-r", lambda cores, f=f: raft_spec(f=f, cores=cores, scale=scale)),
            ("sift", lambda cores, f=f: sift_spec(f=f, cores=cores, scale=scale)),
            (
                "sift-ec",
                lambda cores, f=f: sift_spec(
                    f=f, erasure_coding=True, cores=cores, scale=scale
                ),
            ),
        ):
            series = []
            for cores in CORE_COUNTS:
                result = run_throughput(
                    make(cores), WORKLOADS["read-heavy"], scale=scale
                )
                series.append((cores, result.ops_per_sec))
            out[(name, f)] = series
    return out


def test_fig7(results, once):
    print()
    print(
        once(
            lambda: series_table(
                "Figure 7: read-heavy throughput vs. cores",
                "cores",
                "ops/sec",
                {f"{name} (F={f})": series for (name, f), series in results.items()},
            )
        )
    )

    def tput(name, f, cores):
        return dict(results[(name, f)])[cores]

    for (name, f), series in results.items():
        values = [ops for _c, ops in series]
        # More cores never hurt much (allow 10% noise) and the curve
        # grows from its 6-core point to its best point.
        for earlier, later in zip(values, values[1:]):
            assert later > earlier * 0.9, (name, f, series)
        assert max(values) > values[0] * 1.05 or values[0] > 300_000

    # Provisioning order at a fixed mid-range core count: Raft-R ahead
    # of Sift ahead of Sift EC (Fig 7 / Table 2's 8 <= 10 <= 12 cores).
    for f in (1, 2):
        assert tput("raft-r", f, 8) > tput("sift", f, 8) * 0.95
        assert tput("sift", f, 8) > tput("sift-ec", f, 8) * 0.95

    # F=2 costs throughput relative to F=1 at equal cores (5 replicas).
    assert tput("raft-r", 2, 12) <= tput("raft-r", 1, 12) * 1.1
