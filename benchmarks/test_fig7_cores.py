"""Figure 7: throughput vs. provisioned cores, F in {1, 2}.

"Performance of Sift and Raft-R with a varied number of cores ...
These results show us how Raft nodes and Sift CPU nodes should be
provisioned to achieve equivalent performance."  Read-heavy workload;
the knees of these curves are what Table 2's 8/10/12-core choices and
§6.4's normalized cost comparison rest on.

Shape targets: throughput grows with cores then saturates; at equal
throughput Raft-R needs the fewest cores, Sift more, Sift EC the most.

``test_fig7_batched_knee`` re-runs the Sift F=1 sweep with the full
batching stack (WAL append coalescing + doorbell verb batching, the
fig5ablate knobs) to ask whether the saturation knee moves.  Measured
answer (full scale, 2026-08): it depends on what saturates.  On the
paper's read-heavy mix the curve is core-bound and still climbing at
12 cores, and a write-path knob is invisible at 10% writes (+0.07%
everywhere) — the knee does not move.  On write-only the plain stack
is append-path-bound and *flat* from 6 cores (~150k ops/s, knee at the
left edge); coalesce+doorbell lifts the plateau ~1.21x (~182k) and the
knee shifts right to 8 cores, because the cheaper append path gives
the extra cores something to do again.
"""

import pytest

from repro.bench import raft_spec, run_throughput, sift_spec
from repro.bench.calibration import BenchScale
from repro.bench.report import series_table
from repro.workloads import WORKLOADS

CORE_COUNTS = [6, 8, 10, 12]

#: Knee = smallest core count already serving >= this fraction of the
#: series' best throughput (the curve is flat past it).
KNEE_FRACTION = 0.95


def knee_cores(series):
    """Smallest core count reaching ``KNEE_FRACTION`` of the series max."""
    best = max(ops for _cores, ops in series)
    return min(cores for cores, ops in series if ops >= best * KNEE_FRACTION)


@pytest.fixture(scope="module")
def results():
    scale = BenchScale()
    out = {}
    for f in (1, 2):
        for name, make in (
            ("raft-r", lambda cores, f=f: raft_spec(f=f, cores=cores, scale=scale)),
            ("sift", lambda cores, f=f: sift_spec(f=f, cores=cores, scale=scale)),
            (
                "sift-ec",
                lambda cores, f=f: sift_spec(
                    f=f, erasure_coding=True, cores=cores, scale=scale
                ),
            ),
        ):
            series = []
            for cores in CORE_COUNTS:
                result = run_throughput(
                    make(cores), WORKLOADS["read-heavy"], scale=scale
                )
                series.append((cores, result.ops_per_sec))
            out[(name, f)] = series
    return out


def test_fig7(results, once):
    print()
    print(
        once(
            lambda: series_table(
                "Figure 7: read-heavy throughput vs. cores",
                "cores",
                "ops/sec",
                {f"{name} (F={f})": series for (name, f), series in results.items()},
            )
        )
    )

    def tput(name, f, cores):
        return dict(results[(name, f)])[cores]

    for (name, f), series in results.items():
        values = [ops for _c, ops in series]
        # More cores never hurt much (allow 10% noise) and the curve
        # grows from its 6-core point to its best point.
        for earlier, later in zip(values, values[1:]):
            assert later > earlier * 0.9, (name, f, series)
        assert max(values) > values[0] * 1.05 or values[0] > 300_000

    # Provisioning order at a fixed mid-range core count: Raft-R ahead
    # of Sift ahead of Sift EC (Fig 7 / Table 2's 8 <= 10 <= 12 cores).
    for f in (1, 2):
        assert tput("raft-r", f, 8) > tput("sift", f, 8) * 0.95
        assert tput("sift", f, 8) > tput("sift-ec", f, 8) * 0.95

    # F=2 costs throughput relative to F=1 at equal cores (5 replicas).
    assert tput("raft-r", 2, 12) <= tput("raft-r", 1, 12) * 1.1


@pytest.fixture(scope="module")
def batched_results():
    """Sift F=1 cores sweeps, plain stack vs coalesce+doorbell,
    on the paper's read-heavy mix and on write-only (where the
    batching layers actually bite)."""
    scale = BenchScale()
    out = {}
    for mix in ("read-heavy", "write-only"):
        for stack, kv_overrides, sift_overrides in (
            ("plain", None, None),
            ("batched", {"coalesce_appends": True}, {"doorbell_batching": True}),
        ):
            series = []
            for cores in CORE_COUNTS:
                spec = sift_spec(
                    f=1,
                    cores=cores,
                    scale=scale,
                    kv_overrides=kv_overrides,
                    sift_overrides=sift_overrides,
                )
                result = run_throughput(spec, WORKLOADS[mix], scale=scale)
                series.append((cores, result.ops_per_sec))
            out[(mix, stack)] = series
    return out


def test_fig7_batched_knee(batched_results, once):
    print()
    print(
        once(
            lambda: series_table(
                "Figure 7 follow-up: Sift F=1 cores, plain vs coalesce+doorbell",
                "cores",
                "ops/sec",
                {
                    f"{mix} {stack}": series
                    for (mix, stack), series in batched_results.items()
                },
            )
        )
    )

    # Read-heavy (the fig7 mix): a write-path knob is invisible at 10%
    # writes — same curve within a tight band, same knee.
    rh_plain = batched_results[("read-heavy", "plain")]
    rh_batched = batched_results[("read-heavy", "batched")]
    for (cores, plain_ops), (_c, batched_ops) in zip(rh_plain, rh_batched):
        assert 0.95 < batched_ops / plain_ops < 1.05, (cores, plain_ops, batched_ops)
    assert knee_cores(rh_batched) == knee_cores(rh_plain)

    # Write-only: the plain stack saturates on the WAL append path
    # before the sweep even starts — flat across 6..12 cores.
    wo_plain = batched_results[("write-only", "plain")]
    wo_batched = batched_results[("write-only", "batched")]
    plain_values = [ops for _c, ops in wo_plain]
    assert max(plain_values) < min(plain_values) * 1.10, wo_plain
    assert knee_cores(wo_plain) == CORE_COUNTS[0], wo_plain

    # Coalesce+doorbell lifts the write plateau and *moves the knee
    # right*: the cheaper append path turns spare cores back into
    # throughput until it re-saturates at a higher level.
    for (cores, plain_ops), (_c, batched_ops) in zip(wo_plain, wo_batched):
        assert batched_ops > plain_ops * 1.02, (cores, plain_ops, batched_ops)
    assert max(ops for _c, ops in wo_batched) > max(plain_values) * 1.12, (
        wo_plain,
        wo_batched,
    )
    assert knee_cores(wo_batched) > knee_cores(wo_plain), (wo_plain, wo_batched)
