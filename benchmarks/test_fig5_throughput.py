"""Figure 5: throughput by workload type, F=1, same hardware.

"Performance comparison with Sift's key-value store and an RDMA-based
Raft implementation" — EPaxos, Sift EC, Sift and Raft-R across the
write-only / mixed / read-heavy / read-only mixes (Zipf 0.99).

All systems run on identical hardware here (12-core nodes, the
evaluation machines' 2x E5-2620v2), exactly as in §6.3.  Shape targets
from the paper:

* EPaxos is workload-independent, lowest for reads, best for write-only;
* Raft-R beats Sift on writes (Sift pays for background applies);
* Sift matches Raft-R on read-heavy/read-only thanks to its cache;
* Sift EC sits slightly below Sift on writes (encoding cost).
"""

import pytest

from repro.bench import epaxos_spec, raft_spec, run_throughput, sift_spec
from repro.bench.calibration import BenchScale
from repro.bench.report import bar_table
from repro.workloads import WORKLOADS

MIXES = ["write-only", "mixed", "read-heavy", "read-only"]
SAME_HARDWARE_CORES = 12


@pytest.fixture(scope="module")
def results():
    scale = BenchScale()
    specs = [
        ("epaxos", epaxos_spec(cores=SAME_HARDWARE_CORES, scale=scale)),
        ("sift-ec", sift_spec(erasure_coding=True, cores=SAME_HARDWARE_CORES, scale=scale)),
        ("sift", sift_spec(cores=SAME_HARDWARE_CORES, scale=scale)),
        ("raft-r", raft_spec(cores=SAME_HARDWARE_CORES, scale=scale)),
    ]
    out = {}
    for name, spec in specs:
        # Peak-throughput measurement: EPaxos spreads its clients evenly
        # across all replicas (§6.3.1), so it is driven by 3x the client
        # count that saturates the single-leader systems.
        clients = scale.clients * 3 if name == "epaxos" else scale.clients
        out[name] = {}
        for mix in MIXES:
            result = run_throughput(spec, WORKLOADS[mix], n_clients=clients, scale=scale)
            out[name][mix] = result
    return out


def test_fig5(results, once):
    table = {
        name: [results[name][mix].ops_per_sec for mix in MIXES]
        for name in ("epaxos", "sift-ec", "sift", "raft-r")
    }
    print()
    print(once(lambda: bar_table("Figure 5: throughput by workload (F=1)", MIXES, table)))

    def tput(name, mix):
        return results[name][mix].ops_per_sec

    # No failed operations anywhere.
    for name in results:
        for mix in MIXES:
            assert results[name][mix].errors == 0, (name, mix)

    # EPaxos: workload-independent (reads cost the same as writes).
    epaxos = [tput("epaxos", mix) for mix in MIXES]
    assert max(epaxos) / min(epaxos) < 1.25

    # Write-only: "EPaxos performs better than the leader and RDMA-based
    # systems"; Raft-R > Sift > Sift EC.
    assert tput("epaxos", "write-only") > tput("raft-r", "write-only")
    assert tput("raft-r", "write-only") > tput("sift", "write-only")
    assert tput("sift", "write-only") > tput("sift-ec", "write-only")

    # Read-heavy / read-only: the RDMA leader-local systems dominate
    # EPaxos ("far higher than a state-of-the-art, non-RDMA consensus
    # protocol for read operations"; the paper's read-only gap is ~2.3x,
    # we assert a conservative 1.5x).
    for mix in ("read-heavy", "read-only"):
        assert tput("sift", mix) > 1.5 * tput("epaxos", mix)
        assert tput("raft-r", mix) > 1.5 * tput("epaxos", mix)
        # Sift's cache keeps it within ~20% of Raft-R.
        ratio = tput("sift", mix) / tput("raft-r", mix)
        assert 0.8 < ratio < 1.25

    # Every system speeds up as the workload gets more read-heavy,
    # except EPaxos (flat).
    for name in ("sift", "sift-ec", "raft-r"):
        assert tput(name, "read-only") > tput(name, "write-only")
